#!/usr/bin/env python3
"""The Larceny prototype: a non-predictive collector for old objects.

Section 8 of the paper describes the design the authors built into
Larceny: keep a conventional ephemeral (nursery) collector for young
objects, and manage the objects that survive promotion with a
2-generation non-predictive collector.  This example runs the
iterated-process workload — the kind that hurts conventional
generational GC (survival DECREASES with age) — under both the
conventional collector and the hybrid, and shows the hybrid's
non-predictive old area coping better.

Run:  python examples/hybrid_oldgen.py
"""

from __future__ import annotations

from repro import GenerationalCollector, HybridCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator import LifetimeDrivenMutator, PhasedSchedule

NURSERY = 2_048
OLD_AREA = 16_384
PHASE = 6_000  # words per iteration of the simulated iterated process


def run(name, build) -> None:
    heap = SimulatedHeap()
    roots = RootSet()
    collector = build(heap, roots)
    schedule = PhasedSchedule(
        PHASE, churn_fraction=0.15, carryover_fraction=0.1, seed=2
    )
    mutator = LifetimeDrivenMutator(collector, roots, schedule)
    mutator.run(40 * PHASE)
    stats = collector.stats
    print(f"-- {name} --")
    print(f"words allocated : {stats.words_allocated:,}")
    print(f"words copied    : {stats.words_copied:,}")
    print(f"roots traced    : {stats.roots_traced:,}")
    print(f"mark/cons       : {stats.mark_cons:.3f}")
    print(f"collections     : {stats.collections} "
          f"({stats.minor_collections} minor)")
    print()


def main() -> None:
    print("Iterated-process workload (phase =", PHASE, "words):")
    print("old objects are the ones about to die — the strong")
    print("generational hypothesis inverted (paper Section 7.2).")
    print()
    run(
        "conventional generational",
        lambda heap, roots: GenerationalCollector(
            heap, roots, [NURSERY, OLD_AREA], auto_expand_oldest=False
        ),
    )
    run(
        "hybrid: nursery + non-predictive old area (paper §8)",
        lambda heap, roots: HybridCollector(
            heap, roots, NURSERY, 8, OLD_AREA // 8
        ),
    )
    print(
        "The hybrid's old area protects the newest promotions and\n"
        "collects the steps that have had the longest time to decay —\n"
        "no age tracking, no lifetime prediction.  The margin is\n"
        "modest, exactly as the paper reports of its own prototype:\n"
        "'On most programs the new collector performs the same as the\n"
        "generational collector it replaces, but we expect the new\n"
        "collector to improve the performance of some programs that\n"
        "present a challenge to our conventional generational\n"
        "collector.' (Section 1)"
    )


if __name__ == "__main__":
    main()
