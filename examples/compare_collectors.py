#!/usr/bin/env python3
"""Compare all seven collectors on a real benchmark program.

Runs the lattice benchmark (a purely functional workload: high
allocation, almost nothing long-lived) under every collector the
library implements and prints their work accounting side by side.

This is the experiment you would run before choosing a collector for a
workload: the numbers show why stop-and-copy-style collection of young
storage wins when the weak generational hypothesis holds (compare with
examples/quickstart.py, where the decay model makes it lose).

Run:  python examples/compare_collectors.py [benchmark]
      (benchmark: nbody | nucleic2 | lattice | 10dynamic | nboyer | sboyer)
"""

from __future__ import annotations

import sys

from repro.experiments.harness import GcGeometry, run_benchmark_under
from repro.gc.registry import COLLECTOR_KINDS
from repro.programs.registry import benchmark_names, get_benchmark
from repro.trace.render import TextTable

COLLECTORS = COLLECTOR_KINDS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lattice"
    if name not in benchmark_names():
        raise SystemExit(
            f"unknown benchmark {name!r}; pick one of {benchmark_names()}"
        )
    benchmark = get_benchmark(name)
    print(f"benchmark: {benchmark.name} — {benchmark.description}")
    print(f"storage note: {benchmark.storage_note}")
    print()

    table = TextTable(
        [
            "collector",
            "allocated",
            "gc work",
            "mark/cons",
            "gc/mutator",
            "collections",
        ]
    )
    for kind in COLLECTORS:
        outcome = run_benchmark_under(
            benchmark, kind, scale=1, geometry=GcGeometry()
        )
        table.add_row(
            kind,
            outcome.words_allocated,
            outcome.gc_work,
            outcome.mark_cons,
            f"{100 * outcome.gc_mutator_ratio:.0f}%",
            outcome.collections,
        )
    print(table.to_text())
    print()
    print(
        "All quantities are in words of simulated work; 'gc/mutator'\n"
        "is the simulator's analogue of the paper's Table 3 column."
    )


if __name__ == "__main__":
    main()
