#!/usr/bin/env python3
"""Run the Boyer theorem-prover benchmark under a real collector.

This example exercises the full runtime stack: Scheme-ish cons cells in
a simulated heap, a write barrier, a generational collector — and the
classic Boyer benchmark on top, in both its nboyer and sboyer (shared
consing) forms.  It prints the GC statistics side by side, reproducing
the paper's observation that Baker's one-line tweak "greatly decreases
garbage collection time" by collapsing allocation.

Run:  python examples/boyer_demo.py
"""

from __future__ import annotations

import sys

from repro import GenerationalCollector, Machine
from repro.programs.boyer import run_nboyer, run_sboyer

sys.setrecursionlimit(200_000)

NURSERY_WORDS = 8_192
DYNAMIC_WORDS = 32_768


def run(name: str, runner) -> None:
    machine = Machine(
        lambda heap, roots: GenerationalCollector(
            heap, roots, [NURSERY_WORDS, DYNAMIC_WORDS]
        )
    )
    result = runner(machine, 0)
    stats = machine.stats
    print(f"-- {name} --")
    print(f"theorem proved      : {result.proved}")
    print(f"rewrite applications: {result.rewrites:,}")
    print(f"words allocated     : {stats.words_allocated:,}")
    print(f"collections         : {stats.collections} "
          f"({stats.minor_collections} minor)")
    print(f"words copied by gc  : {stats.words_copied:,}")
    print(f"mark/cons ratio     : {stats.mark_cons:.3f}")
    print()


def main() -> None:
    print("The Boyer benchmark: term rewriting + tautology checking")
    print("(the paper's Table 2/3 'nboyer' and 'sboyer' entries)")
    print()
    run("nboyer (original consing)", run_nboyer)
    run("sboyer (Baker's shared consing)", run_sboyer)
    print(
        "Same theorem, same rewrites — but shared consing reuses\n"
        "unchanged subterms, so allocation (and with it GC work)\n"
        "collapses.  'The garbage collection overhead of production\n"
        "code may have more to do with the overhead of long-lived\n"
        "objects than with the short-lived objects...' (Section 7.2)"
    )


if __name__ == "__main__":
    main()
