#!/usr/bin/env python3
"""Run your own Scheme workload against any collector.

The paper's benchmarks were Scheme programs; the library ships a small
Scheme interpreter whose environments, closures, and data live in the
simulated heap.  This example runs the classic `tak` function and a
list-churning loop under two collectors and prints their GC accounting
— the template for measuring your own workload.

Run:  python examples/scheme_workload.py
"""

from __future__ import annotations

from repro import GenerationalCollector, HybridCollector, Machine
from repro.runtime.interop import to_python
from repro.runtime.interp import Interpreter

PROGRAM = """
; Takeuchi's function: call-heavy, environment-frame-heavy.
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))

; A list-churning loop: allocate, sum, discard, repeat.
(define (iota n) (if (= n 0) '() (cons n (iota (- n 1)))))
(define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
(define (churn rounds size)
  (let loop ((i 0) (acc 0))
    (if (= i rounds) acc (loop (+ i 1) (+ acc (sum (iota size)))))))

(list (tak 12 8 4) (churn 60 40))
"""

COLLECTORS = {
    "generational": lambda heap, roots: GenerationalCollector(
        heap, roots, [2_048, 8_192]
    ),
    "hybrid (non-predictive old)": lambda heap, roots: HybridCollector(
        heap, roots, 2_048, 8, 1_024
    ),
}


def main() -> None:
    for name, factory in COLLECTORS.items():
        machine = Machine(factory)
        interp = Interpreter(machine)
        result = interp.run(PROGRAM)
        stats = machine.stats
        print(f"-- {name} --")
        print(f"result              : {to_python(machine, result)}")
        print(f"expressions evaluated: {interp.steps:,}")
        print(f"words allocated     : {stats.words_allocated:,}")
        print(f"collections         : {stats.collections} "
              f"({stats.minor_collections} minor)")
        print(f"mark/cons           : {stats.mark_cons:.3f}")
        print()
    print(
        "Interpreter state (environment frames, closures, argument\n"
        "lists) is heap data, so the interpreter itself is a storage\n"
        "workload — exactly how the paper's Scheme benchmarks loaded\n"
        "Larceny's collectors."
    )


if __name__ == "__main__":
    main()
