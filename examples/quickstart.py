#!/usr/bin/env python3
"""Quickstart: the radioactive decay model meets four collectors.

This example walks the paper's core story end to end:

1. build a radioactive-decay workload (half-life h) — a lifetime model
   under which NO heuristic can predict which objects die next;
2. compute the paper's closed-form predictions (Equation 1,
   Theorem 4, Corollary 5);
3. run the actual collectors on the actual workload and watch the
   predictions come true: the conventional generational collector does
   WORSE than a plain mark/sweep collector, and the non-predictive
   collector does better.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GenerationalCollector,
    MarkSweepCollector,
    NonPredictiveCollector,
    RadioactiveDecayModel,
    SimulatedHeap,
    RootSet,
    mark_cons_ratio,
    nongenerational_mark_cons,
    optimal_generation_fraction,
)
from repro.mutator import LifetimeDrivenMutator, DecaySchedule

HALF_LIFE = 2_000.0
LOAD_FACTOR = 3.5  # heap is 3.5x the live storage


def main() -> None:
    model = RadioactiveDecayModel(HALF_LIFE)
    live = model.equilibrium_live_storage()
    heap_words = int(live * LOAD_FACTOR)

    print("== The model (paper Section 2) ==")
    print(f"half-life h                 = {HALF_LIFE:,.0f} words")
    print(f"equilibrium live storage n  = {live:,.0f} words (Equation 1)")
    print(f"heap size N = n*L           = {heap_words:,} words")
    print(f"P(survive one half-life)    = {model.survival_probability(HALF_LIFE):.3f}")
    print(
        "P(survive h | already 5h old)= "
        f"{model.conditional_survival(5 * HALF_LIFE, HALF_LIFE):.3f}"
        "   <- age tells the collector nothing"
    )
    print()

    print("== The analysis (paper Section 5) ==")
    baseline = nongenerational_mark_cons(LOAD_FACTOR)
    print(f"mark/cons, non-generational = 1/(L-1) = {baseline:.3f}")
    best = optimal_generation_fraction(LOAD_FACTOR)
    print(
        f"best young-generation share g = {best.g:.3f} -> predicted "
        f"mark/cons {mark_cons_ratio(best.g, LOAD_FACTOR).value:.3f} "
        f"({best.relative_overhead:.2f}x the baseline)"
    )
    print()

    print("== The collectors, for real ==")
    configs = {
        "mark-sweep (baseline)": lambda heap, roots: MarkSweepCollector(
            heap, roots, heap_words, auto_expand=False
        ),
        "conventional generational": lambda heap, roots: GenerationalCollector(
            heap,
            roots,
            [heap_words // 4, heap_words - heap_words // 4],
            auto_expand_oldest=False,
        ),
        "non-predictive (the paper's)": (
            lambda heap, roots: NonPredictiveCollector(
                heap, roots, 16, heap_words // 16
            )
        ),
    }
    for name, factory in configs.items():
        heap = SimulatedHeap()
        roots = RootSet()
        collector = factory(heap, roots)
        mutator = LifetimeDrivenMutator(
            collector, roots, DecaySchedule(HALF_LIFE, seed=7)
        )
        mutator.run(20 * heap_words)
        pauses = collector.stats.pauses
        half = len(pauses) // 2
        work = sum(p.work for p in pauses[half:])
        allocated = pauses[-1].clock - pauses[half - 1].clock
        print(f"{name:<30} mark/cons = {work / allocated:.3f}")
    print()
    print(
        "The generational collector that bets on young death loses; the\n"
        "one that merely organizes WHERE free space sits wins — with no\n"
        "lifetime prediction at all.  (Paper Sections 3-5.)"
    )


if __name__ == "__main__":
    main()
