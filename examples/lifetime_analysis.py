#!/usr/bin/env python3
"""Measure object lifetimes the way the paper's Section 7 does.

Runs the 10dynamic workload (iterated type inference) under a tracing
machine, records every object's birth and death, and prints:

* the live-storage-versus-time profile (the Figure 2 picture), and
* the survival-rates-by-age table (the Table 5 picture),

showing the signature of an *iterated process*: survival rates that
DECREASE with age — the opposite of the strong generational
hypothesis, and exactly the regime where the paper's non-predictive
collector shines.

Run:  python examples/lifetime_analysis.py
"""

from __future__ import annotations

from repro.programs.dynamic import generate_corpus, infer_program
from repro.runtime.machine import Machine
from repro.trace import (
    LifetimeRecorder,
    TracingCollector,
    storage_profile,
    survival_table,
)

ITERATIONS = 6
DEFINITIONS = 40
DEPTH = 5


def main() -> None:
    # Size the sampling from a dry run (the corpus is read before the
    # measured portion, exactly as in the paper).
    dry = Machine(TracingCollector)
    corpus = generate_corpus(dry, definitions=DEFINITIONS, depth=DEPTH)
    before = dry.stats.words_allocated
    infer_program(dry, corpus)
    iteration_words = dry.stats.words_allocated - before
    epoch = max(1, iteration_words // 6)

    machine = Machine(TracingCollector)
    corpus = generate_corpus(machine, definitions=DEFINITIONS, depth=DEPTH)
    recorder = LifetimeRecorder(machine, max(1, epoch // 4))
    for _ in range(ITERATIONS):
        infer_program(machine, corpus)
    trace = recorder.finish()

    print(
        f"{ITERATIONS} iterations, {trace.words_allocated:,} words "
        f"allocated, {trace.object_count:,} objects"
    )
    print()
    print("Live storage versus time (each band = one allocation epoch):")
    print(storage_profile(trace, epoch).to_text(width=48))
    print()
    print("Survival rates by age (per next-bracket of allocation):")
    table = survival_table(
        trace, int(iteration_words / 3.6), bracket_count=3
    )
    print(table.to_text())
    print()
    print(
        "Old objects die FASTER than young ones here: each iteration\n"
        "ends in a mass extinction, so storage that has grown old is\n"
        "storage whose phase is about to end (paper Section 7.2)."
    )


if __name__ == "__main__":
    main()
