"""Legacy-installer shim.

``pip install -e .`` uses pyproject.toml (PEP 660) when the ``wheel``
package is available; this shim keeps editable installs working on
minimal/offline environments where only setuptools is present
(``python setup.py develop``).
"""

from setuptools import setup

setup()
