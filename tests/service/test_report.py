"""Scale-report schema, the regression gate, and pause semantics."""

from __future__ import annotations

import copy
import json

from repro.gc.registry import COLLECTOR_KINDS
from repro.metrics.registry import Histogram, MetricRegistry
from repro.service.loadgen import build_plan, run_load_inline
from repro.service.report import (
    SCALE_REPORT_VERSION,
    build_scale_report,
    check_pause_regression,
    deterministic_rows,
    mutator_visible_histogram,
    render_scale_report,
    validate_scale_report,
)
from repro.service.shard import ShardExecutor


def _fresh_report(tenants=len(COLLECTOR_KINDS), ops=80, seed=0) -> dict:
    plan = build_plan(tenants, seed=seed, ops_per_tenant=ops)
    executor = ShardExecutor(2, jobs=0)
    result = run_load_inline(plan, executor)
    return build_scale_report(
        plan, result, executor.merged_metrics(), mode="test"
    )


class TestSchema:
    def test_real_report_validates_clean_and_serializes(self):
        report = _fresh_report()
        assert validate_scale_report(report) == []
        assert report["version"] == SCALE_REPORT_VERSION
        assert {row["kind"] for row in report["rows"]} == set(COLLECTOR_KINDS)
        json.dumps(report)  # committed artifact must be plain JSON

    def test_non_object_and_wrong_version_rejected(self):
        assert validate_scale_report("nope")
        report = _fresh_report(tenants=2, ops=40)
        report["version"] = 99
        assert any("version" in p for p in validate_scale_report(report))

    def test_missing_field_detected(self):
        report = _fresh_report(tenants=2, ops=40)
        del report["rows"][0]["p99_pause_words"]
        problems = validate_scale_report(report)
        assert any("p99_pause_words" in p for p in problems)

    def test_duplicate_cohort_detected(self):
        report = _fresh_report(tenants=2, ops=40)
        report["rows"].append(copy.deepcopy(report["rows"][0]))
        assert any("duplicate" in p for p in validate_scale_report(report))

    def test_impossible_percentiles_detected(self):
        report = _fresh_report(tenants=2, ops=40)
        report["rows"][0]["p99_pause_words"] = (
            report["rows"][0]["max_pause_words"] + 1
        )
        assert any("exceeds" in p for p in validate_scale_report(report))

    def test_empty_rows_rejected(self):
        report = _fresh_report(tenants=2, ops=40)
        report["rows"] = []
        assert validate_scale_report(report)


class TestRegressionGate:
    def test_identical_reports_pass(self):
        report = _fresh_report(tenants=4, ops=60)
        assert check_pause_regression(report, report) == []

    def test_p99_growth_beyond_tolerance_flagged(self):
        committed = _fresh_report(tenants=4, ops=60)
        current = copy.deepcopy(committed)
        row = current["rows"][0]
        row["p99_pause_words"] = max(
            int(committed["rows"][0]["p99_pause_words"] * 2), 64
        )
        problems = check_pause_regression(current, committed)
        assert len(problems) == 1
        assert row["kind"] in problems[0]

    def test_small_absolute_wiggle_is_not_noise_gated(self):
        """The 16-word floor: tiny-pause cohorts don't flap on bucket
        boundaries."""
        committed = _fresh_report(tenants=4, ops=60)
        current = copy.deepcopy(committed)
        current["rows"][0]["p99_pause_words"] = (
            committed["rows"][0]["p99_pause_words"] + 16
        )
        assert check_pause_regression(current, committed) == []

    def test_missing_cohorts_flagged_both_directions(self):
        committed = _fresh_report(tenants=4, ops=60)
        current = copy.deepcopy(committed)
        dropped = current["rows"].pop(0)
        problems = check_pause_regression(current, committed)
        assert any(
            "missing from current" in p and dropped["kind"] in p
            for p in problems
        )
        problems = check_pause_regression(committed, current)
        assert any("no committed baseline" in p for p in problems)


class TestMutatorVisible:
    def test_concurrent_kind_uses_handoff_plus_reconcile(self):
        registry = MetricRegistry("concurrent/flat")
        registry.histogram("pause_words").record(1000)  # off-thread work
        registry.histogram("pause_words.handoff").record(3)
        registry.histogram("pause_words.reconcile").record(5)
        visible = mutator_visible_histogram(registry, "concurrent")
        assert visible.count == 2
        assert visible.max == 5  # the 1000-word mark never surfaces

    def test_other_kinds_use_full_pause_histogram(self):
        registry = MetricRegistry("mark-sweep/flat")
        registry.histogram("pause_words").record(700)
        visible = mutator_visible_histogram(registry, "mark-sweep")
        assert visible.count == 1 and visible.max == 700

    def test_empty_registry_yields_empty_histogram(self):
        visible = mutator_visible_histogram(
            MetricRegistry("x"), "mark-sweep"
        )
        assert isinstance(visible, Histogram)
        assert visible.count == 0

    def test_live_report_orders_concurrent_below_stoppers(self):
        """The paper-faithful headline: with real load, the concurrent
        collector's mutator-visible p99 sits below mark-sweep's."""
        report = _fresh_report(ops=200)
        p99 = {row["kind"]: row["p99_pause_words"] for row in report["rows"]}
        assert p99["concurrent"] < p99["mark-sweep"]


class TestRendering:
    def test_deterministic_rows_strip_wall_clock_only(self):
        report = _fresh_report(tenants=2, ops=40)
        rows = deterministic_rows(report)
        assert rows
        for row in rows:
            assert "elapsed_s" not in row
            assert "throughput_rps" not in row
            assert "p99_pause_words" in row

    def test_render_mentions_every_cohort_and_totals(self):
        report = _fresh_report(tenants=4, ops=40)
        text = render_scale_report(report)
        for row in report["rows"]:
            assert row["kind"] in text
        assert "total:" in text
