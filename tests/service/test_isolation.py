"""Satellite 1: the tenant-isolation property suite.

Interleaved service traffic must be byte-identical, per tenant, to a
serial replay of that tenant's script on a standalone heap — across
collector kinds, heap backends, shard counts, and execution modes.
And the oracle must actually have teeth: a deliberately broken
executor is injected to prove divergences are caught and ddmin-shrunk.
"""

from __future__ import annotations

import pytest

from repro.gc.registry import COLLECTOR_KINDS
from repro.service.isolation import (
    build_cases,
    compare_fingerprints,
    replay_fingerprint,
    run_isolation_suite,
    script_to_requests,
    service_fingerprint,
)
from repro.service.shard import ShardExecutor


def test_all_kinds_isolated_inline():
    """One tenant per collector kind, interleaved on two shards."""
    report = run_isolation_suite(
        tenants=len(COLLECTOR_KINDS),
        seed=0,
        ops_per_tenant=120,
        shards=2,
        jobs=0,
    )
    assert report.ok, report.summary()
    assert {case.kind for case in report.cases} == set(COLLECTOR_KINDS)


def test_all_kinds_isolated_through_worker_pool():
    """Same property with real worker processes and batch migration."""
    report = run_isolation_suite(
        tenants=len(COLLECTOR_KINDS),
        seed=1,
        ops_per_tenant=80,
        shards=2,
        jobs=2,
    )
    assert report.ok, report.summary()


def test_object_backend_tenants_isolated():
    report = run_isolation_suite(
        tenants=6,
        seed=2,
        ops_per_tenant=100,
        shards=3,
        jobs=0,
        kinds=("mark-sweep", "generational", "concurrent"),
        backends=("flat", "object"),
    )
    assert report.ok, report.summary()
    assert {case.backend for case in report.cases} == {"flat", "object"}


def test_interleave_schedule_is_irrelevant():
    """Two adversarial schedules, same per-tenant histories."""
    for interleave_seed in (7, 8):
        report = run_isolation_suite(
            tenants=4,
            seed=3,
            ops_per_tenant=80,
            shards=2,
            jobs=0,
            kinds=("generational", "incremental"),
            interleave_seed=interleave_seed,
        )
        assert report.ok, report.summary()


class _WriteDroppingExecutor(ShardExecutor):
    """A deliberately broken executor: silently swallows the payload
    of every Nth cross-object write (the classic lost-update bug)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes = 0

    def execute(self, batches):
        doctored = {}
        for shard, ops in batches.items():
            doctored[shard] = []
            for request in ops:
                if request.get("op") == "write" and request.get("dst") is not None:
                    self._writes += 1
                    if self._writes % 3 == 0:
                        request = dict(request, dst=None)
                doctored[shard].append(request)
        return super().execute(doctored)


def test_oracle_catches_and_shrinks_a_real_isolation_bug():
    report = run_isolation_suite(
        tenants=3,
        seed=4,
        ops_per_tenant=120,
        shards=2,
        jobs=0,
        kinds=("mark-sweep",),
        shrink_attempts=200,
        executor_factory=lambda shards, jobs: _WriteDroppingExecutor(
            shards, jobs=jobs
        ),
    )
    assert not report.ok
    divergence = report.divergences[0]
    # ddmin produced a smaller script that still diverges.
    assert divergence.shrunk_ops is not None
    assert divergence.shrunk_ops < divergence.script_ops
    assert divergence.shrunk_script
    assert "DIVERGED" in report.summary()


def test_tampered_response_stream_is_a_readable_divergence():
    """Any error response in a tenant's history reads as a divergence
    with the error spelled out, never a bare digest mismatch."""
    (case,) = build_cases(1, seed=5, ops_per_tenant=60)
    requests = script_to_requests(
        case.script,
        case.tenant,
        kind=case.kind,
        backend=case.backend,
        geometry=case.geometry,
    )
    executor = ShardExecutor(1, jobs=0)
    shard = executor.shard_of(case.tenant)
    responses = []
    for request in requests:
        responses.extend(executor.execute({shard: [request]})[shard])
    clean = compare_fingerprints(
        replay_fingerprint(case), service_fingerprint(requests, responses)
    )
    assert clean is None, clean

    tampered = list(responses)
    tampered[3] = {
        "ok": False,
        "error": {"kind": "internal", "detail": "injected fault"},
    }
    detail = compare_fingerprints(
        replay_fingerprint(case), service_fingerprint(requests, tampered)
    )
    assert detail is not None
    assert "injected fault" in detail
