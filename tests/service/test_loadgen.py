"""Satellite 3: the load generator is a pure function of its seed.

The request stream is pinned by a golden fingerprint; executing a plan
must never perturb it; and the deterministic scale-report rows must be
identical across runs and execution modes.
"""

from __future__ import annotations

import pytest

from repro.gc.registry import COLLECTOR_KINDS
from repro.service.loadgen import (
    PROFILES,
    build_plan,
    plan_fingerprint,
    run_load_inline,
    tenant_geometry,
)
from repro.service.report import build_scale_report, deterministic_rows
from repro.service.shard import ShardExecutor

#: The byte-exact traffic of `repro-gc load --tenants 5 --fingerprint`
#: (seed=0, profile=mixed, ops=300).  A generator change that silently
#: alters the wire traffic must fail here, loudly.
GOLDEN_FINGERPRINT = (
    "5b6f41e7accb522f3ed1f38b162704d6f3bbdddd539aa11bd78e8022b250a328"
)


class TestDeterminism:
    def test_golden_fingerprint_is_pinned(self):
        plan = build_plan(5, seed=0, profile="mixed", ops_per_tenant=300)
        assert plan_fingerprint(plan) == GOLDEN_FINGERPRINT

    def test_same_seed_same_stream_different_seed_different_stream(self):
        first = build_plan(6, seed=42, ops_per_tenant=80)
        second = build_plan(6, seed=42, ops_per_tenant=80)
        other = build_plan(6, seed=43, ops_per_tenant=80)
        assert plan_fingerprint(first) == plan_fingerprint(second)
        assert first.plans == second.plans
        assert plan_fingerprint(first) != plan_fingerprint(other)

    def test_execution_does_not_perturb_the_plan(self):
        """Plans are offline-pure: driving one through an executor and
        rebuilding from the same seed gives the same bytes."""
        plan = build_plan(4, seed=7, ops_per_tenant=60)
        before = plan_fingerprint(plan)
        run_load_inline(plan, ShardExecutor(2, jobs=0))
        assert plan_fingerprint(plan) == before
        assert plan_fingerprint(
            build_plan(4, seed=7, ops_per_tenant=60)
        ) == before

    def test_deterministic_rows_identical_across_runs_and_modes(self):
        plan = build_plan(6, seed=0, ops_per_tenant=60)

        def rows(jobs):
            executor = ShardExecutor(2, jobs=jobs)
            result = run_load_inline(plan, executor)
            report = build_scale_report(
                plan, result, executor.merged_metrics(), mode="test"
            )
            return deterministic_rows(report)

        inline_once = rows(0)
        inline_again = rows(0)
        pooled = rows(2)
        assert inline_once == inline_again
        assert pooled == inline_once


class TestPlanShape:
    def test_kinds_and_backends_cycle(self):
        plan = build_plan(
            len(COLLECTOR_KINDS) * 2,
            seed=0,
            backends=("flat", "object"),
            ops_per_tenant=40,
        )
        kinds = [p.kind for p in plan.plans]
        assert kinds == list(COLLECTOR_KINDS) * 2
        backends = {p.backend for p in plan.plans}
        assert backends == {"flat", "object"}

    def test_mixed_profile_cycles_and_explicit_profile_sticks(self):
        mixed = build_plan(6, seed=0, ops_per_tenant=40)
        assert [p.profile for p in mixed.plans] == list(PROFILES) * 2
        decay = build_plan(3, seed=0, profile="decay", ops_per_tenant=40)
        assert all(p.profile == "decay" for p in decay.plans)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            build_plan(1, seed=0, profile="thermal")

    def test_every_stream_is_open_ops_close(self):
        plan = build_plan(6, seed=1, ops_per_tenant=50)
        for tenant_plan in plan.plans:
            ops = [r["op"] for r in tenant_plan.requests]
            assert ops[0] == "open"
            assert ops[-1] == "close"
            assert "close" not in ops[:-1]
            first = tenant_plan.requests[0]
            assert first["kind"] == tenant_plan.kind
            assert first["backend"] == tenant_plan.backend


class TestPlansStayOnTheHappyPath:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_profile_runs_error_free_on_every_kind(self, profile):
        """Ambient load must never trip exhaustion: each profile is
        budgeted under the tightest per-kind capacity at tenant scale."""
        plan = build_plan(
            len(COLLECTOR_KINDS),
            seed=0,
            profile=profile,
            ops_per_tenant=120,
            geometry=tenant_geometry(),
        )
        result = run_load_inline(plan, ShardExecutor(2, jobs=0))
        failures = {
            outcome.tenant: outcome.errors
            for outcome in result.outcomes
            if outcome.errors
        }
        assert not failures, failures
        assert all(outcome.close is not None for outcome in result.outcomes)

    def test_load_actually_exercises_collection(self):
        """The point of the 1/64 geometry: every kind collects."""
        plan = build_plan(
            len(COLLECTOR_KINDS), seed=0, ops_per_tenant=300
        )
        executor = ShardExecutor(2, jobs=0)
        run_load_inline(plan, executor)
        for registry in executor.merged_metrics():
            if registry.label == "service":
                continue
            collections = registry.get("collections")
            assert collections is not None and collections.value > 0, (
                f"{registry.label} never collected"
            )
