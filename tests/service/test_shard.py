"""ShardExecutor: routing, mode byte-identity, fences, fault drills.

The pool-mode drills here are the real thing — `_chaos-exit` kills an
actual worker process with os._exit and the drill asserts the respawn
path recomputed identical answers from committed state.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.metrics.registry import MetricRegistry
from repro.service.loadgen import tenant_geometry
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.session import TenantSession
from repro.service.shard import ShardExecutor, shard_of

GEOMETRY = asdict(tenant_geometry())


def _req(op: str, tenant: str, seq: int, **payload) -> dict:
    request = {
        "v": PROTOCOL_VERSION,
        "id": f"{tenant}#{seq}",
        "op": op,
        "tenant": tenant,
    }
    request.update(payload)
    return request


def _tenant_stream(tenant: str, kind: str = "mark-sweep") -> list[dict]:
    """open, a small linked working set, checkpoint, close."""
    ops = [
        _req("open", tenant, 0, kind=kind, geometry=GEOMETRY),
        _req("alloc", tenant, 1, uid=0, size=3, fields=2),
        _req("alloc", tenant, 2, uid=1, size=2, fields=1),
        _req("write", tenant, 3, src=0, slot=0, dst=1),
        _req("alloc", tenant, 4, uid=2, size=4, fields=0),
        _req("drop", tenant, 5, uid=2),
        _req("collect", tenant, 6),
        _req("checkpoint", tenant, 7),
        _req("read", tenant, 8, uid=0),
        _req("close", tenant, 9),
    ]
    return ops


def _run_streams(
    executor: ShardExecutor, streams: dict[str, list[dict]]
) -> dict[str, list[dict]]:
    """One request per tenant per round (the closed-loop shape)."""
    cursors = {tenant: 0 for tenant in streams}
    responses: dict[str, list[dict]] = {tenant: [] for tenant in streams}
    while True:
        batches: dict[int, list[dict]] = {}
        order: dict[int, list[str]] = {}
        for tenant in sorted(streams):
            cursor = cursors[tenant]
            if cursor >= len(streams[tenant]):
                continue
            shard = executor.shard_of(tenant)
            request = streams[tenant][cursor]
            batches.setdefault(shard, []).append(request)
            # Chaos pseudo-ops never produce a response slot.
            if not str(request.get("op", "")).startswith("_chaos"):
                order.setdefault(shard, []).append(tenant)
            cursors[tenant] += 1
        if not batches:
            return responses
        results = executor.execute(batches)
        for shard, tenants in order.items():
            for position, tenant in enumerate(tenants):
                responses[tenant].append(results[shard][position])


class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for shards in (1, 2, 3, 7):
            for index in range(50):
                tenant = f"t{index:05d}"
                owner = shard_of(tenant, shards)
                assert 0 <= owner < shards
                assert owner == shard_of(tenant, shards)

    def test_every_shard_gets_tenants(self):
        owners = {shard_of(f"t{i:05d}", 4) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_executor_requires_a_shard(self):
        with pytest.raises(ValueError):
            ShardExecutor(0)


class TestModeEquivalence:
    def test_inline_and_pool_are_byte_identical(self):
        """Responses AND merged metric registries must match exactly
        across jobs=0 (in-process) and jobs=2 (worker pool)."""
        streams = {
            f"t{i}": _tenant_stream(
                f"t{i}", kind=["mark-sweep", "generational", "concurrent"][i % 3]
            )
            for i in range(6)
        }
        inline = ShardExecutor(2, jobs=0)
        pool = ShardExecutor(2, jobs=2)
        inline_responses = _run_streams(inline, streams)
        pool_responses = _run_streams(pool, streams)
        assert pool_responses == inline_responses
        inline_metrics = {
            r.label: r.canonical_json() for r in inline.merged_metrics()
        }
        pool_metrics = {
            r.label: r.canonical_json() for r in pool.merged_metrics()
        }
        assert pool_metrics == inline_metrics

    def test_single_shard_pool_batch_runs_out_of_process(self):
        """A one-shard batch must still cross the process boundary
        (resilient_map would otherwise degrade to in-process serial —
        losing crash isolation for tenant heaps)."""
        import os

        executor = ShardExecutor(1, jobs=2, chaos=True, retries=2)
        parent = os.getpid()
        # If this ran in-process, _chaos-exit would kill the test run.
        responses = executor.execute(
            {
                0: [
                    _req("open", "t0", 0, kind="mark-sweep"),
                    {"op": "_chaos-exit", "attempts": 1},
                    _req("close", "t0", 1),
                ]
            }
        )
        assert os.getpid() == parent
        assert [r["ok"] for r in responses[0]] == [True, True]


class TestErrorScoping:
    def test_unknown_tenant_and_tenant_exists(self):
        executor = ShardExecutor(1, jobs=0)
        shard = executor.shard_of("t0")
        (responses,) = executor.execute(
            {shard: [_req("checkpoint", "t0", 0)]}
        ).values()
        assert responses[0]["error"]["kind"] == "unknown-tenant"
        executor.execute({shard: [_req("open", "t0", 1, kind="mark-sweep")]})
        (responses,) = executor.execute(
            {shard: [_req("open", "t0", 2, kind="mark-sweep")]}
        ).values()
        assert responses[0]["error"]["kind"] == "tenant-exists"

    def test_internal_error_evicts_one_tenant_only(self, monkeypatch):
        """The blast-radius fence: an op that raises unexpectedly
        inside one session becomes a structured `internal` error, that
        tenant is evicted, and its neighbours never notice."""
        executor = ShardExecutor(1, jobs=0)
        shard = executor.shard_of("victim")
        assert shard == executor.shard_of("bystander")
        executor.execute(
            {
                shard: [
                    _req("open", "victim", 0, kind="mark-sweep"),
                    _req("open", "bystander", 0, kind="mark-sweep"),
                    _req("alloc", "bystander", 1, uid=0, size=2, fields=0),
                ]
            }
        )

        original = TenantSession.apply

        def exploding_apply(self, request):
            if self.tenant == "victim":
                raise RuntimeError("heap metadata corrupted")
            return original(self, request)

        monkeypatch.setattr(TenantSession, "apply", exploding_apply)
        (responses,) = executor.execute(
            {
                shard: [
                    _req("alloc", "victim", 1, uid=0, size=2, fields=0),
                    _req("read", "bystander", 2, uid=0),
                ]
            }
        ).values()
        assert responses[0]["error"]["kind"] == "internal"
        assert "evicted" in responses[0]["error"]["detail"]
        assert responses[1]["ok"] is True
        monkeypatch.setattr(TenantSession, "apply", original)
        # The victim is gone; the bystander still serves.
        (responses,) = executor.execute(
            {
                shard: [
                    _req("checkpoint", "victim", 2),
                    _req("checkpoint", "bystander", 3),
                ]
            }
        ).values()
        assert responses[0]["error"]["kind"] == "unknown-tenant"
        assert responses[1]["ok"] is True


class TestPartialStateShipping:
    def test_untouched_tenants_are_not_shipped_but_still_counted(self):
        executor = ShardExecutor(1, jobs=2, tenant_cap=3)
        shard = 0
        executor.execute(
            {
                shard: [
                    _req("open", "a", 0, kind="mark-sweep"),
                    _req("open", "b", 0, kind="mark-sweep"),
                    _req("open", "c", 0, kind="mark-sweep"),
                ]
            }
        )
        assert executor.open_tenants(shard) == 3
        # A batch touching only "d" ships no blobs for a/b/c, yet the
        # worker must still see occupancy 3 and refuse admission.
        (responses,) = executor.execute(
            {shard: [_req("open", "d", 0, kind="mark-sweep")]}
        ).values()
        error = responses[0]["error"]
        assert error["kind"] == "backpressure"
        assert error["open_tenants"] == 3
        assert error["tenant_cap"] == 3
        # Closing frees the slot for the next open.
        executor.execute({shard: [_req("close", "a", 1)]})
        assert executor.open_tenants(shard) == 2
        (responses,) = executor.execute(
            {shard: [_req("open", "d", 1, kind="mark-sweep")]}
        ).values()
        assert responses[0]["ok"] is True


class TestFaultDrills:
    def _streams(self):
        return {
            f"t{i}": _tenant_stream(f"t{i}", kind="generational")
            for i in range(4)
        }

    def test_worker_exit_mid_load_loses_no_committed_state(self):
        """Kill a worker between batches: every committed checkpoint
        digest must match the chaos-free run exactly."""
        reference = _run_streams(ShardExecutor(2, jobs=2), self._streams())

        executor = ShardExecutor(2, jobs=2, chaos=True, retries=2)
        streams = self._streams()
        # Splice a worker-kill into the middle of one tenant's stream;
        # chaos ops produce no response and never reach a session.
        streams["t0"] = (
            streams["t0"][:5]
            + [{"op": "_chaos-exit", "attempts": 1, "tenant": "t0"}]
            + streams["t0"][5:]
        )
        drilled = _run_streams(executor, streams)
        assert drilled == reference

    def test_drained_batch_fails_structurally_then_revives(self):
        """Exhaust the retry budget: the batch drains to shard-failed,
        committed state is intact, and the next batch serves again."""
        executor = ShardExecutor(1, jobs=2, chaos=True, retries=1)
        shard = 0
        executor.execute(
            {
                shard: [
                    _req("open", "t0", 0, kind="mark-sweep"),
                    _req("alloc", "t0", 1, uid=0, size=3, fields=0),
                ]
            }
        )
        before = executor.shard_state(shard)["t0"]
        (responses,) = executor.execute(
            {
                shard: [
                    {"op": "_chaos-exit", "attempts": 99, "tenant": "t0"},
                    _req("alloc", "t0", 2, uid=1, size=2, fields=0),
                ]
            }
        ).values()
        assert len(responses) == 1  # chaos pseudo-op gets no response
        assert responses[0]["error"]["kind"] == "shard-failed"
        assert executor.respawns[shard] == 1
        assert executor.shard_state(shard)["t0"] == before
        # Revival: the same request succeeds on the next batch.
        (responses,) = executor.execute(
            {shard: [_req("alloc", "t0", 3, uid=1, size=2, fields=0)]}
        ).values()
        assert responses[0]["ok"] is True
        assert responses[0]["uid"] == 1

    def test_stats_snapshot_shape(self):
        executor = ShardExecutor(3, jobs=0, tenant_cap=10)
        executor.execute(
            {executor.shard_of("t0"): [_req("open", "t0", 0)]}
        )
        stats = executor.stats()
        assert stats["shards"] == 3
        assert stats["tenant_cap"] == 10
        assert stats["batches"] == 1
        assert sum(stats["open_tenants"]) == 1
        assert stats["respawns"] == [0, 0, 0]
