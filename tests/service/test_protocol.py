"""Wire-protocol validation: every malformed shape is a bad-request."""

from __future__ import annotations

import json

import pytest

from repro.gc.registry import GcGeometry
from repro.service.protocol import (
    ERROR_KINDS,
    PROTOCOL_VERSION,
    SERVER_OPS,
    TENANT_OPS,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    geometry_from_payload,
    ok_response,
    validate_request,
)


def _req(op: str, **payload) -> dict:
    request = {"v": PROTOCOL_VERSION, "id": 1, "op": op, "tenant": "t0"}
    request.update(payload)
    return request


class TestValidateRequest:
    def test_accepts_every_tenant_op_minimal_shape(self):
        shapes = {
            "open": {},
            "alloc": {"uid": 0, "size": 2, "fields": 1},
            "write": {"src": 0, "slot": 0, "dst": None},
            "drop": {"uid": 0},
            "read": {"uid": 0},
            "checkpoint": {},
            "collect": {},
            "close": {},
        }
        assert set(shapes) == set(TENANT_OPS)
        for op, payload in shapes.items():
            validated = validate_request(_req(op, **payload))
            assert validated["op"] == op

    def test_accepts_server_ops_without_tenant(self):
        for op in SERVER_OPS:
            validated = validate_request(
                {"v": PROTOCOL_VERSION, "id": "x", "op": op}
            )
            assert validated["op"] == op

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"v": 0, "id": 1, "op": "ping"},
            {"v": PROTOCOL_VERSION, "id": 1, "op": "explode"},
            {"v": PROTOCOL_VERSION, "id": None, "op": "ping"},
            {"v": PROTOCOL_VERSION, "id": True, "op": "ping"},
            {"v": PROTOCOL_VERSION, "id": 1, "op": "open"},  # no tenant
            {"v": PROTOCOL_VERSION, "id": 1, "op": "open", "tenant": ""},
        ],
    )
    def test_rejects_structural_problems(self, payload):
        with pytest.raises(ProtocolError):
            validate_request(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            _req("open", kind="no-such-collector"),
            _req("open", backend="no-such-backend"),
            _req("open", geometry={"nursery_words": "big"}),
            _req("open", geometry={"not_a_field": 1}),
            _req("alloc", uid=-1, size=2),
            _req("alloc", uid=0, size=0),
            _req("alloc", uid=0, size=2, fields=3),
            _req("alloc", uid=0, size=2, fields=-1),
            _req("write", src=0, slot=-1, dst=None),
            _req("write", src=0, slot=0, dst=-2),
            _req("write", src=0, slot=0, dst=True),
            _req("drop", uid="zero"),
            _req("read"),
        ],
    )
    def test_rejects_op_payload_problems(self, payload):
        with pytest.raises(ProtocolError):
            validate_request(payload)

    def test_error_is_bad_request_kind(self):
        try:
            validate_request(_req("alloc", uid=0, size=0))
        except ProtocolError as exc:
            assert exc.kind == "bad-request"
        else:
            pytest.fail("expected ProtocolError")


class TestGeometryFromPayload:
    def test_none_is_default_geometry(self):
        assert geometry_from_payload(None) == GcGeometry()

    def test_integer_overrides_apply(self):
        geometry = geometry_from_payload(
            {"nursery_words": 128, "semispace_words": 256}
        )
        assert geometry.nursery_words == 128
        assert geometry.semispace_words == 256

    def test_auto_expand_accepts_bool_only(self):
        assert geometry_from_payload({"auto_expand": False}).auto_expand is False
        assert geometry_from_payload({"auto_expand": True}).auto_expand is True
        with pytest.raises(ProtocolError):
            geometry_from_payload({"auto_expand": 1})
        with pytest.raises(ProtocolError):
            geometry_from_payload({"auto_expand": "no"})

    def test_load_factor_accepts_numbers(self):
        assert geometry_from_payload({"load_factor": 2}).load_factor == 2.0
        with pytest.raises(ProtocolError):
            geometry_from_payload({"load_factor": True})

    def test_unknown_field_rejected_not_ignored(self):
        with pytest.raises(ProtocolError) as excinfo:
            geometry_from_payload({"nursery_wordz": 64})
        assert "nursery_wordz" in str(excinfo.value)

    def test_bool_rejected_for_integer_field(self):
        with pytest.raises(ProtocolError):
            geometry_from_payload({"nursery_words": True})

    def test_roundtrips_scaled_tenant_geometry(self):
        from dataclasses import asdict

        from repro.service.loadgen import tenant_geometry

        geometry = tenant_geometry()
        assert geometry_from_payload(asdict(geometry)) == geometry


class TestWireCodec:
    def test_encode_decode_roundtrip(self):
        message = _req("alloc", uid=3, size=2, fields=1)
        assert decode_line(encode_line(message)) == message

    def test_encode_is_canonical_single_line(self):
        line = encode_line({"b": 1, "a": {"z": 1, "y": 2}})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert line == b'{"a":{"y":2,"z":1},"b":1}\n'

    @pytest.mark.parametrize(
        "line",
        [b"not json\n", b"[1,2,3]\n", b'"just a string"\n', b"\xff\xfe\n"],
    )
    def test_decode_rejects_non_object_lines(self, line):
        with pytest.raises(ProtocolError):
            decode_line(line)

    def test_ok_and_error_response_shapes(self):
        ok = ok_response(7, pong=True)
        assert ok == {"v": PROTOCOL_VERSION, "id": 7, "ok": True, "pong": True}
        err = error_response(7, "backpressure", "full", shard=1)
        assert err["ok"] is False
        assert err["error"] == {
            "kind": "backpressure",
            "detail": "full",
            "shard": 1,
        }

    def test_error_response_refuses_unknown_kind(self):
        with pytest.raises(ValueError):
            error_response(1, "not-a-kind", "nope")
        assert len(set(ERROR_KINDS)) == len(ERROR_KINDS)

    def test_responses_are_json_encodable(self):
        for message in (ok_response(1, x=[1, 2]), error_response(None, "internal", "boom")):
            json.loads(encode_line(message))
