"""TenantSession semantics: replay-equivalence, migration, metric drains."""

from __future__ import annotations

import pytest

from repro.gc.registry import COLLECTOR_KINDS
from repro.metrics.registry import MetricRegistry
from repro.service.isolation import (
    TenantCase,
    compare_fingerprints,
    replay_fingerprint,
    script_to_requests,
    service_fingerprint,
)
from repro.service.loadgen import tenant_geometry
from repro.service.protocol import ProtocolError
from repro.service.session import OpRejected, TenantSession
from repro.verify.replay import generate_script

GEOMETRY = tenant_geometry()


def _drive(session: TenantSession, requests: list[dict]) -> list[dict]:
    """Apply tenant ops directly (open/close handled out of band)."""
    responses = []
    for request in requests:
        if request["op"] == "open":
            continue
        if request["op"] == "close":
            responses.append({"ok": True, **session.close_payload()})
            continue
        responses.append({"ok": True, **session.apply(request)})
    return responses


@pytest.mark.parametrize("kind", COLLECTOR_KINDS)
def test_session_history_equals_serial_replay(kind):
    """The core session property: ops through apply() produce the same
    checkpoints, stats, and pause log as repro.verify.replay."""
    case = TenantCase(
        tenant="solo",
        kind=kind,
        backend="flat",
        script=generate_script(140, seed=11),
        geometry=GEOMETRY,
    )
    requests = script_to_requests(
        case.script, case.tenant, kind=kind, geometry=GEOMETRY
    )
    session = TenantSession(case.tenant, kind=kind, geometry=GEOMETRY)
    responses = _drive(session, requests)
    detail = compare_fingerprints(
        replay_fingerprint(case),
        service_fingerprint(
            [r for r in requests if r["op"] not in ("open",)], responses
        ),
    )
    assert detail is None, detail


@pytest.mark.parametrize("backend", ["flat", "object"])
def test_backend_choice_preserves_replay_equivalence(backend):
    case = TenantCase(
        tenant="b",
        kind="generational",
        backend=backend,
        script=generate_script(120, seed=5),
        geometry=GEOMETRY,
    )
    requests = script_to_requests(
        case.script, case.tenant, kind=case.kind,
        backend=backend, geometry=GEOMETRY,
    )
    session = TenantSession(
        case.tenant, kind=case.kind, backend=backend, geometry=GEOMETRY
    )
    responses = _drive(session, requests)
    detail = compare_fingerprints(
        replay_fingerprint(case),
        service_fingerprint(
            [r for r in requests if r["op"] != "open"], responses
        ),
    )
    assert detail is None, detail


@pytest.mark.parametrize("kind", ["generational", "incremental", "concurrent"])
def test_capture_restore_mid_script_is_invisible(kind):
    """Freezing a session after op K and reviving it (the shard
    migration unit) must not change anything the tenant observes."""
    script = generate_script(120, seed=3)
    requests = script_to_requests(
        script, "mig", kind=kind, geometry=GEOMETRY
    )
    ops = [r for r in requests if r["op"] not in ("open", "close")]
    split = len(ops) // 2

    plain = TenantSession("mig", kind=kind, geometry=GEOMETRY)
    plain_responses = [plain.apply(request) for request in ops]

    migrated = TenantSession("mig", kind=kind, geometry=GEOMETRY)
    migrated_responses = [
        migrated.apply(request) for request in ops[:split]
    ]
    migrated = TenantSession.from_state(migrated.capture())
    migrated_responses += [
        migrated.apply(request) for request in ops[split:]
    ]

    assert migrated_responses == plain_responses
    assert migrated.close_payload() == plain.close_payload()


def test_drain_cadence_does_not_change_metrics():
    """Draining after every op, or once at the end, merges identically —
    the property that makes inline and pool metrics byte-equal."""
    script = generate_script(160, seed=9)
    ops = [
        r
        for r in script_to_requests(
            script, "m", kind="generational", geometry=GEOMETRY
        )
        if r["op"] not in ("open", "close")
    ]

    eager_session = TenantSession("m", kind="generational", geometry=GEOMETRY)
    eager = MetricRegistry("generational/flat")
    for request in ops:
        eager_session.apply(request)
        eager_session.drain_metrics(eager)

    lazy_session = TenantSession("m", kind="generational", geometry=GEOMETRY)
    lazy = MetricRegistry("generational/flat")
    for request in ops:
        lazy_session.apply(request)
    lazy_session.drain_metrics(lazy)

    assert eager.canonical_json() == lazy.canonical_json()
    # The drain saw real collections, not an empty registry.
    assert eager.get("collections") is not None


def test_drain_survives_capture_restore_without_double_counting():
    script = generate_script(160, seed=9)
    ops = [
        r
        for r in script_to_requests(
            script, "m", kind="mark-sweep", geometry=GEOMETRY
        )
        if r["op"] not in ("open", "close")
    ]
    split = len(ops) // 2

    reference_session = TenantSession("m", kind="mark-sweep", geometry=GEOMETRY)
    reference = MetricRegistry("mark-sweep/flat")
    for request in ops:
        reference_session.apply(request)
    reference_session.drain_metrics(reference)

    session = TenantSession("m", kind="mark-sweep", geometry=GEOMETRY)
    registry = MetricRegistry("mark-sweep/flat")
    for request in ops[:split]:
        session.apply(request)
    session.drain_metrics(registry)  # high-water marks advance...
    session = TenantSession.from_state(session.capture())  # ...and travel
    for request in ops[split:]:
        session.apply(request)
    session.drain_metrics(registry)

    assert registry.canonical_json() == reference.canonical_json()


def test_unknown_uid_is_scoped_error_and_session_survives():
    session = TenantSession("t", kind="mark-sweep", geometry=GEOMETRY)
    session.apply({"op": "alloc", "uid": 0, "size": 2, "fields": 1})
    with pytest.raises(ProtocolError) as excinfo:
        session.apply({"op": "read", "uid": 99})
    assert excinfo.value.kind == "unknown-uid"
    # Session still serves.
    payload = session.apply({"op": "read", "uid": 0})
    assert payload["size"] == 2


def test_duplicate_uid_rejected():
    session = TenantSession("t", kind="mark-sweep", geometry=GEOMETRY)
    session.apply({"op": "alloc", "uid": 0, "size": 1, "fields": 0})
    with pytest.raises(ProtocolError):
        session.apply({"op": "alloc", "uid": 0, "size": 1, "fields": 0})


def test_heap_exhausted_surfaces_occupancy_and_session_survives():
    from repro.gc.registry import GcGeometry

    geometry = GcGeometry(
        nursery_words=64, semispace_words=64, step_words=64,
        slice_budget=8, auto_expand=False,
    )
    session = TenantSession("t", kind="mark-sweep", geometry=geometry)
    uid = 0
    with pytest.raises(OpRejected) as excinfo:
        while True:
            session.apply({"op": "alloc", "uid": uid, "size": 8, "fields": 0})
            uid += 1
    rejection = excinfo.value
    assert rejection.kind == "heap-exhausted"
    assert rejection.extra["requested"] == 8
    assert isinstance(rejection.extra["occupancy"], dict)
    # The session keeps serving: drop everything, collect, allocate again.
    for dropped in range(uid):
        session.apply({"op": "drop", "uid": dropped})
    session.apply({"op": "collect"})
    payload = session.apply({"op": "alloc", "uid": uid, "size": 8, "fields": 0})
    assert payload["uid"] == uid
