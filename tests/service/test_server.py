"""The asyncio front door: sockets, multiplexing, server ops, shutdown."""

from __future__ import annotations

import asyncio
import json

from repro.service.loadgen import (
    _Connection,
    build_plan,
    run_load,
    run_load_inline,
)
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.report import build_scale_report, deterministic_rows
from repro.service.server import HeapServer


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(body, **server_kwargs):
    server = HeapServer(**server_kwargs)
    port = await server.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    connection = _Connection(reader, writer)
    try:
        return await body(server, port, connection)
    finally:
        await connection.close()
        await server.close()


def _req(op: str, request_id, **payload) -> dict:
    request = {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
    request.update(payload)
    return request


def test_ping_stats_and_metrics():
    async def body(server, port, connection):
        pong = await connection.request(_req("ping", 1))
        assert pong["ok"] and pong["pong"] is True

        await connection.request(
            _req("open", 2, tenant="t0", kind="mark-sweep")
        )
        stats = await connection.request(_req("stats", 3))
        assert stats["shards"] == 2
        assert sum(stats["open_tenants"]) == 1
        assert stats["requests_served"] >= 3

        metrics = await connection.request(_req("metrics", 4))
        assert "service" in metrics["registries"]

        prometheus = await connection.request(
            _req("metrics", 5, format="prometheus")
        )
        assert "requests" in prometheus["prometheus"]

    _run(_with_server(body, shards=2))


def test_full_tenant_lifecycle_over_socket():
    async def body(server, port, connection):
        assert (
            await connection.request(
                _req("open", 0, tenant="t", kind="generational")
            )
        )["ok"]
        for uid in range(3):
            response = await connection.request(
                _req("alloc", uid + 1, tenant="t", uid=uid, size=2, fields=1)
            )
            assert response["ok"]
        assert (
            await connection.request(
                _req("write", 4, tenant="t", src=0, slot=0, dst=1)
            )
        )["ok"]
        checkpoint = await connection.request(
            _req("checkpoint", 5, tenant="t")
        )
        assert checkpoint["live_words"] == 6
        assert checkpoint["objects"] == 3
        read = await connection.request(_req("read", 6, tenant="t", uid=0))
        assert read["fields"] == [1]
        closed = await connection.request(_req("close", 7, tenant="t"))
        assert closed["ok"]
        assert closed["final"]["digest"] == checkpoint["digest"]

    _run(_with_server(body, shards=2))


def test_malformed_lines_answered_not_fatal():
    async def body(server, port, connection):
        # Raw garbage on the same socket the connection multiplexes;
        # responses without a known id are dropped by the client, so
        # probe via a follow-up ping that must still be answered.
        connection.writer.write(b"this is not json\n")
        connection.writer.write(b'{"v":99,"id":1,"op":"ping"}\n')
        connection.writer.write(b'{"v":1,"id":2,"op":"teleport"}\n')
        await connection.writer.drain()
        pong = await connection.request(_req("ping", 3))
        assert pong["ok"]

    _run(_with_server(body))


def test_bad_request_error_shape_on_raw_socket():
    async def body():
        server = HeapServer()
        port = await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(b"not json\n")
        await writer.drain()
        response = json.loads(await reader.readline())
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["kind"] == "bad-request"

        writer.write(b'{"v":1,"id":7,"op":"warp","tenant":"t"}\n')
        await writer.drain()
        response = json.loads(await reader.readline())
        assert response["id"] == 7
        assert response["error"]["kind"] == "bad-request"
        writer.close()
        await writer.wait_closed()
        await server.close()

    _run(body())


def test_one_connection_multiplexes_many_tenants():
    async def body(server, port, connection):
        tenants = [f"t{i}" for i in range(6)]
        await asyncio.gather(
            *(
                connection.request(
                    _req("open", f"{tenant}:open", tenant=tenant)
                )
                for tenant in tenants
            )
        )

        async def mutate(tenant):
            for uid in range(4):
                response = await connection.request(
                    _req(
                        "alloc",
                        f"{tenant}:a{uid}",
                        tenant=tenant,
                        uid=uid,
                        size=2,
                        fields=0,
                    )
                )
                assert response["ok"]
            return await connection.request(
                _req("checkpoint", f"{tenant}:c", tenant=tenant)
            )

        checkpoints = await asyncio.gather(
            *(mutate(tenant) for tenant in tenants)
        )
        digests = {c["digest"] for c in checkpoints}
        assert len(digests) == 1  # identical workloads, identical heaps
        assert all(c["live_words"] == 8 for c in checkpoints)

    _run(_with_server(body, shards=2))


def test_shutdown_op_unblocks_serve_until_closed():
    async def body():
        server = HeapServer()
        port = await server.start()
        serve_task = asyncio.create_task(server.serve_until_closed())
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        connection = _Connection(reader, writer)
        response = await connection.request(_req("shutdown", 1))
        assert response["closing"] is True
        await asyncio.wait_for(serve_task, timeout=5)
        await connection.close()

    _run(body())


def test_socket_load_run_matches_inline_reference():
    """The whole stack end to end: run_load over TCP produces the same
    deterministic scale-report rows as the inline executor."""
    plan = build_plan(8, seed=0, ops_per_tenant=60)

    async def over_socket():
        server = HeapServer(shards=2)
        port = await server.start()
        try:
            result = await run_load(
                plan, "127.0.0.1", port, connections=3
            )
        finally:
            await server.close()
        return result

    socket_result = _run(over_socket())
    assert socket_result.error_total == 0
    assert socket_result.requests_sent == plan.request_count
    assert socket_result.server_stats is not None
    assert socket_result.metrics is not None

    from repro.service.shard import ShardExecutor

    executor = ShardExecutor(2, jobs=0)
    inline_result = run_load_inline(plan, executor)
    socket_rows = deterministic_rows(
        build_scale_report(plan, socket_result, mode="socket")
    )
    inline_rows = deterministic_rows(
        build_scale_report(
            plan, inline_result, executor.merged_metrics(), mode="inline"
        )
    )
    assert socket_rows == inline_rows
