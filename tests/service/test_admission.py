"""Satellite 2: admission control and graceful exhaustion, per kind.

Backpressure and heap exhaustion are *responses*, not failures: the
occupancy rides in the error payload, no session dies, and committed
state survives worker loss mid-load.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry
from repro.service.loadgen import tenant_geometry
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.shard import ShardExecutor

#: A geometry with growth disabled everywhere it exists: every kind
#: hits a hard wall a few dozen words in, which is the point.
EXHAUSTIBLE = GcGeometry(
    nursery_words=64,
    semispace_words=64,
    step_words=64,
    slice_budget=8,
    auto_expand=False,
)


def _req(op: str, tenant: str, seq: int, **payload) -> dict:
    request = {
        "v": PROTOCOL_VERSION,
        "id": f"{tenant}#{seq}",
        "op": op,
        "tenant": tenant,
    }
    request.update(payload)
    return request


def _one(executor: ShardExecutor, request: dict) -> dict:
    shard = executor.shard_of(request["tenant"])
    return executor.execute({shard: [request]})[shard][0]


class TestAdmissionControl:
    @pytest.mark.parametrize("jobs", [0, 2])
    def test_cap_refuses_with_occupancy_then_frees_on_close(self, jobs):
        executor = ShardExecutor(1, jobs=jobs, tenant_cap=3)
        for index in range(3):
            response = _one(
                executor, _req("open", f"t{index}", 0, kind="mark-sweep")
            )
            assert response["ok"] is True
        refused = _one(executor, _req("open", "t3", 0, kind="mark-sweep"))
        error = refused["error"]
        assert error["kind"] == "backpressure"
        assert error["open_tenants"] == 3
        assert error["tenant_cap"] == 3
        assert error["shard"] == 0
        # The refused tenant holds no slot; closing one admits it.
        assert _one(executor, _req("close", "t0", 1))["ok"] is True
        assert _one(executor, _req("open", "t3", 1, kind="mark-sweep"))[
            "ok"
        ] is True

    def test_cap_is_per_shard(self):
        executor = ShardExecutor(2, jobs=0, tenant_cap=1)
        opened = {0: [], 1: []}
        refused = []
        for index in range(8):
            tenant = f"t{index}"
            response = _one(executor, _req("open", tenant, 0))
            shard = executor.shard_of(tenant)
            if response["ok"]:
                opened[shard].append(tenant)
            else:
                refused.append(tenant)
        assert len(opened[0]) == 1 and len(opened[1]) == 1
        assert len(refused) == 6


class TestGracefulExhaustion:
    @pytest.mark.parametrize("kind", COLLECTOR_KINDS)
    def test_every_kind_exhausts_structurally_not_fatally(self, kind):
        """Pinned geometry + relentless allocation: the alloc fails
        with heap-exhausted and an occupancy snapshot, the session
        stays open, and ordinary ops keep working."""
        executor = ShardExecutor(1, jobs=0)
        assert _one(
            executor,
            _req("open", "t", 0, kind=kind, geometry=asdict(EXHAUSTIBLE)),
        )["ok"]
        uid = 0
        exhausted = None
        for _ in range(200):
            response = _one(
                executor, _req("alloc", "t", 1, uid=uid, size=8, fields=1)
            )
            if response["ok"]:
                uid += 1
                continue
            exhausted = response
            break
        assert exhausted is not None, f"{kind} never exhausted"
        error = exhausted["error"]
        assert error["kind"] == "heap-exhausted"
        # `requested` is the words the failing phase needed — the raw
        # alloc for most kinds, the promotion batch for generational.
        assert isinstance(error["requested"], int) and error["requested"] >= 8
        assert isinstance(error["occupancy"], dict) and error["occupancy"]
        assert uid > 0
        # The session survives: reads, drops, and collects all proceed.
        assert _one(executor, _req("read", "t", 2, uid=0))["ok"]
        for dropped in range(uid):
            assert _one(executor, _req("drop", "t", 3, uid=dropped))["ok"]
        collected = _one(executor, _req("collect", "t", 4))
        assert collected["ok"], collected
        allocated = _one(
            executor, _req("alloc", "t", 5, uid=uid, size=8, fields=0)
        )
        assert allocated["ok"], f"{kind} did not recover after drops"
        closed = _one(executor, _req("close", "t", 6))
        assert closed["ok"] and closed["collections"] >= 1

    def test_exhaustion_does_not_leak_across_tenants(self):
        """One tenant at the wall, its shard-mate on the happy path."""
        executor = ShardExecutor(1, jobs=0)
        _one(
            executor,
            _req("open", "greedy", 0, kind="stop-and-copy",
                 geometry=asdict(EXHAUSTIBLE)),
        )
        _one(
            executor,
            _req("open", "modest", 0, kind="stop-and-copy",
                 geometry=asdict(tenant_geometry())),
        )
        uid = 0
        while True:
            response = _one(
                executor,
                _req("alloc", "greedy", 1, uid=uid, size=8, fields=0),
            )
            if not response["ok"]:
                assert response["error"]["kind"] == "heap-exhausted"
                break
            uid += 1
        for seq in range(10):
            assert _one(
                executor,
                _req("alloc", "modest", seq + 1, uid=seq, size=4, fields=0),
            )["ok"]


class TestWorkerLossDrill:
    def test_no_committed_state_lost_across_worker_kill(self):
        """Build state, kill the worker (for real), keep loading: the
        post-kill history equals a run where no worker ever died."""

        def stream():
            ops = [_req("open", "t", 0, kind="generational",
                        geometry=asdict(tenant_geometry()))]
            seq = 1
            for uid in range(12):
                ops.append(
                    _req("alloc", "t", seq, uid=uid, size=3, fields=1)
                )
                seq += 1
                if uid % 4 == 3:
                    ops.append(_req("checkpoint", "t", seq))
                    seq += 1
            ops.append(_req("close", "t", seq))
            return ops

        def run(executor, requests):
            responses = []
            for request in requests:
                shard = executor.shard_of("t")
                responses.extend(
                    executor.execute({shard: [request]}).get(shard, [])
                )
            return responses

        reference = run(ShardExecutor(1, jobs=2), stream())

        executor = ShardExecutor(1, jobs=2, chaos=True, retries=2)
        requests = stream()
        drilled = []
        for index, request in enumerate(requests):
            shard = executor.shard_of("t")
            batch = [request]
            if index == 8:  # mid-load, state already committed
                batch = [
                    {"op": "_chaos-exit", "attempts": 1, "tenant": "t"},
                    request,
                ]
            drilled.extend(executor.execute({shard: batch}).get(shard, []))
        assert executor.respawns == [0]  # replayed within the batch
        assert drilled == reference
