"""Satellite regression: co-resident collectors never share metrics.

Two instrumented collectors in one process — same kind or different
kinds, workloads interleaved step by step — must each end with a
registry byte-identical to the one they produce running alone.  This
is the single-process miniature of the service's tenant-metric
isolation (and what `MetricsSession`'s `name`/`name#2` labelling is
for).
"""

from __future__ import annotations

from repro.gc.registry import GcGeometry, collector_factory
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.metrics.instrument import instrument_collector, metrics_session
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule

WORK_WORDS = 12_000

#: Small enough that every kind collects repeatedly inside WORK_WORDS.
GEOMETRY = GcGeometry().scaled(1, 16)


def _build(kind: str, seed: int):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = collector_factory(kind, GEOMETRY)(heap, roots)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(300.0, seed=seed)
    )
    return collector, mutator


def _solo_registry(kind: str, seed: int, label: str) -> str:
    collector, mutator = _build(kind, seed)
    instrument = instrument_collector(collector, label=label)
    mutator.run(WORK_WORDS)
    collections = instrument.registry.get("collections")
    assert collections is not None and collections.value > 0, (
        f"{kind} produced no collections — the comparison would be vacuous"
    )
    return instrument.registry.canonical_json()


def _interleaved_registries(specs) -> list[str]:
    """specs: [(kind, seed, label)]; all run in lockstep in one process."""
    contexts = []
    for kind, seed, label in specs:
        collector, mutator = _build(kind, seed)
        contexts.append(
            (instrument_collector(collector, label=label), mutator)
        )
    active = list(contexts)
    while active:
        for context in list(active):
            _, mutator = context
            if mutator.collector.heap.clock >= WORK_WORDS:
                active.remove(context)
                continue
            mutator.step()
    return [
        instrument.registry.canonical_json() for instrument, _ in contexts
    ]


def test_same_kind_pair_does_not_cross_contaminate():
    solo_a = _solo_registry("mark-sweep", seed=1, label="ms-a")
    solo_b = _solo_registry("mark-sweep", seed=2, label="ms-b")
    assert solo_a != solo_b  # different seeds: genuinely distinct series
    pair = _interleaved_registries(
        [("mark-sweep", 1, "ms-a"), ("mark-sweep", 2, "ms-b")]
    )
    assert pair == [solo_a, solo_b]


def test_different_kind_pair_does_not_cross_contaminate():
    solo = [
        _solo_registry("generational", seed=3, label="gen"),
        _solo_registry("stop-and-copy", seed=4, label="scc"),
    ]
    pair = _interleaved_registries(
        [("generational", 3, "gen"), ("stop-and-copy", 4, "scc")]
    )
    assert pair == solo


def test_session_labels_keep_same_kind_collectors_apart():
    """The conftest gap this PR closes: a session hosting duplicate
    kinds must give each its own registry under a distinct label."""
    with metrics_session(events=False) as session:
        first, first_mutator = _build("mark-sweep", seed=5)
        second, second_mutator = _build("mark-sweep", seed=6)
        assert first.metrics is not None and second.metrics is not None
        assert first.metrics is not second.metrics
        first_mutator.run(WORK_WORDS)
        second_mutator.run(WORK_WORDS)
    labels = list(session.instruments)
    assert labels == [first.name, f"{first.name}#2"]
    registries = session.registries()
    assert first.stats.collections > 0 and second.stats.collections > 0
    assert (
        registries[0].get("collections").value == first.stats.collections
    )
    assert (
        registries[1].get("collections").value == second.stats.collections
    )
    # Different seeds, genuinely different series — nothing bled over.
    assert (
        registries[0].get("pause_words").total
        != registries[1].get("pause_words").total
    )


def test_service_sessions_mirror_the_property():
    """Service-level restatement: two tenants with the same kind on
    one shard drain into one label, and the merged registry equals the
    sum of each tenant's solo registry (merge is the only coupling)."""
    from repro.metrics.registry import MetricRegistry, merge_registries
    from repro.service.isolation import build_cases, script_to_requests
    from repro.service.loadgen import tenant_geometry
    from repro.service.session import TenantSession

    cases = build_cases(2, seed=9, ops_per_tenant=120, kinds=("generational",))

    def solo(case) -> MetricRegistry:
        session = TenantSession(
            case.tenant, kind=case.kind, geometry=case.geometry
        )
        registry = MetricRegistry(session.metrics_label)
        for request in script_to_requests(
            case.script, case.tenant, kind=case.kind, geometry=case.geometry
        ):
            if request["op"] in ("open", "close"):
                continue
            session.apply(request)
        session.drain_metrics(registry)
        return registry

    solos = [solo(case) for case in cases]
    merged_reference = merge_registries(solos, solos[0].label)

    shared = MetricRegistry(solos[0].label)
    sessions = {
        case.tenant: TenantSession(
            case.tenant, kind=case.kind, geometry=case.geometry
        )
        for case in cases
    }
    streams = {
        case.tenant: [
            r
            for r in script_to_requests(
                case.script, case.tenant, kind=case.kind,
                geometry=case.geometry,
            )
            if r["op"] not in ("open", "close")
        ]
        for case in cases
    }
    for cursor in range(max(len(s) for s in streams.values())):
        for case in cases:  # strict alternation: maximal interleave
            stream = streams[case.tenant]
            if cursor < len(stream):
                sessions[case.tenant].apply(stream[cursor])
    for session in sessions.values():
        session.drain_metrics(shared)
    assert shared.canonical_json() == merged_reference.canonical_json()
