"""Sweep engine: cell determinism, parallel merge, overhead probe."""

from __future__ import annotations

from repro.metrics.sweep import (
    SWEEP_COLLECTORS,
    measure_overhead,
    run_decay_cell,
    run_metrics_sweep,
)

#: Small but collection-bearing workload for test-speed cells.
CELL_WORDS = 12_000


class TestDecayCell:
    def test_same_seed_same_metrics(self):
        a, _ = run_decay_cell("generational", 7, alloc_words=CELL_WORDS)
        b, _ = run_decay_cell("generational", 7, alloc_words=CELL_WORDS)
        assert a.canonical_json() == b.canonical_json()

    def test_different_seeds_differ(self):
        a, _ = run_decay_cell("generational", 1, alloc_words=CELL_WORDS)
        b, _ = run_decay_cell("generational", 2, alloc_words=CELL_WORDS)
        assert a.canonical_json() != b.canonical_json()

    def test_events_flag_returns_a_stream(self):
        registry, stream = run_decay_cell(
            "generational", 0, alloc_words=CELL_WORDS, events=True
        )
        assert stream is not None
        assert registry.counter("collections").value == len(
            stream.events("collection-end")
        )
        _, no_stream = run_decay_cell(
            "generational", 0, alloc_words=CELL_WORDS
        )
        assert no_stream is None


class TestSweep:
    def test_jobs_level_does_not_change_merged_metrics(self):
        """The tentpole determinism contract: --jobs is invisible."""
        serial = run_metrics_sweep(
            ("generational", "hybrid"), runs=2, jobs=1, seed=5, quick=True
        )
        parallel = run_metrics_sweep(
            ("generational", "hybrid"), runs=2, jobs=2, seed=5, quick=True
        )
        assert (
            serial["merged"].canonical_json()
            == parallel["merged"].canonical_json()
        )
        for kind in ("generational", "hybrid"):
            assert (
                serial["collectors"][kind].canonical_json()
                == parallel["collectors"][kind].canonical_json()
            )

    def test_sweep_covers_all_default_collectors(self):
        result = run_metrics_sweep(jobs=2, quick=True)
        assert set(result["collectors"]) == set(SWEEP_COLLECTORS)
        merged = result["merged"]
        # The merged registry aggregates every cell's allocation.
        per_kind_alloc = sum(
            registry.counter("alloc_words").value
            for registry in result["collectors"].values()
        )
        assert merged.counter("alloc_words").value == per_kind_alloc > 0

    def test_runs_multiply_cells(self):
        one = run_metrics_sweep(("generational",), runs=1, quick=True)
        three = run_metrics_sweep(("generational",), runs=3, quick=True)
        assert (
            three["merged"].counter("alloc_words").value
            == 3 * one["merged"].counter("alloc_words").value
        )


class TestOverhead:
    def test_reports_the_expected_shape(self):
        report = measure_overhead(alloc_words=4_000, repeats=1)
        assert set(report) == {
            "metrics_off_seconds",
            "metrics_on_seconds",
            "overhead_ratio",
        }
        assert report["metrics_off_seconds"] > 0
        assert report["metrics_on_seconds"] > 0
        assert report["overhead_ratio"] > 0

    def test_overhead_within_acceptance_bar(self):
        """The ISSUE's ≤5% bar, with local slack for noisy test hosts.

        The strict 5% check runs in CI via ``repro-gc metrics
        --overhead`` on a quiet runner; here we only guard against the
        plane growing a structural slowdown (e.g. hot-path work).
        """
        report = measure_overhead(repeats=3)
        assert report["overhead_ratio"] <= 1.30, (
            f"metrics-on/off ratio {report['overhead_ratio']:.3f} "
            "suggests instrumentation leaked onto a hot path"
        )
