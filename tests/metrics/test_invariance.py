"""Metrics-off invariance: instrumentation must never perturb the GC.

Two independent witnesses:

* **A/B replay** — the same deterministic mutator script replayed
  under each collector twice, metrics off vs metrics on (with the heap
  auditor armed), must produce byte-identical live-graph checkpoints
  and identical collection counts;
* **golden artifacts** — a committed experiment regenerated inside an
  armed :func:`metrics_session` must still match the committed JSON,
  so experiments gain telemetry without their results moving.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import collector_factory
from repro.metrics.instrument import instrument_collector, metrics_session
from repro.verify.replay import generate_script, replay

from tests.experiments.test_golden_artifacts import ARTIFACTS, assert_matches

ALL_KINDS = (
    "mark-sweep",
    "stop-and-copy",
    "generational",
    "non-predictive",
    "hybrid",
)

#: One shared script: long enough to force collections in every kind.
SCRIPT = generate_script(600, seed=11)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_replay_identical_with_metrics_on(kind):
    plain = collector_factory(kind, None)

    def instrumented(heap, roots):
        collector = plain(heap, roots)
        instrument_collector(collector)
        return collector

    off = replay(SCRIPT, plain, checked=True, name=kind)
    on = replay(SCRIPT, instrumented, checked=True, name=kind)
    assert on.checkpoints == off.checkpoints
    assert on.collections == off.collections
    assert on.words_allocated == off.words_allocated


def test_golden_artifact_unchanged_under_metrics_session():
    from repro.experiments.export import to_jsonable
    from repro.experiments.runner import run_experiment

    gold = json.loads(
        (ARTIFACTS / "remset.json").read_text(encoding="utf-8")
    )
    with metrics_session() as session:
        result, _ = run_experiment("remset")
    fresh = json.loads(json.dumps(to_jsonable(result)))
    assert_matches(fresh, gold, "remset")
    # And the session did observe the run: telemetry is not a no-op.
    assert session.instruments
    merged = session.merged()
    assert merged.counter("collections").value > 0


def test_instrumented_runner_matches_plain_runner():
    from repro.experiments.export import to_jsonable
    from repro.experiments.runner import (
        run_experiment,
        run_experiment_instrumented,
    )

    plain_result, _ = run_experiment("equilibrium")
    result, _, session = run_experiment_instrumented("equilibrium")
    assert json.dumps(to_jsonable(result), sort_keys=True) == json.dumps(
        to_jsonable(plain_result), sort_keys=True
    )
    assert session.registries()
