"""Exporters: summary table, JSON artifact form, Prometheus text."""

from __future__ import annotations

import re

from repro.metrics.export import (
    registries_to_jsonable,
    render_summary,
    to_prometheus,
)
from repro.metrics.registry import MetricRegistry


def sample_registry(label: str = "non-predictive") -> MetricRegistry:
    registry = MetricRegistry(label)
    registry.counter("alloc_words").inc(5120)
    registry.counter("copy_words").inc(1024)
    registry.counter("mark_words").inc(0)
    registry.counter("sweep_words").inc(0)
    registry.counter("root_refs").inc(512)
    registry.gauge("space_peak_words.step-1").set_max(1024)
    pauses = registry.histogram("pause_words")
    for value in (1024, 1024, 2048, 4096):
        pauses.record(value)
    return registry


class TestSummary:
    def test_pause_table_and_decomposition(self):
        text = render_summary([sample_registry()])
        assert "pause cost per collection (words of work)" in text
        assert "mark/cons decomposition (per word allocated)" in text
        row = next(
            line for line in text.splitlines()
            if line.startswith("non-predictive") and "0.200" in line
        )
        # copy/alloc = 1024/5120 = 0.200, root = 512/5120 = 0.100.
        assert "0.100" in row

    def test_empty_histogram_renders_dashes(self):
        registry = MetricRegistry("mark-sweep")
        registry.counter("alloc_words").inc(100)
        text = render_summary([registry])
        assert re.search(r"mark-sweep\s+0\s+-\s+-\s+-", text)


class TestJsonable:
    def test_sorted_by_label(self):
        out = registries_to_jsonable(
            [sample_registry("zz"), sample_registry("aa")]
        )
        assert list(out) == ["aa", "zz"]
        assert out["aa"]["metrics"]["alloc_words"]["value"] == 5120


class TestPrometheus:
    def test_parses_and_is_well_formed(self):
        """Every line is a TYPE comment or `name{labels} value`."""
        text = to_prometheus([sample_registry()])
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*\{[^}]*\} -?\d+(\.\d+)?$"
        )
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                parts = line.split()
                assert parts[3] in ("counter", "gauge", "histogram")
            else:
                assert sample_re.match(line), f"malformed sample: {line!r}"

    def test_counter_and_gauge_families(self):
        text = to_prometheus([sample_registry()])
        assert "# TYPE repro_gc_alloc_words_total counter" in text
        assert (
            'repro_gc_alloc_words_total{collector="non-predictive"} 5120'
            in text
        )
        # Dotted names become a base family with a ``sub`` label.
        assert (
            'repro_gc_space_peak_words{collector="non-predictive",'
            'sub="step-1"} 1024' in text
        )

    def test_histogram_buckets_are_cumulative_and_capped_by_inf(self):
        text = to_prometheus([sample_registry()])
        buckets = []
        for line in text.splitlines():
            match = re.match(
                r'repro_gc_pause_words_bucket\{.*le="([^"]+)"\} (\d+)', line
            )
            if match:
                buckets.append((match.group(1), int(match.group(2))))
        assert buckets, "no bucket samples emitted"
        assert buckets[-1][0] == "+Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        inf_count = buckets[-1][1]
        assert inf_count == 4
        assert (
            'repro_gc_pause_words_count{collector="non-predictive"} 4' in text
        )
        assert (
            'repro_gc_pause_words_sum{collector="non-predictive"} '
            f"{1024 + 1024 + 2048 + 4096}" in text
        )

    def test_one_type_line_per_family(self):
        text = to_prometheus([sample_registry("a"), sample_registry("b")])
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE ")
        ]
        assert len(type_lines) == len(set(type_lines))
        families = [line.split()[2] for line in type_lines]
        assert families == sorted(families)
