"""Unit tests for the metric types and their fixed bucket scheme."""

from __future__ import annotations

import pytest

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_bounds,
    bucket_lower,
    merge_registries,
)


class TestBuckets:
    def test_zero_and_small_values_get_exact_buckets(self):
        for value in range(4):
            assert bucket_lower(value) == value
            assert bucket_bounds(value) == (value, value + 1)

    def test_lower_bound_is_a_fixed_point(self):
        for value in (0, 1, 5, 17, 100, 1024, 5120, 999_999):
            lower = bucket_lower(value)
            assert bucket_lower(lower) == lower

    def test_value_lies_inside_its_bucket(self):
        for value in range(0, 5000):
            lower, upper = bucket_bounds(value)
            assert lower <= value < upper

    def test_bucket_width_is_quarter_octave(self):
        lower, upper = bucket_bounds(1024)
        assert (lower, upper) == (1024, 1280)
        lower, upper = bucket_bounds(5120)
        assert (lower, upper) == (5120, 6144)

    def test_powers_of_two_are_bucket_boundaries(self):
        for exponent in range(2, 30):
            value = 1 << exponent
            assert bucket_lower(value) == value

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            bucket_lower(-1)


class TestCounter:
    def test_inc_and_merge_add(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        a.inc()
        b.inc(10)
        a.merge(b)
        assert a.value == 14

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_round_trip(self):
        counter = Counter("x")
        counter.inc(7)
        clone = Counter.from_jsonable("x", counter.to_jsonable())
        assert clone.value == 7


class TestGauge:
    def test_keeps_peak(self):
        gauge = Gauge("occ")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5

    def test_merge_is_max(self):
        a, b = Gauge("occ"), Gauge("occ")
        a.set_max(5)
        b.set_max(9)
        a.merge(b)
        assert a.value == 9


class TestHistogram:
    def test_exact_aggregates(self):
        hist = Histogram("pause")
        for value in (3, 100, 1024, 1024, 5000):
            hist.record(value)
        assert hist.count == 5
        assert hist.total == 3 + 100 + 1024 + 1024 + 5000
        assert hist.min == 3
        assert hist.max == 5000
        assert hist.mean == hist.total / 5

    def test_max_quantile_is_exact(self):
        hist = Histogram("pause")
        for value in (10, 999, 31337):
            hist.record(value)
        assert hist.quantile(1.0) == 31337

    def test_empty_quantile_is_zero(self):
        assert Histogram("pause").quantile(0.5) == 0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("pause").quantile(1.5)

    def test_record_with_count(self):
        hist = Histogram("pause")
        hist.record(8, count=4)
        assert hist.count == 4
        assert hist.total == 32
        hist.record(8, count=0)
        assert hist.count == 4

    def test_round_trip(self):
        hist = Histogram("pause")
        for value in (1, 7, 7, 4096):
            hist.record(value)
        clone = Histogram.from_jsonable("pause", hist.to_jsonable())
        assert clone.buckets == hist.buckets
        assert (clone.count, clone.total, clone.min, clone.max) == (
            hist.count,
            hist.total,
            hist.min,
            hist.max,
        )


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricRegistry("gc")
        assert registry.counter("a") is registry.counter("a")

    def test_type_clash_rejected(self):
        registry = MetricRegistry("gc")
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_merge_type_clash_rejected(self):
        left, right = MetricRegistry(), MetricRegistry()
        left.counter("a")
        right.histogram("a")
        with pytest.raises(TypeError):
            left.merge(right)

    def test_merge_copies_missing_metrics(self):
        left, right = MetricRegistry(), MetricRegistry()
        right.counter("only").inc(5)
        left.merge(right)
        right.counter("only").inc(1)
        # The copy must be independent of the source registry.
        assert left.counter("only").value == 5

    def test_canonical_json_ignores_insertion_order(self):
        a, b = MetricRegistry("x"), MetricRegistry("x")
        a.counter("one").inc(1)
        a.counter("two").inc(2)
        b.counter("two").inc(2)
        b.counter("one").inc(1)
        assert a.canonical_json() == b.canonical_json()

    def test_round_trip(self):
        registry = MetricRegistry("gc")
        registry.counter("c").inc(3)
        registry.gauge("g").set_max(9)
        registry.histogram("h").record(1024)
        clone = MetricRegistry.from_jsonable(registry.to_jsonable())
        assert clone.canonical_json() == registry.canonical_json()

    def test_merge_registries_folds_all(self):
        regs = []
        for value in (1, 2, 3):
            registry = MetricRegistry(f"r{value}")
            registry.counter("total").inc(value)
            regs.append(registry)
        merged = merge_registries(regs, label="all")
        assert merged.label == "all"
        assert merged.counter("total").value == 6
