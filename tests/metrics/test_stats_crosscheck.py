"""Satellite: the legacy ``GcStats`` counters vs the metric registry.

``gc/stats.py`` predates the metrics plane; the registry is fed by
diffing its snapshots, so any drift between the two would mean the
telemetry misattributes work.  This closes the coverage gap on the
paper's own worked example: the Table 1 configuration (7-step
non-predictive collector, 1024-word steps, j = 1, halving workload),
whose steady-state mark/cons ratio is 1024/5120 = 0.200.  Both
accounting paths — the legacy stats fields and the registry counter
deltas — must agree *exactly*, and both must derive the 0.200.
"""

from __future__ import annotations

import pytest

from repro.core.policy import FixedJPolicy
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.metrics.instrument import instrument_collector
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import HalvingSchedule

STEP_WORDS = 1024
STEP_COUNT = 7
CYCLE_WORDS = 5 * STEP_WORDS  # collection period at this load


@pytest.fixture(scope="module")
def steady():
    """The Table 1 collector at steady state, with one cycle measured.

    Returns the instrumented collector plus the registry/stats deltas
    over one full steady cycle (collection boundary to collection
    boundary), captured from both accounting paths independently.
    """
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap,
        roots,
        STEP_COUNT,
        STEP_WORDS,
        policy=FixedJPolicy(1),
        initial_j=1,
    )
    instrument = instrument_collector(collector)
    mutator = LifetimeDrivenMutator(
        collector, roots, HalvingSchedule(STEP_WORDS)
    )
    registry = instrument.registry

    def run_to_next_collection():
        collections = collector.stats.collections
        while collector.stats.collections == collections:
            mutator.step()
        mutator.release_due()

    # Warm up past the fill transient, then align to a cycle boundary.
    mutator.run(6 * CYCLE_WORDS)
    run_to_next_collection()

    def both_counters():
        """(registry value, stats value) for each shared counter."""
        stats = collector.stats
        return {
            "alloc": (
                registry.counter("alloc_words").value,
                stats.words_allocated,
            ),
            "copy": (registry.counter("copy_words").value, stats.words_copied),
            "mark": (registry.counter("mark_words").value, stats.words_marked),
            "roots": (registry.counter("root_refs").value, stats.roots_traced),
            "reclaimed": (
                registry.counter("reclaimed_words").value,
                stats.words_reclaimed,
            ),
            "collections": (
                registry.counter("collections").value,
                stats.collections,
            ),
        }

    before = both_counters()
    run_to_next_collection()
    after = both_counters()
    return collector, registry, before, after


class TestCrossCheck:
    def test_registry_agrees_with_stats_exactly(self, steady):
        """At every collection boundary the two paths are identical.

        Work counters only change during collections, so they agree
        exactly at any time.  The allocation counter is observed at
        collection time, before the *triggering* allocation is booked
        to stats, so it lags by exactly that in-flight allocation —
        the same small remainder at every boundary.
        """
        _, _, before, after = steady
        for snap, when in ((before, "before"), (after, "after")):
            for name in ("copy", "mark", "roots", "reclaimed", "collections"):
                registry_value, stats_value = snap[name]
                assert registry_value == stats_value, (
                    f"{name} diverged ({when})"
                )
        lag_before = before["alloc"][1] - before["alloc"][0]
        lag_after = after["alloc"][1] - after["alloc"][0]
        assert lag_before == lag_after
        assert 0 <= lag_before <= 4  # at most one in-flight object

    def test_steady_mark_cons_from_registry_deltas(self, steady):
        """0.200 is derivable from the registry counters alone."""
        _, _, before, after = steady
        copied = after["copy"][0] - before["copy"][0]
        allocated = after["alloc"][0] - before["alloc"][0]
        assert after["collections"][0] - before["collections"][0] == 1
        assert copied / allocated == pytest.approx(0.2, abs=0.01)

    def test_steady_mark_cons_from_stats_deltas(self, steady):
        """...and from the legacy stats fields, with exact agreement."""
        _, _, before, after = steady
        copied = after["copy"][1] - before["copy"][1]
        allocated = after["alloc"][1] - before["alloc"][1]
        assert copied / allocated == pytest.approx(0.2, abs=0.01)
        # The two derivations are not merely close — they are equal.
        assert copied == after["copy"][0] - before["copy"][0]
        assert allocated == after["alloc"][0] - before["alloc"][0]

    def test_one_steady_collection_copies_one_step(self, steady):
        """The paper's cycle: 1024 words survive into the copy."""
        _, _, before, after = steady
        copied = after["copy"][0] - before["copy"][0]
        assert copied == pytest.approx(STEP_WORDS, abs=8)

    def test_pause_histogram_total_equals_traced_work(self, steady):
        """The pause histogram's mass is the stats' gc work, exactly."""
        collector, registry, _, _ = steady
        pauses = registry.histogram("pause_words")
        assert pauses.count == collector.stats.collections
        assert pauses.total == sum(
            record.work for record in collector.stats.pauses
        )
        assert pauses.max == collector.stats.max_pause_work

    def test_snapshot_keys_cover_summary_counters(self):
        """`snapshot()` must stay in lockstep with the stats fields."""
        from repro.gc.stats import GcStats

        stats = GcStats()
        snap = stats.snapshot()
        assert set(snap) >= {
            "words_allocated",
            "words_marked",
            "words_copied",
            "words_swept",
            "roots_traced",
            "words_reclaimed",
            "words_promoted",
            "remset_entries_created",
            "remset_entries_pruned",
            "collections",
        }
        # Every snapshot key is a real attribute with the same value.
        for key, value in snap.items():
            assert getattr(stats, key) == value
