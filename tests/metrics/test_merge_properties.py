"""Property-based merge tests: seeded generators, no extra deps.

The sweep engine's determinism contract rests on two algebraic facts:
registry merge is associative and commutative (any worker merge order
yields byte-identical merged metrics), and histogram quantiles stay
within one bucket width of the exact seeded samples.  These tests
check both over hundreds of seeded random registries and merge
orders — stdlib ``random`` only, so the suite adds no dependency.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.metrics.registry import (
    MetricRegistry,
    bucket_bounds,
    merge_registries,
)

#: Shared name pool so generated registries overlap (the interesting
#: case: merges must combine, not just concatenate).
_COUNTERS = ("alloc", "mark", "copy", "sweep")
_GAUGES = ("peak.a", "peak.b")
_HISTOGRAMS = ("pause", "reclaim")

#: At least 200 seeded permutations, per the acceptance criteria.
PERMUTATION_SEEDS = range(200)


def random_registry(rng: random.Random, label: str = "") -> MetricRegistry:
    registry = MetricRegistry(label)
    for name in _COUNTERS:
        if rng.random() < 0.8:
            registry.counter(name).inc(rng.randrange(0, 10_000))
    for name in _GAUGES:
        if rng.random() < 0.8:
            registry.gauge(name).set_max(rng.randrange(0, 100_000))
    for name in _HISTOGRAMS:
        if rng.random() < 0.9:
            hist = registry.histogram(name)
            for _ in range(rng.randrange(1, 40)):
                hist.record(rng.randrange(0, 1_000_000))
    return registry


def merge_in_order(registries, order) -> str:
    merged = merge_registries(
        (registries[index] for index in order), label="sweep"
    )
    return merged.canonical_json()


class TestMergePermutations:
    def test_any_merge_order_is_byte_identical(self):
        """200 seeded permutations over 200 distinct registry sets."""
        for seed in PERMUTATION_SEEDS:
            rng = random.Random(seed)
            registries = [
                random_registry(rng, "worker") for _ in range(rng.randrange(2, 7))
            ]
            reference = merge_in_order(registries, range(len(registries)))
            order = list(range(len(registries)))
            rng.shuffle(order)
            assert merge_in_order(registries, order) == reference, (
                f"seed {seed}: permuted merge differs"
            )

    def test_pairwise_commutativity(self):
        for seed in range(50):
            rng = random.Random(1_000 + seed)
            a = random_registry(rng)
            b = random_registry(rng)
            ab = merge_registries([a, b], label="m").canonical_json()
            ba = merge_registries([b, a], label="m").canonical_json()
            assert ab == ba, f"seed {seed}: merge not commutative"

    def test_associativity_via_merge_trees(self):
        """(a+b)+c must equal a+(b+c), as a merged-registry fold."""
        for seed in range(50):
            rng = random.Random(2_000 + seed)
            a, b, c = (random_registry(rng) for _ in range(3))
            left = merge_registries([a, b], label="m")
            left.merge(c)
            right_tail = merge_registries([b, c], label="m")
            right = merge_registries([a], label="m")
            right.merge(right_tail)
            assert left.canonical_json() == right.canonical_json(), (
                f"seed {seed}: merge not associative"
            )

    def test_merge_leaves_sources_untouched(self):
        rng = random.Random(99)
        registries = [random_registry(rng) for _ in range(4)]
        before = [registry.canonical_json() for registry in registries]
        merge_registries(registries, label="sweep")
        assert [r.canonical_json() for r in registries] == before


class TestQuantileAccuracy:
    @pytest.mark.parametrize("seed", range(40))
    def test_quantile_within_one_bucket_width(self, seed):
        """Estimates track exact order statistics to bucket resolution."""
        rng = random.Random(seed)
        registry = MetricRegistry()
        hist = registry.histogram("pause")
        samples = [rng.randrange(0, 500_000) for _ in range(rng.randrange(5, 400))]
        for sample in samples:
            hist.record(sample)
        samples.sort()
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            rank = min(len(samples), max(1, math.ceil(len(samples) * q)))
            exact = samples[rank - 1]
            estimate = hist.quantile(q)
            lower, upper = bucket_bounds(exact)
            width = upper - lower
            assert abs(estimate - exact) <= width, (
                f"seed {seed} q={q}: estimate {estimate} is more than "
                f"one bucket width ({width}) from exact {exact}"
            )

    def test_merged_quantiles_equal_pooled_quantiles(self):
        """Merging workers then asking == pooling samples then asking."""
        for seed in range(30):
            rng = random.Random(5_000 + seed)
            pooled = MetricRegistry()
            workers = []
            for _ in range(rng.randrange(2, 5)):
                worker = MetricRegistry()
                for _ in range(rng.randrange(1, 60)):
                    value = rng.randrange(0, 200_000)
                    worker.histogram("pause").record(value)
                    pooled.histogram("pause").record(value)
                workers.append(worker)
            merged = merge_registries(workers)
            for q in (0.5, 0.95, 1.0):
                assert merged.histogram("pause").quantile(q) == (
                    pooled.histogram("pause").quantile(q)
                )
