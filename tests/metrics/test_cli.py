"""The ``repro-gc metrics`` command, across its output formats."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.metrics.events import EVENT_SCHEMA_VERSION, parse_ndjson


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.experiment == "antiprediction"
        assert not args.sweep
        assert not args.overhead

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--experiment", "nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["metrics", "--overhead", "--repeats", "0"],
            ["metrics", "--sweep", "--runs", "0"],
            ["metrics", "--sweep", "--jobs", "-1"],
        ],
    )
    def test_nonpositive_knobs_are_usage_errors(self, argv, capsys):
        assert main(argv) == 2
        assert "repro-gc metrics: error:" in capsys.readouterr().err


class TestExperimentMode:
    def test_summary_table(self, capsys):
        assert main(["metrics", "--experiment", "remset"]) == 0
        out = capsys.readouterr().out
        assert "metrics — experiment: remset" in out
        assert "pause cost per collection (words of work)" in out
        assert "mark/cons decomposition (per word allocated)" in out

    def test_json_output_parses(self, capsys):
        assert main(["metrics", "--experiment", "equilibrium", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload, "no registries emitted"
        for dump in payload.values():
            assert "metrics" in dump

    def test_prometheus_output(self, capsys):
        assert (
            main(["metrics", "--experiment", "equilibrium", "--prometheus"])
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_gc_alloc_words_total counter" in out
        assert "repro_gc_pause_words_bucket" in out

    def test_events_and_output_files(self, tmp_path, capsys):
        events = tmp_path / "events.ndjson"
        artifact = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "metrics",
                    "--experiment",
                    "remset",
                    "--events",
                    str(events),
                    "--output",
                    str(artifact),
                ]
            )
            == 0
        )
        records = parse_ndjson(events.read_text(encoding="utf-8"))
        assert records
        assert all(
            record["v"] == EVENT_SCHEMA_VERSION == 4 for record in records
        )
        kinds = {record["event"] for record in records}
        assert "collection-end" in kinds
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload


class TestSweepMode:
    def test_sweep_quick(self, capsys):
        assert (
            main(
                ["metrics", "--sweep", "--quick", "--jobs", "2", "--seed", "3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decay sweep" in out
        for kind in ("mark-sweep", "generational", "hybrid"):
            assert kind in out

    def test_sweep_rejects_events(self, tmp_path, capsys):
        code = main(
            [
                "metrics",
                "--sweep",
                "--quick",
                "--events",
                str(tmp_path / "x.ndjson"),
            ]
        )
        assert code == 2
        assert "--events requires an experiment run" in (
            capsys.readouterr().err
        )


class TestOverheadMode:
    def test_overhead_reports_and_gates(self, capsys):
        # A tolerance of 10x can't fail on any host; this exercises the
        # measurement and the [PASS] path, not the CI bar.
        code = main(
            [
                "metrics",
                "--overhead",
                "--repeats",
                "1",
                "--overhead-tolerance",
                "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics-off:" in out
        assert "[PASS]" in out
