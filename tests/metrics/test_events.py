"""The NDJSON event stream: schema v1, ordering, atomic persistence."""

from __future__ import annotations

import json

from repro.metrics.events import (
    EVENT_SCHEMA_VERSION,
    EventStream,
    parse_ndjson,
)


class TestEmit:
    def test_every_record_carries_version_seq_and_kind(self):
        stream = EventStream()
        record = stream.emit("collection-start", clock=10, kind="full")
        assert record["v"] == EVENT_SCHEMA_VERSION == 4
        assert record["seq"] == 0
        assert record["event"] == "collection-start"
        assert record["clock"] == 10

    def test_seq_is_monotonic_from_zero(self):
        stream = EventStream()
        for _ in range(5):
            stream.emit("promotion")
        assert [record["seq"] for record in stream] == [0, 1, 2, 3, 4]

    def test_event_name_is_positional_only(self):
        # The first parameter is positional-only, so emitters can carry
        # payload keys named ``event`` or ``kind`` without a TypeError;
        # a payload ``event`` key overwrites the envelope (documented).
        stream = EventStream()
        record = stream.emit("fault-detected", kind="corrupt-header")
        assert record["event"] == "fault-detected"
        assert record["kind"] == "corrupt-header"
        assert stream.emit("a", event="shadow")["event"] == "shadow"

    def test_filter_by_kind(self):
        stream = EventStream()
        stream.emit("a")
        stream.emit("b")
        stream.emit("a")
        assert len(stream.events("a")) == 2
        assert len(stream.events()) == len(stream) == 3


class TestNdjson:
    def test_round_trip(self):
        stream = EventStream()
        stream.emit("collection-end", work=123, reclaimed=45)
        stream.emit("heap-expansion", space="old", old_capacity=8, new_capacity=16)
        records = parse_ndjson(stream.to_ndjson())
        assert records == stream.events()

    def test_one_object_per_line_sorted_keys(self):
        stream = EventStream()
        stream.emit("promotion", zebra=1, apple=2)
        lines = stream.to_ndjson().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert list(parsed) == sorted(parsed)

    def test_parse_skips_blank_lines(self):
        assert parse_ndjson("\n\n" + '{"v": 1, "seq": 0, "event": "x"}' + "\n\n") == [
            {"v": 1, "seq": 0, "event": "x"}
        ]

    def test_write_is_parseable_from_disk(self, tmp_path):
        stream = EventStream()
        stream.emit("renumbering", order=["step-1", "step-2"])
        path = tmp_path / "events.ndjson"
        stream.write(path)
        assert parse_ndjson(path.read_text(encoding="utf-8")) == stream.events()
