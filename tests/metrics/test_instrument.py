"""Instrumentation plumbing: attach modes, labels, and decompositions."""

from __future__ import annotations

import pytest

from repro.experiments.harness import collector_factory
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.metrics.instrument import (
    GcInstrumentation,
    active_session,
    instrument_collector,
    metrics_session,
)
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule

ALL_KINDS = (
    "mark-sweep",
    "stop-and-copy",
    "generational",
    "non-predictive",
    "hybrid",
)


def build(kind: str):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = collector_factory(kind, None)(heap, roots)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(2000.0, seed=3)
    )
    return collector, mutator


class TestAttachment:
    def test_collectors_default_to_metrics_off(self):
        for kind in ALL_KINDS:
            collector, _ = build(kind)
            assert collector.metrics is None
        heap = SimulatedHeap()
        assert heap.event_sink is None

    def test_instrument_collector_wires_registry_and_sink(self):
        from repro.metrics.events import EventStream

        collector, _ = build("generational")
        stream = EventStream()
        instrument = instrument_collector(collector, stream=stream)
        assert collector.metrics is instrument
        assert instrument.label == collector.name
        assert collector.heap.event_sink is stream

    def test_session_attaches_every_new_collector(self):
        with metrics_session() as session:
            collector, _ = build("mark-sweep")
            other, _ = build("mark-sweep")
            assert collector.metrics is not None
            assert other.metrics is not None
            assert list(session.instruments) == ["mark-sweep", "mark-sweep#2"]
            assert session.registries() == [
                collector.metrics.registry,
                other.metrics.registry,
            ]
        # Outside the block the plane disarms again.
        assert active_session() is None
        after, _ = build("mark-sweep")
        assert after.metrics is None

    def test_nested_sessions_rejected(self):
        with metrics_session():
            with pytest.raises(RuntimeError):
                with metrics_session():
                    pass  # pragma: no cover
        assert active_session() is None

    def test_session_without_events_records_metrics_only(self):
        with metrics_session(events=False) as session:
            collector, mutator = build("stop-and-copy")
            mutator.run(6_000)
            collector.collect()
            assert session.stream is None
            assert collector.heap.event_sink is None
            assert collector.metrics.registry.counter("collections").value > 0


class TestObservation:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_counters_equal_cumulative_stats(self, kind):
        """Summing per-collection deltas reproduces GcStats exactly."""
        collector, mutator = build(kind)
        instrument = instrument_collector(collector)
        mutator.run(30_000)
        collector.collect()
        registry = instrument.registry
        stats = collector.stats
        # Counters only see work attributed up to the last collection;
        # the explicit collect() above flushes the final delta.
        assert registry.counter("mark_words").value == stats.words_marked
        assert registry.counter("copy_words").value == stats.words_copied
        assert registry.counter("sweep_words").value == stats.words_swept
        assert registry.counter("root_refs").value == stats.roots_traced
        assert registry.counter("collections").value == stats.collections
        assert (
            registry.counter("promoted_words").value == stats.words_promoted
        )
        assert (
            registry.counter("reclaimed_words").value == stats.words_reclaimed
        )
        assert registry.histogram("pause_words").count == len(stats.pauses)
        assert registry.histogram("pause_words").max == stats.max_pause_work

    def test_pause_families_partition_the_overall_histogram(self):
        collector, mutator = build("generational")
        instrument = instrument_collector(collector)
        mutator.run(40_000)
        collector.collect()
        registry = instrument.registry
        overall = registry.histogram("pause_words").count
        families = sum(
            registry.get(name).count
            for name in registry.names()
            if name.startswith("pause_words.")
        )
        assert overall > 0
        assert families == overall

    def test_event_stream_sees_collection_spans(self):
        from repro.metrics.events import EventStream

        collector, mutator = build("non-predictive")
        stream = EventStream()
        instrument_collector(collector, stream=stream)
        mutator.run(20_000)
        starts = stream.events("collection-start")
        ends = stream.events("collection-end")
        assert len(starts) == len(ends) == collector.stats.collections
        for record in ends:
            assert record["collector"] == "non-predictive"
            assert record["work"] >= 0

    def test_heap_geometry_events_flow_through_the_sink(self):
        from repro.metrics.events import EventStream

        stream = EventStream()
        heap = SimulatedHeap()
        heap.event_sink = stream
        heap.add_space("nursery", capacity=1024)
        assert stream.events("space-created")[0]["space"] == "nursery"

    def test_event_helper_is_silent_without_a_stream(self):
        instrument = GcInstrumentation("solo")
        instrument.event("promotion", words=10)  # must not raise
        assert instrument.stream is None
