"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys

import pytest

from repro.gc.concurrent import ConcurrentCollector
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.incremental import IncrementalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector

# The Boyer benchmark's if-trees recurse deeply.
sys.setrecursionlimit(200_000)


@pytest.fixture
def heap() -> SimulatedHeap:
    return SimulatedHeap()


@pytest.fixture
def roots() -> RootSet:
    return RootSet()


@pytest.fixture
def tracing_machine() -> Machine:
    """A machine that never collects (unbounded tracing collector)."""
    return Machine(TracingCollector)


#: name -> factory usable with Machine(...), small heaps suited to tests.
COLLECTOR_FACTORIES = {
    "mark-sweep": lambda heap, roots: MarkSweepCollector(heap, roots, 4_000),
    "stop-and-copy": lambda heap, roots: StopAndCopyCollector(
        heap, roots, 2_000
    ),
    "generational": lambda heap, roots: GenerationalCollector(
        heap, roots, [600, 2_400]
    ),
    "non-predictive": lambda heap, roots: NonPredictiveCollector(
        heap, roots, 8, 500
    ),
    "hybrid": lambda heap, roots: HybridCollector(heap, roots, 600, 8, 400),
    "incremental": lambda heap, roots: IncrementalCollector(
        heap, roots, 4_000, slice_budget=64
    ),
    "concurrent": lambda heap, roots: ConcurrentCollector(heap, roots, 4_000),
}


@pytest.fixture(params=sorted(COLLECTOR_FACTORIES))
def any_machine(request) -> Machine:
    """A machine parameterized over every collector kind."""
    return Machine(COLLECTOR_FACTORIES[request.param])
