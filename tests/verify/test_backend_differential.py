"""The backend-equivalence suite: object vs flat, every collector.

``run_backend_differential`` holds the two heap representations to a
stricter bar than the cross-collector oracle: same collector, same
script, both backends must agree on the live graph at every
checkpoint *and* on every GcStats counter, the full pause log, and
the complete metrics event stream.  A seeded sweep keeps the suite
honest across workload shapes.
"""

from __future__ import annotations

import pytest

from repro.heap.backend import HEAP_BACKENDS
from repro.perf.parallel import default_jobs, parallel_map
from repro.verify import generate_script
from repro.verify.differential import (
    DEFAULT_COLLECTORS,
    run_backend_differential,
)

SEEDS = range(12)


def _sweep_task(seed: int) -> tuple[int, bool, str]:
    """Module-level so the sweep can run in worker processes."""
    script = generate_script(150, seed)
    report = run_backend_differential(script)
    return seed, report.ok, report.summary()


def test_backends_agree_on_random_scripts() -> None:
    outcomes = parallel_map(_sweep_task, SEEDS, jobs=default_jobs())
    failures = [
        f"seed {seed}: {summary}"
        for seed, ok, summary in outcomes
        if not ok
    ]
    assert not failures, "\n".join(failures)


def test_covers_every_collector_on_every_backend() -> None:
    script = generate_script(120, seed=99)
    report = run_backend_differential(script)
    assert report.ok, report.summary()
    assert set(report.results) == {
        f"{kind}@{backend}"
        for kind in DEFAULT_COLLECTORS
        for backend in HEAP_BACKENDS
    }


def test_longer_script_with_higher_live_budget() -> None:
    script = generate_script(400, seed=7, max_live_words=60)
    report = run_backend_differential(script)
    assert report.ok, report.summary()


def test_rejects_single_backend() -> None:
    script = generate_script(10, seed=0)
    with pytest.raises(ValueError):
        run_backend_differential(script, backends=("flat",))
