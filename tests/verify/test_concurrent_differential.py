"""Tests for the concurrent-equivalence differential suite.

Positive direction: generated scripts replayed under mark-sweep,
unbounded incremental, and the concurrent collector (inline and pool
markers) agree on checkpoints, GcStats, pause logs, and survivor
sets, on both heap backends.

Negative direction: a concurrent collector whose cycles open at a
different occupancy is caught as a ``concurrent-stats`` divergence, a
pool run that disagrees with the inline one as ``marker-mode``, a
replay crash as ``crash`` — and the standard ddmin shrinker reduces a
failing script.
"""

from __future__ import annotations

import pytest

import repro.verify.concurrent as concurrent_module
from repro.gc.concurrent import ConcurrentCollector
from repro.heap.backend import HEAP_BACKENDS
from repro.verify.concurrent import (
    CONCURRENT_LABELS,
    run_concurrent_differential,
    run_concurrent_differential_all_backends,
)
from repro.verify.replay import generate_script
from repro.verify.shrink import shrink_script


class TestConcurrentEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 29])
    def test_all_labels_agree(self, seed):
        script = generate_script(400, seed, max_live_words=40)
        report = run_concurrent_differential(script)
        assert report.ok, report.summary()
        assert set(report.results) == set(CONCURRENT_LABELS)

    def test_quiesced_script_is_used(self):
        script = generate_script(100, 0, max_live_words=40)
        report = run_concurrent_differential(script, pool_workers=0)
        assert len(report.script.ops) == len(script.ops) + 2
        assert "quiesced" in (report.script.note or "")

    def test_pool_skipped_when_disabled(self):
        script = generate_script(100, 0, max_live_words=40)
        report = run_concurrent_differential(script, pool_workers=0)
        assert report.ok, report.summary()
        assert "concurrent@pool" not in report.results

    def test_all_backends(self):
        script = generate_script(300, 13, max_live_words=40)
        reports = run_concurrent_differential_all_backends(script)
        assert set(reports) == set(HEAP_BACKENDS)
        for backend, report in reports.items():
            assert report.ok, f"{backend}: {report.summary()}"


def _skewed_factory(real_factory, *, workers, trigger):
    """A factory that skews only the concurrent run with ``workers``."""

    def factory(kind, geometry=None):
        if kind == "concurrent" and geometry.marker_workers == workers:
            def build(heap, roots):
                return ConcurrentCollector(
                    heap,
                    roots,
                    2 * geometry.semispace_words,
                    marker_workers=workers,
                    trigger_fraction=trigger,
                    load_factor=geometry.load_factor,
                )

            return build
        return real_factory(kind, geometry)

    return factory


class TestDivergenceDetection:
    def test_interleaving_dependence_is_caught(self, monkeypatch):
        """A concurrent collector whose cycles open at a different
        occupancy snapshots a different heap — the suite must flag
        it, because snapshot-placement independence is the claim."""
        script = generate_script(400, 0, max_live_words=40)
        monkeypatch.setattr(
            concurrent_module,
            "collector_factory",
            _skewed_factory(
                concurrent_module.collector_factory, workers=0, trigger=0.9
            ),
        )
        report = run_concurrent_differential(
            script, checked=False, pool_workers=0
        )
        assert not report.ok
        kinds = {d.kind for d in report.divergences}
        assert "concurrent-stats" in kinds

    def test_marker_mode_divergence_is_caught(self, monkeypatch):
        """Inline and pool runs disagreeing is its own divergence
        kind: where the marker ran must not be observable."""
        script = generate_script(400, 0, max_live_words=40)
        monkeypatch.setattr(
            concurrent_module,
            "collector_factory",
            _skewed_factory(
                concurrent_module.collector_factory, workers=1, trigger=0.9
            ),
        )
        report = run_concurrent_differential(script, checked=False)
        assert not report.ok
        kinds = {d.kind for d in report.divergences}
        assert "marker-mode" in kinds

    def test_crash_becomes_divergence(self, monkeypatch):
        script = generate_script(200, 0, max_live_words=40)
        real_factory = concurrent_module.collector_factory

        def exploding_factory(kind, geometry=None):
            if kind == "concurrent" and geometry.marker_workers == 0:
                def build(heap, roots):
                    collector = real_factory(kind, geometry)(heap, roots)

                    def boom():
                        raise RuntimeError("induced crash")

                    collector.collect = boom
                    return collector

                return build
            return real_factory(kind, geometry)

        monkeypatch.setattr(
            concurrent_module, "collector_factory", exploding_factory
        )
        report = run_concurrent_differential(script, pool_workers=0)
        assert not report.ok
        crashed = [d for d in report.divergences if d.kind == "crash"]
        assert crashed
        assert crashed[0].collector == "concurrent@inline"
        assert report.results["concurrent@inline"] is None

    def test_induced_divergence_shrinks(self, monkeypatch):
        """The standard ddmin shrinker reduces a script that fails the
        concurrent oracle, preserving the failure."""
        script = generate_script(300, 0, max_live_words=40)
        monkeypatch.setattr(
            concurrent_module,
            "collector_factory",
            _skewed_factory(
                concurrent_module.collector_factory, workers=0, trigger=0.9
            ),
        )

        def fails(candidate) -> bool:
            return not run_concurrent_differential(
                candidate, checked=False, pool_workers=0
            ).ok

        assert fails(script)
        small = shrink_script(script, fails)
        assert fails(small)
        assert len(small.ops) <= len(script.ops)
