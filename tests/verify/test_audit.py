"""Tests for the heap-invariant auditor (checked mode)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import collector_factory
from repro.gc.generational import GenerationalCollector
from repro.heap.barrier import WriteBarrier
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.trace.collector import TracingCollector
from repro.verify import (
    AuditError,
    audit_collector,
    assert_heap_invariants,
    disable_checked_mode,
    enable_checked_mode,
)
from repro.verify.differential import DEFAULT_COLLECTORS, VERIFY_GEOMETRY


def build(kind: str):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = collector_factory(kind, VERIFY_GEOMETRY)(heap, roots)
    return heap, roots, collector


def churn(heap, roots, collector, count: int = 120) -> None:
    """A small workload: allocate, link, drop, collect."""
    barrier = WriteBarrier(collector.remember_store)
    keep = None
    for index in range(count):
        obj = collector.allocate(1 + index % 3, 1)
        roots.set_global("latest", obj)
        if keep is not None and heap.contains_id(keep.obj_id):
            barrier.on_store(keep, 0, obj)
            heap.write_field(keep, 0, obj)
        if index % 7 == 0:
            roots.set_global("keep", obj)
            keep = obj
        if index % 31 == 30:
            collector.collect()


class TestAuditPasses:
    @pytest.mark.parametrize("kind", DEFAULT_COLLECTORS)
    def test_clean_collector_passes(self, kind):
        heap, roots, collector = build(kind)
        churn(heap, roots, collector)
        report = audit_collector(collector)
        assert report.ok, report.summary()
        assert "heap-integrity" in report.checks
        assert "stats-conservation" in report.checks

    @pytest.mark.parametrize("kind", DEFAULT_COLLECTORS)
    def test_assert_heap_invariants_silent_when_clean(self, kind):
        heap, roots, collector = build(kind)
        churn(heap, roots, collector)
        assert_heap_invariants(collector)  # must not raise

    def test_summary_mentions_pass_count(self):
        _, _, collector = build("mark-sweep")
        report = audit_collector(collector)
        assert "checks passed" in report.summary()


class TestAuditCatches:
    def test_dangling_root(self):
        heap, roots, collector = build("mark-sweep")
        obj = collector.allocate(2)
        roots.set_global("g", obj)
        heap.free(obj)  # behind the collector's back
        report = audit_collector(collector)
        assert not report.ok
        assert any("roots point at freed" in v for v in report.violations)

    def test_stats_conservation(self):
        heap, roots, collector = build("stop-and-copy")
        churn(heap, roots, collector)
        collector.stats.words_reclaimed += 7  # cook the books
        report = audit_collector(collector)
        assert not report.ok
        assert any("stats conservation" in v for v in report.violations)

    def test_generational_missing_remset_entry(self):
        heap, roots, collector = build("generational")
        old = collector.allocate(2, 1)
        roots.set_global("old", old)
        collector.collect()  # promote `old` out of the nursery
        assert collector.generation_index(old) == 1
        young = collector.allocate(1)
        roots.set_global("young", young)
        # Store WITHOUT the write barrier: an old-to-young pointer the
        # remembered set never hears about.
        heap.write_field(old, 0, young)
        report = audit_collector(collector)
        assert not report.ok
        assert any("remset incomplete" in v for v in report.violations)

    def test_audit_error_carries_report(self):
        heap, roots, collector = build("mark-sweep")
        obj = collector.allocate(1)
        roots.set_global("g", obj)
        heap.free(obj)
        with pytest.raises(AuditError) as excinfo:
            assert_heap_invariants(collector)
        assert not excinfo.value.report.ok


class TestCheckedMode:
    def test_hook_fires_on_collection(self):
        class Broken(GenerationalCollector):
            def remember_store(self, obj, slot, target):
                pass  # lose every barrier notification

        roots2 = RootSet()
        broken = Broken(SimulatedHeap(), roots2, [24, 96])
        enable_checked_mode(broken)
        barrier = WriteBarrier(broken.remember_store)
        old = broken.allocate(2, 1)
        roots2.set_global("old", old)
        broken.collect()  # promote
        young = broken.allocate(1)
        roots2.set_global("young", young)
        barrier.on_store(old, 0, young)
        broken.heap.write_field(old, 0, young)
        # Reachable only through the old object: a minor collection
        # that never hears about the store frees it while live.
        roots2.remove_global("young")
        with pytest.raises(AuditError):
            broken.collect_generations(0)

    def test_disable_checked_mode(self):
        _, _, collector = build("mark-sweep")
        enable_checked_mode(collector)
        assert collector.post_collection_hook is assert_heap_invariants
        disable_checked_mode(collector)
        assert collector.post_collection_hook is None


class TestUnmanagedCollectors:
    def test_tracing_collector_skips_conservation(self):
        heap = SimulatedHeap()
        roots = RootSet()
        collector = TracingCollector(heap, roots)
        collector.allocate(3)
        report = audit_collector(collector)
        assert report.ok
        assert "stats-conservation" not in report.checks
        assert "heap-integrity" in report.checks


class TestIncrementalModes:
    """Both incremental audit modes are pinned: a mid-cycle heap is an
    accepted "in-cycle" snapshot checked against the tri-color
    invariants, and a quiescent heap must carry no leftover wavefront.
    """

    def _mid_cycle(self):
        heap, roots, collector = build("incremental")
        frame = roots.push_frame()
        while not (collector.cycle_open and collector.gray_stack):
            frame.push(collector.allocate(3))
        return heap, roots, collector

    def test_in_cycle_snapshot_is_accepted(self):
        heap, roots, collector = self._mid_cycle()
        report = audit_collector(collector)
        assert report.ok, report.summary()
        assert "tri-color-wavefront" in report.checks
        assert "tri-color-quiescent" not in report.checks

    def test_quiescent_mode_is_pinned(self):
        heap, roots, collector = build("incremental")
        churn(heap, roots, collector)
        collector.collect()
        report = audit_collector(collector)
        assert report.ok, report.summary()
        assert "tri-color-quiescent" in report.checks
        assert "tri-color-wavefront" not in report.checks

    def test_checked_mode_is_silent_across_slices(self):
        # The regression this guards: checked mode used to reject any
        # heap observed mid-cycle (garbage still resident looked like
        # a reachability leak).  Slices run the hook too, so a whole
        # churn under checked mode exercises both audit modes.
        heap, roots, collector = build("incremental")
        enable_checked_mode(collector)
        churn(heap, roots, collector)
        collector.collect()

    def test_whitened_reachable_object_is_caught(self):
        from repro.gc.incremental import WHITE

        heap, roots, collector = self._mid_cycle()
        # Corrupt the wavefront: recolor a gray root white and drop it
        # from the stack — an immediate cycle close would sweep it.
        victim = collector.gray_stack[0]
        heap.set_color(victim, WHITE)
        collector.gray_stack.remove(victim)
        report = audit_collector(collector)
        assert not report.ok
        assert any("swept" in v for v in report.violations)
