"""Tests for the resume-equivalence oracle."""

import pytest

from repro.gc.registry import COLLECTOR_KINDS
from repro.heap.backend import HEAP_BACKENDS
from repro.verify.replay import generate_script
from repro.verify.resume import (
    resume_label,
    run_resume_differential,
    run_resume_differential_all_backends,
)


class TestResumeLabel:
    def test_label_shape(self):
        assert resume_label("generational") == "generational+resume"


class TestResumeEquivalence:
    @pytest.mark.parametrize("backend", HEAP_BACKENDS)
    def test_all_kinds_resume_byte_identical(self, backend):
        script = generate_script(120, seed=11)
        report = run_resume_differential(script, backend=backend)
        assert report.ok, report.summary()
        for kind in COLLECTOR_KINDS:
            assert report.results[kind] is not None
            assert report.results[resume_label(kind)] is not None

    def test_resumed_result_matches_reference_exactly(self):
        script = generate_script(90, seed=2)
        report = run_resume_differential(
            script, kinds=["generational"], backend="flat"
        )
        assert report.ok, report.summary()
        reference = report.results["generational"]
        resumed = report.results[resume_label("generational")]
        assert resumed.checkpoints == reference.checkpoints
        assert resumed.stats == reference.stats
        assert resumed.pauses == reference.pauses

    def test_sparser_resume_interval_also_passes(self):
        script = generate_script(120, seed=4)
        report = run_resume_differential(
            script,
            kinds=["incremental", "concurrent"],
            backend="flat",
            resume_interval=5,
        )
        assert report.ok, report.summary()

    def test_all_backends_helper_covers_each_backend(self):
        script = generate_script(60, seed=8)
        reports = run_resume_differential_all_backends(
            script, kinds=["mark-sweep"]
        )
        assert set(reports) == set(HEAP_BACKENDS)
        for backend, report in reports.items():
            assert report.ok, f"{backend}: {report.summary()}"

    def test_rejects_non_positive_interval(self):
        script = generate_script(10, seed=0)
        with pytest.raises(ValueError):
            run_resume_differential(script, resume_interval=0)
