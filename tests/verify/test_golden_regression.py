"""Golden-fingerprint regression tests for the optimised hot paths.

PR 2 introduced the differential oracle; this suite freezes its
observable behaviour.  The goldens under ``tests/verify/`` were
captured on the *unoptimised* seed tree, so any optimisation that
perturbs collector decisions, live graphs, or statistics — even by a
single word of accounting — fails here against a byte-level
fingerprint rather than a loose invariant.

* ``golden_replays.json`` — five deterministic mutator scripts (seeds
  0, 7, 13, 29, 42; 400 ops each) replayed under all five collectors.
  The sha256 over the full checkpoint stream ``(op_index, clock,
  live_words, graph)`` must be byte-identical, along with allocation
  volume, collection counts and the final live graph's shape.
* ``golden_bench_stats.json`` — three Scheme benchmarks (gcbench,
  mperm, deriv) at scale 0 under all five collectors; words allocated,
  peak live storage, GC work, mark/cons ratio and collection counts
  must match exactly.

Regenerating the goldens is only legitimate when the *intended*
semantics change (new collector decision rule, new accounting); the
capture commands are embedded in each golden's test below.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.harness import collector_factory, run_benchmark_under
from repro.programs.registry import get_benchmark
from repro.verify.differential import DEFAULT_COLLECTORS, VERIFY_GEOMETRY
from repro.verify.replay import generate_script, replay

GOLDEN_DIR = Path(__file__).parent

with (GOLDEN_DIR / "golden_replays.json").open() as handle:
    GOLDEN_REPLAYS = json.load(handle)

with (GOLDEN_DIR / "golden_bench_stats.json").open() as handle:
    GOLDEN_BENCH = json.load(handle)


def checkpoint_fingerprint(result) -> str:
    """sha256 over the canonical checkpoint stream of one replay."""
    blob = repr(
        [
            (c.op_index, c.clock, c.live_words, c.graph)
            for c in result.checkpoints
        ]
    ).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("seed", sorted(GOLDEN_REPLAYS, key=int))
def test_replay_fingerprints_match_golden(seed: str) -> None:
    """Optimised replay paths reproduce the seed tree byte-for-byte.

    Golden capture: ``generate_script(ops, seed, max_live_words=...)``
    replayed with ``collector_factory(kind, VERIFY_GEOMETRY)`` and
    ``checked=True``, fingerprinted by :func:`checkpoint_fingerprint`.
    """
    entry = GOLDEN_REPLAYS[seed]
    script = generate_script(
        entry["ops"], int(seed), max_live_words=entry["max_live_words"]
    )
    for kind, expected in sorted(entry["results"].items()):
        result = replay(
            script,
            collector_factory(kind, VERIFY_GEOMETRY),
            checked=True,
            name=kind,
        )
        actual = {
            "graph_sha256": checkpoint_fingerprint(result),
            "checkpoints": len(result.checkpoints),
            "words_allocated": result.words_allocated,
            "collections": result.collections,
            "final_live_words": result.checkpoints[-1].live_words,
            "final_objects": len(result.checkpoints[-1].graph),
        }
        assert actual == expected, (
            f"seed {seed} under {kind} diverged from the golden replay"
        )


def test_replay_goldens_cover_all_collectors() -> None:
    for seed, entry in GOLDEN_REPLAYS.items():
        assert sorted(entry["results"]) == sorted(DEFAULT_COLLECTORS), (
            f"golden for seed {seed} does not cover every collector"
        )


@pytest.mark.parametrize("bench", sorted(GOLDEN_BENCH))
def test_benchmark_stats_match_golden(bench: str) -> None:
    """Benchmark GC statistics are unchanged by the optimisations.

    Golden capture: ``run_benchmark_under(benchmark, kind, scale=0)``
    for gcbench, mperm and deriv under all five collectors.
    """
    # deriv and gcbench recurse deeply through the Scheme runtime.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 200000))
    benchmark = get_benchmark(bench)
    for kind, expected in sorted(GOLDEN_BENCH[bench].items()):
        outcome = run_benchmark_under(benchmark, kind, scale=0)
        actual = {
            "words_allocated": outcome.words_allocated,
            "peak_live_words": outcome.peak_live_words,
            "gc_work": outcome.gc_work,
            "mark_cons": round(outcome.mark_cons, 10),
            "collections": outcome.collections,
            "minor_collections": outcome.minor_collections,
        }
        assert actual == expected, (
            f"{bench} under {kind} diverged from the golden statistics"
        )
