"""Tests for the delta-debugging script shrinker."""

from __future__ import annotations

import pytest

from repro.verify import MutatorScript, generate_script, shrink_script


def alloc_count(script: MutatorScript) -> int:
    return sum(1 for op in script.ops if op[0] == "alloc")


class TestShrink:
    def test_requires_failing_input(self):
        script = generate_script(50, 0)
        with pytest.raises(ValueError):
            shrink_script(script, lambda s: False)

    def test_minimizes_to_exact_witness(self):
        # Failure = "at least 3 allocs": 1-minimal means exactly 3
        # allocs and nothing else (every other op deletes cleanly).
        script = generate_script(200, 7)
        assert alloc_count(script) >= 3

        def fails(candidate: MutatorScript) -> bool:
            return alloc_count(candidate) >= 3

        small = shrink_script(script, fails)
        assert alloc_count(small) == 3
        assert len(small.ops) == 3

    def test_preserves_failure(self):
        script = generate_script(150, 3)
        target = script.ops[len(script.ops) // 2]

        def fails(candidate: MutatorScript) -> bool:
            return target in candidate.ops

        small = shrink_script(script, fails)
        assert fails(small)

    def test_result_is_normalized(self):
        script = generate_script(200, 9)

        def fails(candidate: MutatorScript) -> bool:
            return alloc_count(candidate) >= 2

        small = shrink_script(script, fails)
        from repro.verify import normalize_ops

        assert normalize_ops(small.ops) == small.ops

    def test_attempt_budget_respected(self):
        script = generate_script(300, 5)
        calls = [0]

        def fails(candidate: MutatorScript) -> bool:
            calls[0] += 1
            return alloc_count(candidate) >= 1

        small = shrink_script(script, fails, max_attempts=10)
        # The budget bounds predicate evaluations (plus the initial
        # failure confirmation) and still returns a failing script.
        assert calls[0] <= 12
        assert alloc_count(small) >= 1

    def test_note_records_original_size(self):
        script = generate_script(80, 2)
        small = shrink_script(
            script, lambda s: alloc_count(s) >= 1
        )
        assert "shrunk from" in small.note
