"""Tests for the interruption-equivalence (budget) differential suite.

Positive direction: generated scripts replayed under mark-sweep and
under the incremental collector at budgets {1, 7, 64, inf} agree on
checkpoints, GcStats, and survivor sets, on both heap backends.

Negative direction: a collector whose marked set *does* depend on the
interleaving (simulated by giving one budget a different cycle
trigger) is caught as a ``budget-stats`` divergence, and a replay
crash surfaces as a ``crash`` divergence instead of an exception.
"""

from __future__ import annotations

import pytest

import repro.verify.budget as budget_module
from repro.gc.incremental import IncrementalCollector
from repro.heap.backend import HEAP_BACKENDS
from repro.verify.budget import (
    DEFAULT_BUDGETS,
    budget_label,
    run_budget_differential,
    run_budget_differential_all_backends,
)
from repro.verify.replay import generate_script


class TestLabels:
    def test_budget_label(self):
        assert budget_label(1) == "incremental@b=1"
        assert budget_label(64) == "incremental@b=64"
        assert budget_label(None) == "incremental@b=inf"


class TestBudgetInvariance:
    @pytest.mark.parametrize("seed", [0, 7, 29])
    def test_default_budgets_agree(self, seed):
        script = generate_script(400, seed, max_live_words=40)
        report = run_budget_differential(script)
        assert report.ok, report.summary()
        assert set(report.results) == {"mark-sweep"} | {
            budget_label(b) for b in DEFAULT_BUDGETS
        }

    def test_quiesced_script_is_used(self):
        script = generate_script(100, 0, max_live_words=40)
        report = run_budget_differential(script, budgets=(1,))
        # The replayed script carries the two appended collections.
        assert len(report.script.ops) == len(script.ops) + 2
        assert "quiesced" in (report.script.note or "")

    def test_all_backends(self):
        script = generate_script(300, 13, max_live_words=40)
        reports = run_budget_differential_all_backends(
            script, budgets=(1, 64, None)
        )
        assert set(reports) == set(HEAP_BACKENDS)
        for backend, report in reports.items():
            assert report.ok, f"{backend}: {report.summary()}"

    def test_empty_budgets_rejected(self):
        script = generate_script(50, 0, max_live_words=40)
        with pytest.raises(ValueError):
            run_budget_differential(script, budgets=())


class TestDivergenceDetection:
    def test_interleaving_dependence_is_caught(self, monkeypatch):
        """A budget whose cycles open at a different occupancy marks a
        different set — the suite must flag it, because that is
        exactly the bug class the oracle exists for."""
        script = generate_script(400, 0, max_live_words=40)
        real_factory = budget_module.collector_factory

        def skewed_factory(kind, geometry=None):
            if kind == "incremental" and geometry.slice_budget == 1:
                def build(heap, roots):
                    return IncrementalCollector(
                        heap,
                        roots,
                        2 * geometry.semispace_words,
                        slice_budget=1,
                        trigger_fraction=0.9,
                        load_factor=geometry.load_factor,
                    )

                return build
            return real_factory(kind, geometry)

        monkeypatch.setattr(
            budget_module, "collector_factory", skewed_factory
        )
        report = run_budget_differential(script, checked=False)
        assert not report.ok
        kinds = {d.kind for d in report.divergences}
        assert "budget-stats" in kinds

    def test_crash_becomes_divergence(self, monkeypatch):
        script = generate_script(200, 0, max_live_words=40)
        real_factory = budget_module.collector_factory

        def exploding_factory(kind, geometry=None):
            if kind == "incremental" and geometry.slice_budget == 7:
                def build(heap, roots):
                    collector = real_factory(kind, geometry)(heap, roots)

                    def boom():
                        raise RuntimeError("induced crash")

                    collector.collect = boom
                    return collector

                return build
            return real_factory(kind, geometry)

        monkeypatch.setattr(
            budget_module, "collector_factory", exploding_factory
        )
        report = run_budget_differential(script)
        assert not report.ok
        crashed = [d for d in report.divergences if d.kind == "crash"]
        assert crashed
        assert crashed[0].collector == budget_label(7)
        assert report.results[budget_label(7)] is None
