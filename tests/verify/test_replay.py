"""Tests for mutator-script generation, normalization, and replay."""

from __future__ import annotations

import pytest

from repro.experiments.harness import collector_factory
from repro.verify import (
    MutatorScript,
    ReplayError,
    generate_script,
    normalize_ops,
    replay,
)
from repro.verify.differential import VERIFY_GEOMETRY


def factory(kind: str):
    return collector_factory(kind, VERIFY_GEOMETRY)


class TestGenerate:
    def test_deterministic(self):
        assert generate_script(200, 5).ops == generate_script(200, 5).ops

    def test_seed_changes_script(self):
        assert generate_script(200, 5).ops != generate_script(200, 6).ops

    def test_already_normalized(self):
        script = generate_script(400, 11)
        assert normalize_ops(script.ops) == script.ops

    def test_ends_with_check(self):
        assert generate_script(100, 0).ops[-1] == ("check",)

    def test_contains_all_op_kinds(self):
        kinds = {op[0] for op in generate_script(800, 1).ops}
        assert kinds == {"alloc", "store", "drop", "collect", "check"}

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            generate_script(0, 1)
        with pytest.raises(ValueError):
            generate_script(100, 1, max_live_words=2, max_object_words=4)

    def test_live_budget_respected(self):
        script = generate_script(500, 9, max_live_words=30)
        result = replay(script, factory("mark-sweep"))
        assert all(
            checkpoint.live_words <= 30
            for checkpoint in result.checkpoints
        )


class TestNormalize:
    def test_drops_store_to_removed_alloc(self):
        ops = (
            ("alloc", 0, 2, 1),
            ("store", 0, 0, 7),  # uid 7 never allocated
            ("check",),
        )
        assert normalize_ops(ops) == (("alloc", 0, 2, 1), ("check",))

    def test_drops_store_with_unreachable_source(self):
        ops = (
            ("alloc", 0, 2, 1),
            ("drop", 0),
            ("store", 0, 0, None),  # src unreachable by now
        )
        assert normalize_ops(ops) == (("alloc", 0, 2, 1), ("drop", 0))

    def test_drops_double_drop(self):
        ops = (("alloc", 0, 1, 0), ("drop", 0), ("drop", 0))
        assert normalize_ops(ops) == (("alloc", 0, 1, 0), ("drop", 0))

    def test_keeps_store_through_heap_reference(self):
        # uid 1 stays reachable via uid 0's field after its root drops.
        ops = (
            ("alloc", 0, 2, 1),
            ("alloc", 1, 2, 1),
            ("store", 0, 0, 1),
            ("drop", 1),
            ("store", 1, 0, 0),
        )
        assert normalize_ops(ops) == ops

    def test_drops_out_of_range_slot(self):
        ops = (("alloc", 0, 2, 1), ("store", 0, 5, None))
        assert normalize_ops(ops) == (("alloc", 0, 2, 1),)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ReplayError):
            normalize_ops((("warp", 1),))


class TestReplay:
    def test_deterministic(self):
        script = generate_script(300, 2)
        first = replay(script, factory("generational"))
        second = replay(script, factory("generational"))
        assert first.checkpoints == second.checkpoints
        assert first.words_allocated == second.words_allocated

    def test_ids_identical_across_collectors(self):
        script = generate_script(300, 4)
        graphs = {
            kind: replay(script, factory(kind)).checkpoints
            for kind in ("mark-sweep", "non-predictive")
        }
        assert graphs["mark-sweep"] == graphs["non-predictive"]

    def test_final_checkpoint_always_taken(self):
        script = MutatorScript(ops=(("alloc", 0, 1, 0),))
        result = replay(script, factory("stop-and-copy"))
        assert result.checkpoints[-1].op_index == 1
        assert result.checkpoints[-1].live_words == 1

    def test_checked_replay(self):
        script = generate_script(300, 8)
        result = replay(script, factory("hybrid"), checked=True)
        assert result.collections > 0

    def test_rejects_store_before_alloc(self):
        script = MutatorScript(ops=(("store", 3, 0, None),))
        with pytest.raises(ReplayError):
            replay(script, factory("mark-sweep"))

    def test_collect_op_counts(self):
        script = MutatorScript(
            ops=(("alloc", 0, 1, 0), ("collect",), ("check",))
        )
        result = replay(script, factory("mark-sweep"))
        assert result.collections == 1

    def test_to_text_roundtrip_info(self):
        script = generate_script(50, 3)
        text = script.to_text()
        assert "seed=3" in text
        assert "alloc" in text
