"""Tests for the differential oracle, including broken-collector injection."""

from __future__ import annotations

import pytest

from repro.experiments.harness import GcGeometry
from repro.gc.generational import GenerationalCollector
from repro.verify import (
    generate_script,
    run_differential,
    shrink_script,
)
from repro.verify.differential import DEFAULT_COLLECTORS

#: Tiny nursery so a write-barrier bug needs only a handful of filler
#: allocations to trigger a minor collection.
TINY_GEOMETRY = GcGeometry(
    nursery_words=24,
    semispace_words=96,
    step_words=24,
    step_count=8,
)


class BrokenBarrierGenerational(GenerationalCollector):
    """A generational collector whose write barrier remembers nothing."""

    name = "generational-broken-barrier"

    def remember_store(self, obj, slot, target):
        pass


def broken_factory(heap, roots):
    return BrokenBarrierGenerational(
        heap,
        roots,
        [TINY_GEOMETRY.nursery_words, 4 * TINY_GEOMETRY.nursery_words],
        oldest_load_factor=TINY_GEOMETRY.gen_oldest_load_factor,
    )


class TestAgreement:
    def test_all_five_agree(self):
        script = generate_script(400, 12)
        report = run_differential(script)
        assert report.ok, report.summary()
        assert set(report.results) == set(DEFAULT_COLLECTORS)

    def test_unchecked_mode_also_agrees(self):
        script = generate_script(300, 13)
        report = run_differential(script, checked=False)
        assert report.ok, report.summary()

    def test_summary_names_collectors(self):
        script = generate_script(60, 1)
        report = run_differential(script, kinds=("mark-sweep", "hybrid"))
        assert "mark-sweep" in report.summary()

    def test_rejects_empty_kinds(self):
        with pytest.raises(ValueError):
            run_differential(generate_script(10, 0), kinds=())

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            run_differential(generate_script(10, 0), kinds=("warp-speed",))


class TestBrokenBarrier:
    """The ISSUE's acceptance scenario: a disabled write barrier must be
    caught by the oracle and shrink to a tiny counterexample."""

    KINDS = ("mark-sweep", "generational")
    FACTORIES = {"generational": broken_factory}

    def run(self, script, checked=False):
        return run_differential(
            script,
            self.KINDS,
            geometry=TINY_GEOMETRY,
            factories=self.FACTORIES,
            checked=checked,
        )

    def find_failing_script(self):
        for seed in range(50):
            script = generate_script(250, seed)
            if not self.run(script).ok:
                return script
        raise AssertionError(
            "no script exposed the broken write barrier in 50 seeds"
        )

    def test_oracle_catches_lost_barrier(self):
        script = self.find_failing_script()
        report = self.run(script)
        assert not report.ok
        assert report.divergences[0].collector == "generational"
        assert report.divergences[0].kind in ("live-graph", "crash")

    def test_checked_mode_catches_it_at_the_collection(self):
        script = self.find_failing_script()
        report = self.run(script, checked=True)
        assert not report.ok
        # The audit fires inside the collection that loses the object,
        # so checked mode reports a crash at a precise op.
        crash = [d for d in report.divergences if d.kind == "crash"]
        assert crash and crash[0].op_index is not None

    def test_shrinks_to_small_counterexample(self):
        script = self.find_failing_script()

        def fails(candidate):
            return not self.run(candidate).ok

        small = shrink_script(script, fails)
        assert fails(small)
        assert len(small.ops) <= 20, small.to_text()
        # The witness needs an allocation and a store at minimum.
        kinds = {op[0] for op in small.ops}
        assert "alloc" in kinds and "store" in kinds


class TestHybridRemsetRegression:
    """Regression: a protected-step slot remembered in remset_young must
    survive (as a remset_steps entry) when its target is promoted past
    the j boundary by a nursery collection."""

    def test_seed_40_replays_clean(self):
        script = generate_script(300, 40, max_live_words=60)
        report = run_differential(script, kinds=("mark-sweep", "hybrid"))
        assert report.ok, report.summary()
