"""Randomized property suite: many seeded scripts, all five collectors.

Every script is replayed under every collector in checked mode, so a
failure here is either a collector disagreeing about the live graph or
a heap invariant breaking mid-run — both with a seed to reproduce.

The 50-seed sweep goes through the perf layer's parallel engine: each
seed is an independent task, results come back in seed order, and
``REPRO_JOBS=N`` fans the sweep across worker processes (the default
is serial, which is byte-identical to running each seed inline).
"""

from __future__ import annotations

import pytest

from repro.perf.parallel import default_jobs, parallel_map
from repro.verify import generate_script, run_differential

#: One differential run covers 5 collectors x ~25 collections, so 50
#: seeds exercise several thousand audited collections.
SEEDS = range(50)


def _fuzz_task(seed: int) -> tuple[int, bool, str]:
    """Module-level so the sweep can run in worker processes."""
    script = generate_script(120, seed)
    report = run_differential(script)
    return seed, report.ok, report.summary()


def test_collectors_agree_on_random_scripts() -> None:
    outcomes = parallel_map(_fuzz_task, SEEDS, jobs=default_jobs())
    assert [seed for seed, _, _ in outcomes] == list(SEEDS)
    failures = [
        f"seed {seed}: {summary}"
        for seed, ok, summary in outcomes
        if not ok
    ]
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize("seed", (3, 17, 40))
def test_longer_scripts_with_higher_live_budget(seed):
    script = generate_script(350, seed, max_live_words=60)
    report = run_differential(script)
    assert report.ok, f"seed {seed}: {report.summary()}"
