"""Randomized property suite: many seeded scripts, all five collectors.

Every script is replayed under every collector in checked mode, so a
failure here is either a collector disagreeing about the live graph or
a heap invariant breaking mid-run — both with a seed to reproduce.
"""

from __future__ import annotations

import pytest

from repro.verify import generate_script, run_differential

#: One differential run covers 5 collectors x ~25 collections, so 50
#: seeds exercise several thousand audited collections.
SEEDS = range(50)


@pytest.mark.parametrize("seed", SEEDS)
def test_collectors_agree_on_random_script(seed):
    script = generate_script(120, seed)
    report = run_differential(script)
    assert report.ok, f"seed {seed}: {report.summary()}"


@pytest.mark.parametrize("seed", (3, 17, 40))
def test_longer_scripts_with_higher_live_budget(seed):
    script = generate_script(350, seed, max_live_words=60)
    report = run_differential(script)
    assert report.ok, f"seed {seed}: {report.summary()}"
