"""Tests for the ``repro-gc chaos`` subcommand."""

import json

from repro.cli import main


class TestChaosCommand:
    def test_quick_run_exits_clean(self, capsys):
        code = main(
            ["chaos", "--quick", "--collectors", "mark-sweep"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK:" in out
        assert "dangling-slot" in out

    def test_output_writes_matrix_artifact(self, tmp_path, capsys):
        path = tmp_path / "matrix.json"
        code = main(
            [
                "chaos",
                "--quick",
                "--collectors",
                "mark-sweep",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        with path.open(encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["ok"] is True
        assert payload["seed"] == 0
        kinds = {entry["fault"] for entry in payload["outcomes"]}
        assert "root-skip" in kinds

    def test_bad_op_count_is_a_usage_error_not_a_traceback(self, capsys):
        code = main(["chaos", "--ops", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-gc chaos: error:")

    def test_json_mode_prints_machine_readable(self, capsys):
        code = main(
            ["chaos", "--quick", "--collectors", "mark-sweep", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
