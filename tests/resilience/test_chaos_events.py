"""Chaos-channel telemetry: fault verdicts land in the event stream.

Satellite of the observability plane: every chaos cell that fires a
detection channel must surface as a ``fault-detected`` NDJSON record,
every successful injection as ``fault-injected``, and the record
layout is pinned here as the schema-v1 regression contract.
"""

from __future__ import annotations

import pytest

from repro.metrics.events import (
    EVENT_SCHEMA_VERSION,
    EventStream,
    parse_ndjson,
)
from repro.resilience.chaos import run_chaos_matrix
from repro.resilience.faults import CORRUPTION_FAULTS

#: These two families make every corruption kind applicable at least
#: once (remsets via generational, step renumbering via non-predictive).
COLLECTORS = ("generational", "non-predictive")

#: The schema-v1 record layouts.  Additive fields require updating
#: this pin; renames/removals require bumping EVENT_SCHEMA_VERSION.
DETECTED_KEYS = {
    "v",
    "seq",
    "event",
    "fault",
    "collector",
    "expectation",
    "status",
    "channel",
    "op_index",
    "detail",
}
INJECTED_KEYS = {
    "v",
    "seq",
    "event",
    "fault",
    "collector",
    "expectation",
    "op_index",
    "detail",
}


@pytest.fixture(scope="module")
def chaos_run():
    stream = EventStream()
    matrix = run_chaos_matrix(
        seed=0, collectors=COLLECTORS, quick=True, events=stream
    )
    return matrix, stream


class TestFaultEvents:
    def test_every_fired_channel_has_a_detected_event(self, chaos_run):
        matrix, stream = chaos_run
        fired = [
            outcome for outcome in matrix.outcomes
            if outcome.channel is not None
        ]
        detected = stream.events("fault-detected")
        assert len(detected) == len(fired)
        seen = {
            (record["fault"], record["collector"], record["channel"])
            for record in detected
        }
        for outcome in fired:
            assert (
                outcome.fault,
                outcome.collector,
                outcome.channel,
            ) in seen

    def test_every_corruption_kind_surfaces(self, chaos_run):
        """The ISSUE's bar: each injected corruption kind is visible."""
        matrix, stream = chaos_run
        detected_kinds = {
            record["fault"]
            for record in stream.events("fault-detected")
            if record["status"] == "detected"
        }
        injected_kinds = {
            outcome.fault
            for outcome in matrix.outcomes
            if outcome.expectation == "corruption" and outcome.injected
        }
        assert injected_kinds == set(CORRUPTION_FAULTS)
        assert detected_kinds >= injected_kinds

    def test_every_injection_has_an_injected_event(self, chaos_run):
        matrix, stream = chaos_run
        injected = stream.events("fault-injected")
        expected = [
            outcome for outcome in matrix.outcomes if outcome.injected
        ]
        assert len(injected) == len(expected)
        for record, outcome in zip(
            sorted(injected, key=lambda r: (r["fault"], r["collector"])),
            sorted(expected, key=lambda o: (o.fault, o.collector)),
        ):
            assert record["op_index"] == outcome.op_index

    def test_schema_record_layout_is_pinned(self, chaos_run):
        _, stream = chaos_run
        for record in stream.events("fault-detected"):
            assert record["v"] == EVENT_SCHEMA_VERSION == 4
            assert set(record) == DETECTED_KEYS
            assert record["status"] in (
                "detected",
                "missed",
                "benign",
                "false-positive",
            )
            assert record["channel"] in ("audit", "crash", "divergence")
        for record in stream.events("fault-injected"):
            assert record["v"] == EVENT_SCHEMA_VERSION == 4
            assert set(record) == INJECTED_KEYS

    def test_stream_round_trips_through_ndjson(self, chaos_run, tmp_path):
        _, stream = chaos_run
        path = tmp_path / "chaos-events.ndjson"
        stream.write(path)
        records = parse_ndjson(path.read_text(encoding="utf-8"))
        assert records == stream.events()
        assert [record["seq"] for record in records] == list(
            range(len(records))
        )

    def test_without_a_stream_nothing_is_required(self):
        matrix = run_chaos_matrix(
            seed=0,
            collectors=("mark-sweep",),
            kinds=("dangling-slot",),
            quick=True,
        )
        assert matrix.outcomes
