"""Chaos detection must not depend on the heap representation.

The chaos harness builds its heaps through ``make_heap()``, so the
``REPRO_HEAP_BACKEND`` environment variable selects the backend under
test.  Both representations must detect every corruption-class fault
— the flat backend's packed state words and lazy id tables give the
fault injectors genuinely different raw material to corrupt.
"""

from __future__ import annotations

import pytest

from repro.heap.backend import ENV_BACKEND, HEAP_BACKENDS
from repro.resilience.chaos import run_chaos_matrix
from repro.resilience.faults import fault_expectation


@pytest.mark.parametrize("backend", HEAP_BACKENDS)
def test_no_fault_goes_undetected_on_either_backend(backend, monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, backend)
    matrix = run_chaos_matrix(
        seed=0, collectors=("mark-sweep", "generational"), quick=True
    )
    assert matrix.ok, f"[{backend}]\n{matrix.render()}"
    for outcome in matrix.outcomes:
        if fault_expectation(outcome.fault) == "corruption":
            assert outcome.status in ("detected", "n/a"), (
                f"[{backend}] {outcome.fault}@{outcome.collector}: "
                f"{outcome.status} ({outcome.detail})"
            )
