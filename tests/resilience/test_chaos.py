"""Tests for the chaos harness and its detection matrix."""

import pytest

from repro.resilience.chaos import (
    ChaosOutcome,
    DetectionMatrix,
    run_chaos_matrix,
)
from repro.resilience.faults import FAULT_KINDS, fault_expectation


@pytest.fixture(scope="module")
def quick_matrix():
    # Two collector families cover every fault kind's applicability:
    # mark-sweep (single-space, no remsets) and generational (remsets).
    return run_chaos_matrix(
        seed=0, collectors=("mark-sweep", "generational"), quick=True
    )


class TestDetectionMatrix:
    def test_every_cell_scored(self, quick_matrix):
        assert len(quick_matrix.outcomes) == 2 * len(FAULT_KINDS)
        for fault in FAULT_KINDS:
            for collector in ("mark-sweep", "generational"):
                outcome = quick_matrix.outcome(fault, collector)
                assert outcome.fault == fault
                assert outcome.collector == collector

    def test_no_corruption_goes_undetected(self, quick_matrix):
        assert quick_matrix.ok, quick_matrix.render()
        for outcome in quick_matrix.outcomes:
            if fault_expectation(outcome.fault) == "corruption":
                assert outcome.status in ("detected", "n/a")

    def test_benign_control_stays_clean(self, quick_matrix):
        for outcome in quick_matrix.outcomes:
            if outcome.fault == "dup-remset":
                assert outcome.status in ("benign", "n/a")

    def test_root_skip_detected_on_both(self, quick_matrix):
        # The auditor-gap regression, end to end: the witness audit
        # must catch a silent root skip inside a live replay.
        for collector in ("mark-sweep", "generational"):
            outcome = quick_matrix.outcome("root-skip", collector)
            assert outcome.status == "detected", outcome.detail

    def test_render_and_json(self, quick_matrix):
        text = quick_matrix.render()
        assert "OK:" in text
        for fault in FAULT_KINDS:
            assert fault in text
        payload = quick_matrix.to_json()
        assert payload["seed"] == 0
        assert payload["ok"] is True
        assert len(payload["outcomes"]) == len(quick_matrix.outcomes)


class TestOutcomeScoring:
    def _outcome(self, status):
        return ChaosOutcome(
            fault="dangling-slot",
            collector="mark-sweep",
            expectation="corruption",
            status=status,
            channel="audit" if status == "detected" else None,
            op_index=10,
            detail="",
        )

    def test_ok_statuses(self):
        assert self._outcome("detected").ok
        assert self._outcome("n/a").ok
        assert not self._outcome("missed").ok
        assert not self._outcome("false-positive").ok

    def test_failures_lists_only_bad_cells(self):
        good = self._outcome("detected")
        bad = self._outcome("missed")
        matrix = DetectionMatrix(
            seed=0,
            op_count=10,
            collectors=("mark-sweep",),
            kinds=("dangling-slot",),
            outcomes=(good, bad),
        )
        assert not matrix.ok
        assert list(matrix.failures()) == [bad]


class TestSnapshotChaos:
    @pytest.fixture(scope="class")
    def snapshot_matrix(self):
        from repro.resilience.chaos import run_snapshot_chaos

        return run_snapshot_chaos(
            seed=0, collectors=("mark-sweep", "concurrent"), quick=True
        )

    def test_every_fault_kind_swept(self, snapshot_matrix):
        from repro.resilience.chaos import SNAPSHOT_FAULTS

        assert snapshot_matrix.kinds == tuple(SNAPSHOT_FAULTS)
        assert len(snapshot_matrix.outcomes) == 2 * len(SNAPSHOT_FAULTS)

    def test_hundred_percent_detection(self, snapshot_matrix):
        assert snapshot_matrix.ok
        for outcome in snapshot_matrix.outcomes:
            assert outcome.status == "detected", outcome
            assert outcome.channel == "restore"
            assert outcome.expectation == "corruption"

    def test_detection_is_seed_deterministic(self):
        from repro.resilience.chaos import run_snapshot_chaos

        first = run_snapshot_chaos(
            seed=3, collectors=("generational",), quick=True
        )
        second = run_snapshot_chaos(
            seed=3, collectors=("generational",), quick=True
        )
        assert first.to_json() == second.to_json()
