"""Tests for safepoint chaos: corruption injected mid-gray-wavefront.

In safepoint mode every injection waits for a mutator op boundary
where the incremental collector has an *open cycle with a live gray
wavefront*, then corrupts the collector there — the exact window a
stop-the-world harness can never exercise.  The tri-color audit must
detect every corruption-class fault; the benign control (a duplicated
gray-stack entry) must change nothing.
"""

from __future__ import annotations

import pytest

from repro.gc.incremental import GRAY, IncrementalCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.resilience.chaos import run_chaos_matrix
from repro.resilience.faults import (
    FAULT_KINDS,
    fault_applies,
    fault_expectation,
    inject_fault,
)
from repro.verify.audit import audit_collector


@pytest.fixture(scope="module")
def safepoint_matrix():
    return run_chaos_matrix(
        seed=0, collectors=("incremental",), quick=True, safepoint=True
    )


class TestSafepointMatrix:
    def test_matrix_is_ok(self, safepoint_matrix):
        assert safepoint_matrix.ok, safepoint_matrix.render()

    def test_every_fault_scored(self, safepoint_matrix):
        assert len(safepoint_matrix.outcomes) == len(FAULT_KINDS)

    def test_corruptions_detected_mid_wavefront(self, safepoint_matrix):
        detected = 0
        for outcome in safepoint_matrix.outcomes:
            if outcome.status == "n/a":
                continue
            if fault_expectation(outcome.fault) == "corruption":
                assert outcome.status == "detected", (
                    f"{outcome.fault}: {outcome.detail}"
                )
                detected += 1
        # The window must actually open: if no fault ever found a live
        # wavefront the whole mode silently tested nothing.
        assert detected >= 3

    def test_dropped_wavefront_entry_detected(self, safepoint_matrix):
        # The incremental analogue of a lost remembered-set entry.
        outcome = safepoint_matrix.outcome("drop-remset", "incremental")
        assert outcome.status == "detected", outcome.detail

    def test_benign_dup_entry_changes_nothing(self, safepoint_matrix):
        outcome = safepoint_matrix.outcome("dup-remset", "incremental")
        assert outcome.status in ("benign", "n/a")


class TestFaultPlumbing:
    """The fault kinds the safepoint mode relies on, in isolation."""

    def _mid_cycle_collector(self):
        heap = make_heap()
        roots = RootSet()
        collector = IncrementalCollector(
            heap, roots, 200, slice_budget=1
        )
        frame = roots.push_frame()
        while not (collector.cycle_open and collector.gray_stack):
            frame.push(collector.allocate(4))
        return heap, collector

    def test_remset_faults_apply_to_incremental(self):
        _, collector = self._mid_cycle_collector()
        assert fault_applies("drop-remset", collector)
        assert fault_applies("dup-remset", collector)

    def test_drop_keeps_color_and_audit_notices(self):
        import random

        heap, collector = self._mid_cycle_collector()
        injection = inject_fault(
            "drop-remset", collector, random.Random(0)
        )
        assert injection is not None
        # The victim stays gray — a colored object missing from the
        # wavefront, the exact "lost entry" shape.
        report = audit_collector(collector)
        assert "tri-color-wavefront" in report.checks
        assert not report.ok
        assert any("wavefront" in v for v in report.violations)

    def test_dup_is_invisible_to_the_audit(self):
        import random

        heap, collector = self._mid_cycle_collector()
        before = sorted(collector.gray_stack)
        injection = inject_fault("dup-remset", collector, random.Random(0))
        assert injection is not None
        assert len(collector.gray_stack) == len(before) + 1
        report = audit_collector(collector)
        assert report.ok, report.violations
        # The duplicate must also not perturb the marked set: close
        # the cycle and every gray entry resolves exactly once.
        collector.collect()
        assert not collector.gray_stack
