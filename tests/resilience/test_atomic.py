"""Tests for the atomic write helpers."""

import json
import os

from repro.resilience.atomic import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        returned = atomic_write_text(path, "hello\n")
        assert returned == path
        assert path.read_text(encoding="utf-8") == "hello\n"

    def test_creates_missing_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "deep")
        assert path.read_text(encoding="utf-8") == "deep"

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text(encoding="utf-8") == "new"

    def test_leaves_no_scratch_files(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]

    def test_fsyncs_file_then_containing_directory(
        self, tmp_path, monkeypatch
    ):
        """The durability recipe needs *two* fsyncs: the temp file's
        bytes before the rename, and the directory entry after it —
        otherwise a crash can roll the rename back."""
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            stat = os.fstat(fd)
            synced.append((stat.st_ino, stat.st_mode & 0o170000))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        path = tmp_path / "out.txt"
        atomic_write_text(path, "durable")
        directory_inode = os.stat(tmp_path).st_ino
        file_inode = os.stat(path).st_ino
        assert [inode for inode, _ in synced] == [
            file_inode,
            directory_inode,
        ]
        # The second fsync really targeted a directory descriptor.
        assert synced[1][1] == 0o040000


class TestAtomicWriteJson:
    def test_format_matches_json_dump(self, tmp_path):
        path = tmp_path / "out.json"
        value = {"b": 2, "a": [1, 2]}
        atomic_write_json(path, value)
        expected = json.dumps(value, indent=2, sort_keys=True) + "\n"
        assert path.read_text(encoding="utf-8") == expected

    def test_roundtrips(self, tmp_path):
        path = tmp_path / "out.json"
        value = {"nested": {"x": None, "y": [True, 1.5]}}
        atomic_write_json(path, value)
        with path.open(encoding="utf-8") as handle:
            assert json.load(handle) == value
