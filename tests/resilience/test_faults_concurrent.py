"""Mid-handoff fault injection against the concurrent collector.

The window safepoint chaos defends here: a marker holds the snapshot,
the parent heap is legitimately all-white, and the only record of the
mark obligation is the worker's result.  Dropping one marker-marked id
must surface at (or before) reconciliation via the auditor's
concurrent-wavefront check; duplicating one must change nothing.
"""

from __future__ import annotations

import random

import pytest

from repro.gc.concurrent import ConcurrentCollector
from repro.heap.backend import make_heap
from repro.heap.barrier import WriteBarrier
from repro.heap.roots import RootSet
from repro.resilience.chaos import run_chaos_matrix
from repro.resilience.faults import fault_applies, inject_fault
from repro.verify.audit import audit_collector


def mid_handoff_collector():
    """A concurrent collector mid-cycle: marker in flight, and one
    snapshot-reachable non-root object (``child``) held only through
    a marker-marked referrer (``holder``)."""
    heap = make_heap()
    roots = RootSet()
    collector = ConcurrentCollector(heap, roots, 400)
    barrier = WriteBarrier(collector.remember_store)
    frame = roots.push_frame()
    holder = collector.allocate(4, 1)
    child = collector.allocate(4)
    frame.push(holder)
    barrier.on_store(holder, 0, child)
    heap.write_slot(holder, 0, child.obj_id)
    while not collector.cycle_open:
        frame.push(collector.allocate(4))
    assert collector.marker_inflight
    return heap, roots, collector, holder, child


class TestDropMarkerResult:
    def test_applies_via_incremental_family(self):
        heap = make_heap()
        collector = ConcurrentCollector(heap, RootSet(), 100)
        assert fault_applies("drop-remset", collector)
        assert fault_applies("dup-remset", collector)

    def test_no_target_when_quiescent(self):
        heap = make_heap()
        collector = ConcurrentCollector(heap, RootSet(), 100)
        assert inject_fault("drop-remset", collector, random.Random(0)) is None
        assert inject_fault("dup-remset", collector, random.Random(0)) is None

    def test_drop_is_detected_by_concurrent_wavefront_audit(self):
        heap, roots, collector, holder, child = mid_handoff_collector()
        assert child.obj_id in collector.pending_marked_ids()
        injection = inject_fault("drop-remset", collector, random.Random(0))
        assert injection is not None
        assert "marker-marked" in injection.detail
        assert child.obj_id not in collector.pending_marked_ids()
        report = audit_collector(collector)
        assert not report.ok
        assert any("concurrent" in v for v in report.violations)

    def test_drop_corrupts_the_sweep_without_the_audit(self):
        # The fault is a *real* corruption: reconciliation cannot
        # re-find the victim (its only referrer is marker-black), so
        # an unaudited collect frees a root-reachable object.
        heap, roots, collector, holder, child = mid_handoff_collector()
        injection = inject_fault("drop-remset", collector, random.Random(0))
        assert injection is not None
        collector.collect()
        assert heap.contains_id(holder.obj_id)
        assert not heap.contains_id(child.obj_id)

    def test_dup_is_benign(self):
        heap, roots, collector, holder, child = mid_handoff_collector()
        before = collector.pending_marked_ids()
        injection = inject_fault("dup-remset", collector, random.Random(0))
        assert injection is not None
        assert "duplicated" in injection.detail
        assert collector.pending_marked_ids() == before
        report = audit_collector(collector)
        assert report.ok, report.violations
        collector.collect()
        assert heap.contains_id(holder.obj_id)
        assert heap.contains_id(child.obj_id)


class TestSafepointMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_chaos_matrix(
            seed=0, collectors=("concurrent",), quick=True, safepoint=True
        )

    def test_matrix_is_ok(self, matrix):
        assert matrix.ok, matrix.render()

    def test_marker_drop_detected_mid_handoff(self, matrix):
        outcome = matrix.outcome("drop-remset", "concurrent")
        assert outcome.status == "detected"
        assert outcome.injected

    def test_marker_dup_is_benign_mid_handoff(self, matrix):
        outcome = matrix.outcome("dup-remset", "concurrent")
        assert outcome.status == "benign"
