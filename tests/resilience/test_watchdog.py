"""Tests for the wedged-cycle watchdog on the concurrent collector.

A marker worker that never reports back must not hang the mutator:
once the retry ladder is exhausted the watchdog aborts the cycle,
rolls the collector back to the checkpoint captured at cycle open,
and degrades to inline marking for the rest of the process.
"""

from concurrent.futures import Future

import pytest

from repro.gc.concurrent import ConcurrentCollector
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.roots import RootSet


class RecordingMetrics:
    """Just enough of the instrumentation surface to capture events."""

    def __init__(self):
        self.events = []

    def event(self, kind, /, **payload):
        self.events.append((kind, payload))

    def observe_collection(self, collector):
        pass


def _wedged_collector(backend, metrics=None):
    """A pool-mode collector with an open cycle whose marker future
    will never resolve — the deterministic stand-in for a hung or
    livelocked worker."""
    heap = make_heap(backend)
    roots = RootSet()
    collector = ConcurrentCollector(
        heap,
        roots,
        400,
        marker_workers=1,
        marker_timeout=0.01,
        marker_retries=0,
    )
    if metrics is not None:
        collector.metrics = metrics
    for index in range(4):
        roots.set_global(f"g{index}", collector.allocate(4))
    collector._open_cycle("full")
    assert collector._cycle_checkpoint is not None
    collector._future = Future()  # wedged: never completes
    return heap, roots, collector


@pytest.fixture(params=HEAP_BACKENDS)
def backend(request):
    return request.param


class TestWatchdogAbort:
    def test_wedged_cycle_is_aborted_and_collection_completes(
        self, backend
    ):
        heap, roots, collector = _wedged_collector(backend)
        survivors = sorted(obj.obj_id for obj in heap.all_objects())
        collector.collect()
        assert collector.watchdog_aborts == 1
        assert not collector.cycle_open
        # The emergency inline collection still did its job.
        assert sorted(obj.obj_id for obj in heap.all_objects()) == survivors
        assert collector.stats.collections >= 1
        collector.close()

    def test_abort_degrades_to_inline_marking_permanently(self, backend):
        heap, roots, collector = _wedged_collector(backend)
        collector.collect()
        assert collector.marker_workers == 0
        assert collector._pool is None
        # Subsequent cycles run inline and stay healthy.
        collector.collect()
        assert collector.watchdog_aborts == 1
        assert collector.stats.collections >= 2
        collector.close()

    def test_rollback_restores_cycle_open_checkpoint(self, backend):
        heap, roots, collector = _wedged_collector(backend)
        checkpoint_clock = collector._cycle_checkpoint["heap"]["clock"]
        stats_before = collector._cycle_checkpoint["stats"]
        collector._watchdog_abort("test-wedge")
        assert heap.clock == checkpoint_clock
        assert collector.stats.export_state() == stats_before
        assert not collector.cycle_open
        assert collector.watchdog_aborts == 1
        collector.close()

    def test_abort_emits_watchdog_event(self, backend):
        metrics = RecordingMetrics()
        heap, roots, collector = _wedged_collector(backend, metrics)
        collector.collect()
        kinds = [kind for kind, _ in metrics.events]
        assert "watchdog-abort" in kinds
        payload = dict(metrics.events)["watchdog-abort"]
        assert payload["aborts"] == 1
        assert payload["reason"]
        collector.close()

    def test_inline_collector_never_arms_the_watchdog(self, backend):
        heap = make_heap(backend)
        roots = RootSet()
        collector = ConcurrentCollector(heap, roots, 400)
        for index in range(4):
            roots.set_global(f"g{index}", collector.allocate(4))
        collector.collect()
        assert collector._cycle_checkpoint is None
        assert collector.watchdog_aborts == 0
        collector.close()
