"""Kill-and-resume test for ``repro-gc all --resume``.

A sweep is SIGKILLed mid-run (after the journal has recorded at least
one completion), then rerun with ``--resume``: the rerun must serve
the journalled experiments without repeating them and finish the rest,
leaving every artifact present exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# The sweep used throughout: a slow experiment (~3 s, so the first
# journal flush happens well before the sweep ends) plus a fast one.
# The registry runs table5 first; the kill lands somewhere after its
# completion is journalled.  If the whole sweep wins the race and
# finishes first, the test degrades to a plain resume-after-success
# run, which must also work.
SWEEP = "equilibrium,table5"


def _run_all(cwd, *extra):
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "all",
            "--only",
            SWEEP,
            "--no-cache",
            "--output",
            "arts",
            *extra,
        ],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _journal_path(cwd):
    return Path(cwd) / ".repro_cache" / "journal.json"


def test_kill_and_resume_completes_without_duplication(tmp_path):
    # Phase 1: start the sweep and SIGKILL it once the journal holds
    # the first completion (but, with luck, not the second).
    process = _run_all(tmp_path)
    journal = _journal_path(tmp_path)
    killed = False
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break  # finished before we could kill it — still a valid run
        try:
            body = json.loads(journal.read_text())
        except (OSError, ValueError):
            body = {}
        if body.get("completed"):
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            killed = True
            break
        time.sleep(0.05)
    else:
        process.kill()
        pytest.fail("sweep neither journalled nor finished within 60s")

    if killed:
        # The kill left the journal behind with the completed prefix
        # (whichever experiments settled before the signal landed).
        body = json.loads(journal.read_text())
        assert body["completed"]

    # Phase 2: resume.  Journalled experiments are served, the rest
    # run, and the sweep succeeds end to end.
    resumed = _run_all(tmp_path, "--resume")
    out, _ = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, out
    if killed:
        assert "resuming:" in out

    # Every experiment present exactly once, none duplicated or lost.
    for name in SWEEP.split(","):
        assert (tmp_path / "arts" / f"{name}.txt").exists(), out
        assert out.count(f"=== {name}:") == 1

    # A fully successful sweep discards its journal.
    assert not journal.exists()
