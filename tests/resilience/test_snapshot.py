"""Tests for the crash-consistent heap snapshot subsystem."""

import json
import os

import pytest

from repro.gc.registry import COLLECTOR_KINDS
from repro.heap.backend import HEAP_BACKENDS
from repro.resilience.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    SnapshotError,
    capture_state,
    checkpoint,
    load_snapshot,
    restore,
    restore_into,
    restore_state,
    save_snapshot,
    verify_snapshot,
)
from repro.verify.differential import VERIFY_GEOMETRY
from repro.verify.replay import generate_script, replay

from repro.gc.registry import collector_factory


def _live_collector(kind="generational", backend="flat", *, ops=80, seed=5):
    """A collector mid-life: a replayed script left real survivors."""
    base = collector_factory(kind, VERIFY_GEOMETRY)
    captured = []

    def factory(heap, roots):
        collector = base(heap, roots)
        captured.append(collector)
        return collector

    script = generate_script(ops, seed)
    replay(script, factory, backend=backend, checked=True)
    return captured[0]


def _survivors(heap):
    return sorted(obj.obj_id for obj in heap.all_objects())


class TestRoundTrip:
    @pytest.mark.parametrize("backend", HEAP_BACKENDS)
    @pytest.mark.parametrize("kind", COLLECTOR_KINDS)
    def test_wire_roundtrip_is_lossless(self, kind, backend):
        collector = _live_collector(kind, backend)
        document = checkpoint(collector, kind, VERIFY_GEOMETRY)
        wire = json.dumps(document, sort_keys=True)
        heap, roots, restored = restore(json.loads(wire))
        assert heap.backend_name == backend
        assert restored.name == collector.name
        assert _survivors(heap) == _survivors(collector.heap)
        assert heap.clock == collector.heap.clock
        assert restored.stats.export_state() == collector.stats.export_state()
        # The restored context re-checkpoints to the very same bytes.
        again = checkpoint(restored, kind, VERIFY_GEOMETRY)
        assert again["checksum"] == document["checksum"]

    def test_restored_collector_keeps_allocating(self):
        collector = _live_collector()
        document = checkpoint(collector, "generational", VERIFY_GEOMETRY)
        heap, roots, restored = restore(document)
        before = len(_survivors(heap))
        obj = restored.allocate(2)
        roots.set_global("fresh", obj)
        restored.collect()
        assert heap.contains_id(obj.obj_id)
        assert len(_survivors(heap)) <= before + 1

    def test_restore_into_rebinds_in_place(self):
        source = _live_collector("mark-sweep", "object", seed=9)
        document = checkpoint(source, "mark-sweep", VERIFY_GEOMETRY)
        target = _live_collector("mark-sweep", "object", seed=13)
        assert _survivors(target.heap) != _survivors(source.heap)
        restore_into(target, document)
        assert _survivors(target.heap) == _survivors(source.heap)
        assert target.heap.clock == source.heap.clock

    def test_capture_restore_state_rolls_back_mutation(self):
        collector = _live_collector("mark-sweep", "flat")
        state = capture_state(collector)
        clock = collector.heap.clock
        survivors = _survivors(collector.heap)
        collector.roots.set_global("late", collector.allocate(3))
        collector.collect()
        assert collector.heap.clock != clock
        restore_state(collector, state)
        assert collector.heap.clock == clock
        assert _survivors(collector.heap) == survivors


class TestEnvelopeValidation:
    def _document(self):
        collector = _live_collector()
        return checkpoint(collector, "generational", VERIFY_GEOMETRY)

    def test_accepts_pristine_document(self):
        payload = verify_snapshot(self._document())
        assert payload["collector"]["kind"] == "generational"

    def test_rejects_non_mapping(self):
        with pytest.raises(SnapshotError):
            verify_snapshot(["not", "a", "snapshot"])

    def test_rejects_wrong_format(self):
        document = self._document()
        document["format"] = "some-other-artifact"
        with pytest.raises(SnapshotError, match="format"):
            verify_snapshot(document)

    def test_rejects_wrong_version(self):
        document = self._document()
        document["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SnapshotError, match="version"):
            verify_snapshot(document)

    def test_rejects_tampered_payload(self):
        document = self._document()
        document["payload"]["heap"]["clock"] += 1
        with pytest.raises(SnapshotError, match="checksum"):
            verify_snapshot(document)

    def test_rejects_missing_checksum(self):
        document = self._document()
        del document["checksum"]
        with pytest.raises(SnapshotError):
            verify_snapshot(document)

    def test_format_constants_are_wired_through(self):
        document = self._document()
        assert document["format"] == SNAPSHOT_FORMAT
        assert document["version"] == SNAPSHOT_VERSION


class TestDiskRoundTrip:
    def test_save_then_load(self, tmp_path):
        collector = _live_collector("stop-and-copy", "flat")
        document = checkpoint(collector, "stop-and-copy", VERIFY_GEOMETRY)
        path = tmp_path / "heap.snapshot.json"
        save_snapshot(path, document)
        loaded = load_snapshot(path)
        assert loaded["checksum"] == document["checksum"]
        heap, roots, restored = restore(loaded)
        assert _survivors(heap) == _survivors(collector.heap)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path / "absent.json")

    def test_load_truncated_file_raises(self, tmp_path):
        collector = _live_collector()
        document = checkpoint(collector, "generational", VERIFY_GEOMETRY)
        path = tmp_path / "heap.snapshot.json"
        save_snapshot(path, document)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_kill_mid_save_keeps_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        """A crash during save must never clobber the last good
        snapshot: the atomic-write recipe renames a fully fsynced temp
        file or nothing at all."""
        collector = _live_collector("mark-sweep", "flat", seed=3)
        first = checkpoint(collector, "mark-sweep", VERIFY_GEOMETRY)
        path = tmp_path / "heap.snapshot.json"
        save_snapshot(path, first)

        collector.roots.set_global("late", collector.allocate(3))
        second = checkpoint(collector, "mark-sweep", VERIFY_GEOMETRY)
        assert second["checksum"] != first["checksum"]

        real_replace = os.replace

        def dying_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_snapshot(path, second)
        monkeypatch.setattr(os, "replace", real_replace)

        survivor = load_snapshot(path)
        assert survivor["checksum"] == first["checksum"]
        heap, _, _ = restore(survivor)
        assert heap.backend_name == "flat"
        # No scratch litter either.
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
