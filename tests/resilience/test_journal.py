"""Tests for the resumable sweep journal."""

import json

import pytest

from repro.resilience.journal import SweepJournal

NAMES = ["table1", "equilibrium"]
DIGEST = "abc123"


def _entry(text="rendered"):
    return {"text": text, "payload": {"x": 1}, "seconds": 0.5}


class TestLifecycle:
    def test_fresh_starts_empty(self, tmp_path):
        journal = SweepJournal.fresh(tmp_path / "journal.json", NAMES, DIGEST)
        assert journal.completed == {}
        assert journal.quarantined == {}

    def test_record_success_persists_immediately(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        assert path.exists()
        resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert set(resumed.completed) == {"table1"}
        assert resumed.completed["table1"]["text"] == "rendered"

    def test_success_clears_earlier_quarantine(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_failure(
            "table1", {"kind": "timeout", "attempts": 2, "error": "slow"}
        )
        assert "table1" in journal.quarantined
        journal.record_success("table1", _entry())
        resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert "table1" in resumed.completed
        assert "table1" not in resumed.quarantined

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        journal.discard()
        assert not path.exists()


class TestResumeValidation:
    def test_resume_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal.resume(
            tmp_path / "missing.json", NAMES, DIGEST
        )
        assert journal.completed == {}

    def test_resume_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text("{ not json")
        journal = SweepJournal.resume(path, NAMES, DIGEST)
        assert journal.completed == {}

    def test_resume_rejects_source_change(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        resumed = SweepJournal.resume(path, NAMES, "different-digest")
        assert resumed.completed == {}

    def test_resume_rejects_name_set_change(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        resumed = SweepJournal.resume(path, ["table1"], DIGEST)
        assert resumed.completed == {}

    def test_resume_drops_malformed_entries(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        body = json.loads(path.read_text())
        body["completed"]["equilibrium"] = "not-a-dict"
        path.write_text(json.dumps(body))
        with pytest.warns(RuntimeWarning, match="equilibrium"):
            resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert set(resumed.completed) == {"table1"}


class TestEntryChecksums:
    def test_entries_carry_checksums_on_disk(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        body = json.loads(path.read_text())
        record = body["completed"]["table1"]
        assert set(record) == {"entry", "checksum"}
        assert record["entry"]["text"] == "rendered"
        assert len(record["checksum"]) == 64

    def test_corrupt_completed_entry_is_skipped_with_warning(
        self, tmp_path
    ):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry("good"))
        journal.record_success("equilibrium", _entry("also good"))
        body = json.loads(path.read_text())
        # Bit rot inside one payload: the text no longer matches the
        # recorded checksum.
        body["completed"]["table1"]["entry"]["text"] = "tampered"
        path.write_text(json.dumps(body))
        with pytest.warns(RuntimeWarning, match="table1"):
            resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert set(resumed.completed) == {"equilibrium"}

    def test_corrupt_quarantine_entry_is_skipped_with_warning(
        self, tmp_path
    ):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_failure(
            "table1", {"kind": "timeout", "attempts": 2, "error": "slow"}
        )
        body = json.loads(path.read_text())
        body["quarantined"]["table1"]["checksum"] = "0" * 64
        path.write_text(json.dumps(body))
        with pytest.warns(RuntimeWarning, match="table1"):
            resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert resumed.quarantined == {}

    def test_old_format_journal_resumes_fresh(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, NAMES, DIGEST)
        journal.record_success("table1", _entry())
        body = json.loads(path.read_text())
        # A v1 journal stored bare entries under format 1; the format
        # check rejects it wholesale, no warning needed.
        body["format"] = 1
        path.write_text(json.dumps(body))
        resumed = SweepJournal.resume(path, NAMES, DIGEST)
        assert resumed.completed == {}
