"""Tests for the resilience layer: atomic writes, fault injection,
chaos detection, and the sweep journal."""
