"""Tests for the fault taxonomy and its injectors.

Every corruption injector must leave the collector in a state the
auditor rejects; the benign injector must leave a state it accepts.
The root-skip case is the regression test for the auditor gap this PR
closed: it is invisible to a plain audit (every check trusts the
collector's own root set) and caught only by the ``expected_roots``
witness.
"""

import random

import pytest

from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.resilience.faults import (
    CORRUPTION_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    fault_applies,
    fault_expectation,
    inject_fault,
)
from repro.verify.audit import audit_collector


def _marksweep():
    heap = SimulatedHeap()
    roots = RootSet()
    return MarkSweepCollector(heap, roots, 256), heap, roots


def _generational():
    heap = SimulatedHeap()
    roots = RootSet()
    collector = GenerationalCollector(heap, roots, [64, 128])
    return collector, heap, roots


def _nonpredictive():
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(heap, roots, 32, 8)
    return collector, heap, roots


class TestTaxonomy:
    def test_every_kind_has_an_expectation(self):
        for kind in FAULT_KINDS:
            assert fault_expectation(kind) in ("corruption", "benign")

    def test_dup_remset_is_the_only_benign_kind(self):
        assert set(FAULT_KINDS) - CORRUPTION_FAULTS == {"dup-remset"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fault_expectation("bit-rot")

    def test_plan_validates_kind_and_index(self):
        plan = FaultPlan("dangling-slot", 3, seed=7)
        assert plan.expectation == "corruption"
        with pytest.raises(ValueError):
            FaultPlan("bit-rot", 0, seed=0)
        with pytest.raises(ValueError):
            FaultPlan("dangling-slot", -1, seed=0)

    def test_applicability_by_collector_family(self):
        ms, _, _ = _marksweep()
        gen, _, _ = _generational()
        np_rs, _, _ = _nonpredictive()
        assert fault_applies("dangling-slot", ms)
        assert fault_applies("stale-forward", ms)
        assert fault_applies("root-skip", ms)
        assert not fault_applies("drop-remset", ms)
        assert not fault_applies("mis-renumber", ms)
        assert fault_applies("drop-remset", gen)
        assert fault_applies("mis-renumber", np_rs)
        assert fault_applies("drop-remset", np_rs) == np_rs.use_remset


class TestInjectors:
    def test_no_target_returns_none(self):
        collector, _, _ = _marksweep()
        rng = random.Random(0)
        assert inject_fault("dangling-slot", collector, rng) is None
        assert inject_fault("root-skip", collector, rng) is None

    def test_dangling_slot_fails_audit(self):
        collector, _, roots = _marksweep()
        obj = collector.allocate(4, 2)
        roots.set_global("a", obj)
        assert audit_collector(collector).ok
        injection = inject_fault(
            "dangling-slot", collector, random.Random(1)
        )
        assert injection is not None
        assert not audit_collector(collector).ok

    def test_stale_forward_fails_audit_even_single_space(self):
        collector, _, roots = _marksweep()
        roots.set_global("a", collector.allocate(4))
        injection = inject_fault(
            "stale-forward", collector, random.Random(2)
        )
        assert injection is not None
        assert not audit_collector(collector).ok

    def test_mis_renumber_fails_audit(self):
        collector, _, roots = _nonpredictive()
        roots.set_global("a", collector.allocate(4))
        injection = inject_fault(
            "mis-renumber", collector, random.Random(3)
        )
        assert injection is not None
        report = audit_collector(collector)
        assert not report.ok

    def test_drop_remset_fails_audit(self):
        collector, heap, roots = _generational()
        old = collector.allocate(4, 1)
        roots.set_global("old", old)
        collector.collect()  # promotes `old` out of the nursery
        assert collector.generation_index(old) == 1
        young = collector.allocate(4)
        roots.set_global("young", young)
        old.fields[0] = young.obj_id
        collector.remember_store(old, 0, young)
        roots.remove_global("young")  # young now lives via old's slot
        assert audit_collector(collector).ok
        injection = inject_fault(
            "drop-remset", collector, random.Random(4)
        )
        assert injection is not None
        report = audit_collector(collector)
        assert any("remset" in v for v in report.violations)

    def test_dup_remset_is_benign(self):
        collector, heap, roots = _generational()
        old = collector.allocate(4, 1)
        roots.set_global("old", old)
        collector.collect()
        young = collector.allocate(4)
        roots.set_global("young", young)
        injection = inject_fault(
            "dup-remset", collector, random.Random(5)
        )
        assert injection is not None
        assert audit_collector(collector).ok
        collector.collect()  # the spurious entry must not crash a cycle
        assert audit_collector(collector).ok


class TestRootSkipWitness:
    """Satellite (f): the auditor gap this PR closed."""

    def test_plain_audit_misses_root_skip(self):
        collector, _, roots = _marksweep()
        obj = collector.allocate(4)
        roots.set_global("a", obj)
        witness = {obj.obj_id}
        injection = inject_fault("root-skip", collector, random.Random(6))
        assert injection is not None
        # Every classic check trusts the collector's own root set, so
        # the plain audit is blind to the skip...
        assert audit_collector(collector).ok
        # ...and only the independent witness sees it.
        report = audit_collector(collector, expected_roots=witness)
        assert not report.ok
        assert any("root witness" in v for v in report.violations)

    def test_witness_passes_on_honest_collector(self):
        collector, _, roots = _marksweep()
        obj = collector.allocate(4)
        roots.set_global("a", obj)
        report = audit_collector(
            collector, expected_roots={obj.obj_id}
        )
        assert report.ok
        assert "root-witness" in report.checks
