"""Tests for runtime value representations."""

from __future__ import annotations

import pytest

from repro.runtime.machine import Machine
from repro.runtime.values import (
    Fixnum,
    fx,
    word_size_of_string,
    word_size_of_vector,
)
from repro.trace.collector import TracingCollector


class TestFixnum:
    def test_equality_and_hash(self):
        assert Fixnum(5) == Fixnum(5)
        assert Fixnum(5) != Fixnum(6)
        assert hash(Fixnum(5)) == hash(Fixnum(5))

    def test_small_values_cached(self):
        assert Fixnum(7) is Fixnum(7)
        assert fx(-3) is fx(-3)

    def test_large_values_equal_but_not_cached(self):
        a, b = Fixnum(10**9), Fixnum(10**9)
        assert a == b

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Fixnum(1.5)
        with pytest.raises(TypeError):
            Fixnum(True)  # bools are a distinct immediate

    def test_not_equal_to_raw_int(self):
        assert Fixnum(5) != 5

    def test_repr(self):
        assert repr(Fixnum(3)) == "Fixnum(3)"


class TestRef:
    def test_equality_by_object_identity(self):
        machine = Machine(TracingCollector)
        a = machine.cons(None, None)
        b = machine.cons(None, None)
        a_again = machine.car(machine.cons(a, None))
        assert a == a_again
        assert a != b
        assert hash(a) == hash(a_again)

    def test_kind_predicates(self):
        machine = Machine(TracingCollector)
        assert machine.cons(None, None).is_pair()
        assert machine.make_vector(1).is_vector()
        assert machine.make_string("x").is_string()
        assert machine.make_flonum(0.0).is_flonum()
        assert machine.intern("s").is_symbol()

    def test_repr_shows_kind(self):
        machine = Machine(TracingCollector)
        assert "pair" in repr(machine.cons(None, None))


class TestSizes:
    def test_vector_sizes(self):
        assert word_size_of_vector(0) == 1
        assert word_size_of_vector(4) == 5
        with pytest.raises(ValueError):
            word_size_of_vector(-1)

    def test_string_sizes(self):
        # Header plus 4 packed chars per word.
        assert word_size_of_string(0) == 1
        assert word_size_of_string(1) == 2
        assert word_size_of_string(4) == 2
        assert word_size_of_string(5) == 3
        with pytest.raises(ValueError):
            word_size_of_string(-1)
