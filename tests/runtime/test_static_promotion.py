"""Tests for §8.4's full collection promoting to the static area."""

from __future__ import annotations

import pytest

from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import HeapError
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum

FACTORIES = {
    "generational": lambda heap, roots: GenerationalCollector(
        heap, roots, [200, 800]
    ),
    "non-predictive": lambda heap, roots: NonPredictiveCollector(
        heap, roots, 6, 200
    ),
    "hybrid": lambda heap, roots: HybridCollector(heap, roots, 200, 6, 200),
}


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestFullStaticPromotion:
    def test_live_storage_moves_to_static(self, kind):
        machine = Machine(FACTORIES[kind])
        keep = machine.cons(Fixnum(1), machine.cons(Fixnum(2), None))
        promoted = machine.full_collect_to_static()
        assert promoted == 4
        assert keep.obj.space is machine.static
        assert machine.car(keep) == Fixnum(1)
        assert machine.car(machine.cdr(keep)) == Fixnum(2)

    def test_garbage_reclaimed_not_promoted(self, kind):
        machine = Machine(FACTORIES[kind])
        for index in range(200):
            machine.cons(Fixnum(index), None)
        promoted = machine.full_collect_to_static()
        assert promoted == 0
        assert machine.live_words() == 0

    def test_dynamic_areas_empty_afterwards(self, kind):
        machine = Machine(FACTORIES[kind])
        keep = machine.cons(Fixnum(1), None)
        machine.full_collect_to_static()
        for space in machine.heap.spaces():
            if space is not machine.static:
                assert space.is_empty()
        machine.heap.check_integrity()
        del keep

    def test_remembered_sets_emptied(self, kind):
        # §8.4: "A full collection empties the remembered set".
        machine = Machine(FACTORIES[kind])
        old = machine.cons(None, None)
        machine.collect()  # may create promoted structure
        young = machine.cons(Fixnum(1), None)
        machine.set_car(old, young)  # possibly remembered
        machine.full_collect_to_static()
        collector = machine.collector
        if kind == "generational":
            assert all(len(remset) == 0 for remset in collector.remsets)
        elif kind == "non-predictive":
            assert len(collector.remset) == 0
        else:
            assert len(collector.remset_steps) == 0
            assert len(collector.remset_young) == 0

    def test_allocation_continues_afterwards(self, kind):
        machine = Machine(FACTORIES[kind])
        keep = machine.cons(Fixnum(1), None)
        machine.full_collect_to_static()
        fresh = [machine.cons(Fixnum(i), None) for i in range(50)]
        assert all(machine.heap.contains_id(f.obj_id) for f in fresh)
        machine.heap.check_integrity()
        del keep

    def test_static_discipline_enforced_after_promotion(self, kind):
        machine = Machine(FACTORIES[kind])
        keep = machine.cons(Fixnum(1), None)
        machine.full_collect_to_static()
        fresh = machine.cons(Fixnum(2), None)
        with pytest.raises(HeapError):
            machine.set_cdr(keep, fresh)
        # Static-to-static stores remain legal.
        machine.set_cdr(keep, keep)
        assert machine.cdr(keep) == keep
