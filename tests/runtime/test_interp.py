"""Tests for the Scheme interpreter."""

from __future__ import annotations

import pytest

from repro.gc.generational import GenerationalCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.runtime.interop import to_python
from repro.runtime.interp import Interpreter, SchemeError
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum
from repro.trace.collector import TracingCollector


@pytest.fixture
def interp():
    return Interpreter(Machine(TracingCollector))


def result_of(interp, program):
    return to_python(interp.machine, interp.run(program))


class TestBasics:
    def test_self_evaluating(self, interp):
        assert interp.run("42") == Fixnum(42)
        assert interp.run("#t") is True
        assert interp.run("()") is None

    def test_arithmetic(self, interp):
        assert result_of(interp, "(+ 1 2 3)") == 6
        assert result_of(interp, "(- 10 3 2)") == 5
        assert result_of(interp, "(- 4)") == -4
        assert result_of(interp, "(* 2 3 4)") == 24
        assert result_of(interp, "(quotient 7 2)") == 3
        assert result_of(interp, "(quotient -7 2)") == -3  # truncating
        assert result_of(interp, "(remainder 7 2)") == 1

    def test_comparisons(self, interp):
        assert interp.run("(< 1 2)") is True
        assert interp.run("(>= 1 2)") is False
        assert interp.run("(= 3 3)") is True

    def test_quote(self, interp):
        assert result_of(interp, "'(1 (2 3))") == [1, [2, 3]]

    def test_if(self, interp):
        assert result_of(interp, "(if #t 1 2)") == 1
        assert result_of(interp, "(if #f 1 2)") == 2
        assert interp.run("(if #f 1)") is None

    def test_only_false_is_false(self, interp):
        # Scheme truthiness: 0 and () are true.
        assert result_of(interp, "(if 0 1 2)") == 1
        assert result_of(interp, "(if '() 1 2)") == 1


class TestDefinitionsAndClosures:
    def test_define_value(self, interp):
        interp.run("(define x 5)")
        assert result_of(interp, "(+ x 1)") == 6

    def test_define_function_sugar(self, interp):
        assert result_of(interp, "(define (double n) (* 2 n)) (double 21)") == 42

    def test_recursion(self, interp):
        program = """
        (define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
        (fact 10)
        """
        assert result_of(interp, program) == 3_628_800

    def test_closure_captures_environment(self, interp):
        program = """
        (define (adder n) (lambda (x) (+ x n)))
        ((adder 10) 32)
        """
        assert result_of(interp, program) == 42

    def test_set_mutates_captured_binding(self, interp):
        program = """
        (define (make-counter)
          (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
        (define c (make-counter))
        (c) (c) (c)
        """
        assert result_of(interp, program) == 3

    def test_counters_are_independent(self, interp):
        program = """
        (define (make-counter)
          (let ((n 0)) (lambda () (set! n (+ n 1)) n)))
        (define a (make-counter))
        (define b (make-counter))
        (a) (a) (b)
        """
        assert result_of(interp, program) == 1

    def test_arity_checked(self, interp):
        interp.run("(define (f x) x)")
        with pytest.raises(SchemeError):
            interp.run("(f 1 2)")

    def test_unbound_variable(self, interp):
        with pytest.raises(SchemeError):
            interp.run("nope")


class TestBindingForms:
    def test_let(self, interp):
        assert result_of(interp, "(let ((x 1) (y 2)) (+ x y))") == 3

    def test_let_star_sees_earlier_bindings(self, interp):
        assert result_of(interp, "(let* ((x 1) (y (+ x 1))) y)") == 2

    def test_letrec_mutual_recursion(self, interp):
        program = """
        (letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1)))))
                 (odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))))
          (even? 10))
        """
        assert interp.run(program) is True

    def test_named_let_loop(self, interp):
        program = """
        (let loop ((i 0) (acc 0))
          (if (= i 10) acc (loop (+ i 1) (+ acc i))))
        """
        assert result_of(interp, program) == 45

    def test_cond_with_else(self, interp):
        program = "(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))"
        assert result_of(interp, program) == "b"

    def test_cond_test_only_clause(self, interp):
        assert result_of(interp, "(cond (#f) (42))") == 42

    def test_and_or_short_circuit(self, interp):
        assert result_of(interp, "(and 1 2 3)") == 3
        assert interp.run("(and 1 #f 3)") is False
        assert result_of(interp, "(or #f 2 3)") == 2
        assert interp.run("(or #f #f)") is False

    def test_when_unless(self, interp):
        assert result_of(interp, "(when #t 1 2)") == 2
        assert interp.run("(when #f 1)") is None
        assert result_of(interp, "(unless #f 7)") == 7


class TestDataStructures:
    def test_pairs(self, interp):
        program = """
        (define p (cons 1 2))
        (set-car! p 10)
        (+ (car p) (cdr p))
        """
        assert result_of(interp, program) == 12

    def test_list_and_predicates(self, interp):
        assert result_of(interp, "(list 1 2 3)") == [1, 2, 3]
        assert interp.run("(null? '())") is True
        assert interp.run("(pair? '(1))") is True
        assert interp.run("(symbol? 'x)") is True
        assert interp.run("(eq? 'x 'x)") is True
        assert interp.run("(equal? '(1 2) '(1 2))") is True

    def test_vectors(self, interp):
        program = """
        (define v (make-vector 3 0))
        (vector-set! v 1 42)
        (+ (vector-ref v 1) (vector-length v))
        """
        assert result_of(interp, program) == 45

    def test_flonums(self, interp):
        program = "(fl+ (fixnum->flonum 1) 2.5)"
        value = interp.run(program)
        assert interp.machine.flonum_value(value) == 3.5

    def test_division_by_zero(self, interp):
        with pytest.raises(SchemeError):
            interp.run("(quotient 1 0)")


class TestUnderRealCollectors:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda h, r: GenerationalCollector(h, r, [1_024, 4_096]),
            lambda h, r: NonPredictiveCollector(h, r, 8, 1_024),
        ],
        ids=["generational", "non-predictive"],
    )
    def test_gc_strikes_mid_interpretation(self, factory):
        machine = Machine(factory)
        interp = Interpreter(machine)
        program = """
        (define (iota n) (if (= n 0) '() (cons n (iota (- n 1)))))
        (define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))
        (let loop ((i 0) (acc 0))
          (if (= i 40)
              acc
              (loop (+ i 1) (+ acc (sum (iota 30))))))
        """
        result = interp.run(program)
        assert result == Fixnum(40 * sum(range(1, 31)))
        assert machine.stats.collections > 0
        machine.heap.check_integrity()


def _expr_strategy():
    from hypothesis import strategies as st

    return st.recursive(
        st.integers(min_value=-50, max_value=50),
        lambda children: st.tuples(
            st.sampled_from(["+", "-", "*"]), children, children
        ),
        max_leaves=25,
    )


def _to_scheme(expr) -> str:
    if isinstance(expr, int):
        return str(expr)
    op, a, b = expr
    return f"({op} {_to_scheme(a)} {_to_scheme(b)})"


def _to_value(expr) -> int:
    if isinstance(expr, int):
        return expr
    op, a, b = expr
    left, right = _to_value(a), _to_value(b)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    return left * right


class TestPropertyBased:
    """Random arithmetic expressions must agree with Python's arithmetic."""

    from hypothesis import given, settings

    @given(expr=_expr_strategy())
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_agrees_with_python(self, expr):
        interp = Interpreter(Machine(TracingCollector))
        got = interp.run(_to_scheme(expr))
        assert got == Fixnum(_to_value(expr))
