"""Tests for the runtime machine: handles, constructors, barrier routing."""

from __future__ import annotations

import gc as python_gc

import pytest

from repro.heap.heap import HeapError
from repro.runtime.machine import Machine
from repro.runtime.values import FLONUM_WORDS, PAIR_WORDS, Fixnum, Ref
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestHandles:
    def test_handle_roots_object(self, machine):
        pair = machine.cons(Fixnum(1), None)
        assert pair.obj_id in set(machine.roots.ids())

    def test_dropping_handle_unroots(self, machine):
        pair = machine.cons(Fixnum(1), None)
        obj_id = pair.obj_id
        del pair
        python_gc.collect()
        assert obj_id not in set(machine.roots.ids())

    def test_multiple_handles_counted(self, machine):
        pair = machine.cons(Fixnum(1), None)
        other = machine.car(machine.cons(pair, None))  # a second handle
        assert isinstance(other, Ref)
        del pair
        python_gc.collect()
        assert other.obj_id in set(machine.roots.ids())

    def test_heap_reference_keeps_object_without_handle(self, machine):
        outer = machine.cons(None, None)
        inner = machine.cons(Fixnum(42), None)
        machine.set_car(outer, inner)
        inner_id = inner.obj_id
        del inner
        python_gc.collect()
        machine.collect()
        assert machine.heap.contains_id(inner_id)
        assert machine.car(machine.car(outer)) == Fixnum(42)


class TestConstructors:
    def test_cons_size_and_kind(self, machine):
        pair = machine.cons(Fixnum(1), Fixnum(2))
        assert pair.is_pair()
        assert pair.obj.size == PAIR_WORDS
        assert machine.car(pair) == Fixnum(1)
        assert machine.cdr(pair) == Fixnum(2)

    def test_vector(self, machine):
        vec = machine.make_vector(3, fill=Fixnum(0))
        assert vec.is_vector()
        assert vec.obj.size == 4
        assert machine.vector_length(vec) == 3
        machine.vector_set(vec, 1, Fixnum(9))
        assert machine.vector_ref(vec, 1) == Fixnum(9)
        assert machine.vector_ref(vec, 0) == Fixnum(0)

    def test_vector_bounds_checked(self, machine):
        vec = machine.make_vector(2)
        with pytest.raises(IndexError):
            machine.vector_ref(vec, 2)
        with pytest.raises(IndexError):
            machine.vector_set(vec, -1, None)

    def test_flonum_is_boxed_four_words(self, machine):
        flo = machine.make_flonum(3.25)
        assert flo.is_flonum()
        assert flo.obj.size == FLONUM_WORDS
        assert machine.flonum_value(flo) == 3.25

    def test_string(self, machine):
        s = machine.make_string("hello")
        assert s.is_string()
        assert s.obj.size == 1 + (5 + 3) // 4
        assert machine.string_value(s) == "hello"

    def test_type_errors(self, machine):
        flo = machine.make_flonum(1.0)
        with pytest.raises(TypeError):
            machine.car(flo)
        with pytest.raises(TypeError):
            machine.vector_ref(flo, 0)

    def test_raw_python_numbers_rejected_in_slots(self, machine):
        pair = machine.cons(None, None)
        with pytest.raises(TypeError):
            machine.set_car(pair, 5)
        with pytest.raises(TypeError):
            machine.set_car(pair, 2.5)


class TestSymbols:
    def test_interning_is_idempotent(self, machine):
        a = machine.intern("foo")
        b = machine.intern("foo")
        assert a == b
        assert machine.symbol_name(a) == "foo"

    def test_symbols_live_in_static_area(self, machine):
        sym = machine.intern("bar")
        assert sym.obj.space is machine.static

    def test_static_allocation_does_not_advance_clock(self, machine):
        before = machine.clock
        machine.intern("baz")
        assert machine.clock == before

    def test_static_to_dynamic_store_rejected(self, machine):
        sym = machine.intern("quux")
        pair = machine.cons(None, None)
        with pytest.raises(HeapError):
            machine._store(sym.obj, 0, pair)

    def test_symbols_survive_collection(self, machine):
        sym = machine.intern("keep")
        machine.collect()
        assert machine.heap.contains_id(sym.obj_id)


class TestFlonumArithmetic:
    def test_each_operation_allocates(self, machine):
        a = machine.make_flonum(1.5)
        b = machine.make_flonum(2.5)
        before = machine.stats.words_allocated
        c = machine.fl_add(a, b)
        assert machine.flonum_value(c) == 4.0
        assert machine.stats.words_allocated - before == FLONUM_WORDS

    def test_operations(self, machine):
        a = machine.make_flonum(6.0)
        b = machine.make_flonum(2.0)
        assert machine.flonum_value(machine.fl_sub(a, b)) == 4.0
        assert machine.flonum_value(machine.fl_mul(a, b)) == 12.0
        assert machine.flonum_value(machine.fl_div(a, b)) == 3.0
        assert machine.flonum_value(machine.fl_sqrt(machine.make_flonum(9.0))) == 3.0
        assert machine.fl_less(b, a)
        assert not machine.fl_less(a, b)


class TestBarrierRouting:
    def test_stores_counted(self, machine):
        pair = machine.cons(Fixnum(1), None)  # 2 initializing stores
        machine.set_car(pair, Fixnum(2))
        assert machine.barrier.stores == 3

    def test_pointer_stores_counted(self, machine):
        inner = machine.cons(None, None)  # 2 stores, 0 pointer stores
        machine.cons(inner, None)  # car store is a pointer store
        assert machine.barrier.pointer_stores == 1

    def test_live_words_excludes_static(self, machine):
        machine.intern("sym")
        pair = machine.cons(None, None)
        assert machine.live_words() == PAIR_WORDS
        del pair


class TestAllocationHooks:
    def test_hooks_see_every_dynamic_allocation(self, machine):
        seen = []
        machine.add_allocation_hook(lambda obj: seen.append(obj.kind))
        machine.cons(None, None)
        machine.make_flonum(1.0)
        machine.intern("not-dynamic")
        assert seen == ["pair", "flonum"]
