"""Tests for the S-expression reader."""

from __future__ import annotations

import pytest

from repro.runtime.interop import to_python
from repro.runtime.machine import Machine
from repro.runtime.reader import ReaderError, read, read_all
from repro.runtime.values import Fixnum
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestAtoms:
    def test_fixnum(self, machine):
        assert read(machine, "42") == Fixnum(42)
        assert read(machine, "-7") == Fixnum(-7)

    def test_flonum(self, machine):
        value = read(machine, "3.25")
        assert value.is_flonum()
        assert machine.flonum_value(value) == 3.25

    def test_booleans(self, machine):
        assert read(machine, "#t") is True
        assert read(machine, "#f") is False

    def test_character(self, machine):
        assert read(machine, "#\\a") == "a"

    def test_string(self, machine):
        value = read(machine, '"hello world"')
        assert value.is_string()
        assert machine.string_value(value) == "hello world"

    def test_symbol(self, machine):
        value = read(machine, "set-car!")
        assert value.is_symbol()
        assert machine.symbol_name(value) == "set-car!"


class TestLists:
    def test_flat_list(self, machine):
        assert to_python(machine, read(machine, "(1 2 3)")) == [1, 2, 3]

    def test_nested(self, machine):
        data = to_python(machine, read(machine, "(a (b 1) ((c)) 2)"))
        assert data == ["a", ["b", 1], [["c"]], 2]

    def test_empty_list(self, machine):
        assert read(machine, "()") is None

    def test_dotted_pair(self, machine):
        pair = read(machine, "(1 . 2)")
        assert machine.car(pair) == Fixnum(1)
        assert machine.cdr(pair) == Fixnum(2)

    def test_quote_sugar(self, machine):
        data = to_python(machine, read(machine, "'(a b)"))
        assert data == ["quote", ["a", "b"]]

    def test_comments_skipped(self, machine):
        program = """
        ; a comment
        (1 2 ; trailing comment
         3)
        """
        assert to_python(machine, read(machine, program)) == [1, 2, 3]


class TestReadAll:
    def test_multiple_expressions(self, machine):
        exprs = read_all(machine, "(define x 1) (+ x 2)")
        assert len(exprs) == 2
        assert to_python(machine, exprs[0]) == ["define", "x", 1]

    def test_empty_program(self, machine):
        assert read_all(machine, "  ; nothing\n") == []


class TestErrors:
    def test_unterminated_list(self, machine):
        with pytest.raises(ReaderError):
            read(machine, "(1 2")

    def test_stray_close(self, machine):
        with pytest.raises(ReaderError):
            read(machine, ")")

    def test_unterminated_string(self, machine):
        with pytest.raises(ReaderError):
            read(machine, '"abc')

    def test_trailing_tokens(self, machine):
        with pytest.raises(ReaderError):
            read(machine, "1 2")

    def test_malformed_dot(self, machine):
        with pytest.raises(ReaderError):
            read(machine, "(1 . 2 3)")
