"""Tests for Python <-> Scheme data conversion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.interop import (
    from_list,
    list_length,
    list_ref,
    scheme_equal,
    to_list,
    to_python,
)
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestRoundTrip:
    def test_flat_list(self, machine):
        lst = from_list(machine, [1, 2, 3])
        assert to_python(machine, lst) == [1, 2, 3]

    def test_nested_list(self, machine):
        data = [1, ["a", [2, "b"]], 3]
        lst = from_list(machine, data)
        assert to_python(machine, lst) == [1, ["a", [2, "b"]], 3]

    def test_strings_become_symbols(self, machine):
        lst = from_list(machine, ["plus", "x"])
        head = machine.car(lst)
        assert head.is_symbol()
        assert machine.symbol_name(head) == "plus"

    def test_floats_become_flonums(self, machine):
        lst = from_list(machine, [1.5])
        assert machine.car(lst).is_flonum()
        assert to_python(machine, lst) == [1.5]

    def test_booleans_and_nil(self, machine):
        lst = from_list(machine, [True, False])
        assert to_python(machine, lst) == [True, False]
        assert from_list(machine, []) is None

    def test_empty_list_is_nil(self, machine):
        assert to_python(machine, None) == []

    simple_data = st.recursive(
        st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.sampled_from(["a", "b", "c"]),
            st.booleans(),
        ),
        lambda children: st.lists(children, max_size=4),
        max_leaves=20,
    )

    @given(data=st.lists(simple_data, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        machine = Machine(TracingCollector)
        assert to_python(machine, from_list(machine, data)) == data


class TestListOperations:
    def test_length(self, machine):
        assert list_length(machine, from_list(machine, [1, 2, 3])) == 3
        assert list_length(machine, None) == 0

    def test_list_ref(self, machine):
        lst = from_list(machine, [10, 20, 30])
        assert list_ref(machine, lst, 0) == Fixnum(10)
        assert list_ref(machine, lst, 2) == Fixnum(30)

    def test_to_list(self, machine):
        lst = from_list(machine, [1, 2])
        values = to_list(machine, lst)
        assert values == [Fixnum(1), Fixnum(2)]

    def test_to_list_rejects_improper(self, machine):
        improper = machine.cons(Fixnum(1), Fixnum(2))
        with pytest.raises(TypeError):
            to_list(machine, improper)


class TestSchemeEqual:
    def test_structural_equality(self, machine):
        a = from_list(machine, [1, ["x", 2], 3.5])
        b = from_list(machine, [1, ["x", 2], 3.5])
        assert scheme_equal(machine, a, b)

    def test_inequality(self, machine):
        a = from_list(machine, [1, 2])
        b = from_list(machine, [1, 3])
        assert not scheme_equal(machine, a, b)

    def test_different_shapes(self, machine):
        a = from_list(machine, [1, [2]])
        b = from_list(machine, [1, 2])
        assert not scheme_equal(machine, a, b)

    def test_symbols_by_identity(self, machine):
        assert scheme_equal(machine, machine.intern("x"), machine.intern("x"))
        assert not scheme_equal(
            machine, machine.intern("x"), machine.intern("y")
        )

    def test_vectors(self, machine):
        a = machine.make_vector(2, Fixnum(1))
        b = machine.make_vector(2, Fixnum(1))
        c = machine.make_vector(3, Fixnum(1))
        assert scheme_equal(machine, a, b)
        assert not scheme_equal(machine, a, c)

    def test_shared_structure_fast_path(self, machine):
        shared = from_list(machine, [1, 2, 3])
        a = machine.cons(shared, None)
        b = machine.cons(shared, None)
        assert scheme_equal(machine, a, b)
