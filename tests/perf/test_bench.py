"""The bench suite and the BENCH_perf.json record."""

from __future__ import annotations

from repro.perf.bench import (
    BENCH_BACKENDS,
    BENCH_COLLECTORS,
    bench_collector,
    build_report,
    compare_to_baseline,
    load_report,
    record_all_run,
    run_perf_suite,
    write_report,
)


def _tiny_suite():
    # Small enough for a unit test, big enough to force collections.
    return [
        bench_collector(
            kind, backend=backend, alloc_words=4_000, collect_rounds=2
        )
        for backend in BENCH_BACKENDS
        for kind in BENCH_COLLECTORS
    ]


def test_bench_collector_measures_throughput_and_latency() -> None:
    bench = bench_collector(
        "stop-and-copy", alloc_words=4_000, collect_rounds=3
    )
    assert bench.collector == "stop-and-copy"
    assert bench.backend in BENCH_BACKENDS
    assert bench.alloc_words == 4_000
    assert bench.alloc_seconds > 0
    assert bench.alloc_words_per_sec > 0
    assert bench.full_collect_rounds == 3
    assert bench.full_collect_seconds_mean > 0
    assert (
        bench.full_collect_seconds_max >= bench.full_collect_seconds_mean
    )


def test_report_roundtrip_preserves_baseline_and_runs(tmp_path) -> None:
    path = tmp_path / "BENCH_perf.json"
    results = _tiny_suite()
    report = build_report(results, quick=True)
    report["serial_baseline"] = {"total_seconds": 100.0}
    write_report(path, report)

    loaded = load_report(path)
    assert loaded is not None
    assert loaded["heap_backend"] == "flat"
    assert set(loaded["collectors"]) == set(BENCH_COLLECTORS)
    assert set(loaded["backends"]["object"]) == set(BENCH_COLLECTORS)
    speedup = loaded["backend_speedup"]
    assert set(speedup["per_collector"]) == set(BENCH_COLLECTORS)
    assert speedup["mean"] > 0

    entry = record_all_run(
        path, jobs=4, seconds=40.0, experiments=18, cache_hits=0
    )
    assert entry["speedup_vs_serial_baseline"] == 2.5
    rewritten = build_report(results, quick=True, previous=load_report(path))
    assert rewritten["serial_baseline"] == {"total_seconds": 100.0}
    assert rewritten["all_runs"][-1]["jobs"] == 4


def test_record_all_run_creates_file_and_caps_log(tmp_path) -> None:
    path = tmp_path / "BENCH_perf.json"
    for index in range(25):
        record_all_run(
            path,
            jobs=1,
            seconds=float(index + 1),
            experiments=18,
            cache_hits=index,
        )
    report = load_report(path)
    assert report is not None
    assert len(report["all_runs"]) == 20
    assert report["all_runs"][-1]["cache_hits"] == 24
    # No baseline in this file, so no speedup field.
    assert "speedup_vs_serial_baseline" not in report["all_runs"][-1]


def test_compare_to_baseline_flags_only_large_slowdowns() -> None:
    baseline = {
        "collectors": {
            "stop-and-copy": {"alloc_words_per_sec": 100_000.0},
            "hybrid": {"alloc_words_per_sec": 100_000.0},
            "retired-kind": {"alloc_words_per_sec": 100_000.0},
        }
    }
    current = {
        "collectors": {
            "stop-and-copy": {"alloc_words_per_sec": 71_000.0},
            "hybrid": {"alloc_words_per_sec": 69_000.0},
            "brand-new-kind": {"alloc_words_per_sec": 10.0},
        }
    }
    regressions = compare_to_baseline(current, baseline, tolerance=0.30)
    assert len(regressions) == 1
    assert regressions[0].startswith("hybrid:")
    # A looser tolerance passes everything.
    assert compare_to_baseline(current, baseline, tolerance=0.40) == []


def test_run_perf_suite_quick_covers_every_collector_and_backend() -> None:
    results = run_perf_suite(quick=True)
    # Backends are paired per collector so throughput ratios compare
    # temporally adjacent measurements.
    assert [(bench.collector, bench.backend) for bench in results] == [
        (kind, backend)
        for kind in BENCH_COLLECTORS
        for backend in BENCH_BACKENDS
    ]
    assert all(bench.collections_during_alloc > 0 for bench in results)
