"""The parallel engine: determinism, ordering, serial equivalence."""

from __future__ import annotations

import pytest

from repro.experiments.runner import experiment_names, run_experiments
from repro.experiments.tuning import run_tuning
from repro.perf.cache import ArtifactCache
from repro.perf.parallel import (
    default_jobs,
    derive_seed,
    parallel_map,
    run_experiment_records,
)


def _square(value: int) -> int:
    return value * value


def test_parallel_map_preserves_input_order_serial() -> None:
    assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_preserves_input_order_with_pool() -> None:
    items = list(range(8))
    assert parallel_map(_square, items, jobs=2) == [
        value * value for value in items
    ]


def test_parallel_map_empty() -> None:
    assert parallel_map(_square, [], jobs=4) == []


def test_derive_seed_is_deterministic_and_distinct() -> None:
    seeds = [derive_seed(42, index) for index in range(100)]
    assert seeds == [derive_seed(42, index) for index in range(100)]
    assert len(set(seeds)) == 100
    assert all(0 <= seed < 2**63 for seed in seeds)
    assert derive_seed(0, 1) != derive_seed(1, 0)


def test_default_jobs_reads_environment(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_jobs() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ValueError):
        default_jobs()


def test_run_experiment_records_matches_serial_reference() -> None:
    names = ["table1", "equilibrium"]
    serial = run_experiment_records(names, jobs=1)
    pooled = run_experiment_records(names, jobs=2)
    assert [record.name for record in serial] == names
    assert [record.name for record in pooled] == names
    for a, b in zip(serial, pooled):
        assert a.text == b.text
        assert a.payload == b.payload
        assert not a.cached and not b.cached


def test_run_experiments_rejects_unknown_names() -> None:
    with pytest.raises(KeyError):
        run_experiments(["table1", "nope"])


def test_run_experiments_defaults_to_full_registry(tmp_path) -> None:
    # Serve everything from a pre-seeded cache so the registry sweep
    # costs nothing: this checks ordering and cache plumbing, not the
    # experiments themselves.
    cache = ArtifactCache(tmp_path, digest="test-digest")
    names = experiment_names()
    for name in names:
        cache.put(
            name, {"text": f"text-{name}", "payload": {"name": name}}
        )
    records = run_experiments(jobs=1, cache=cache)
    assert [record.name for record in records] == names
    assert all(record.cached for record in records)
    assert records[0].text == f"text-{names[0]}"


def test_tuning_parallel_rows_match_serial() -> None:
    serial = run_tuning(cycles=2, jobs=1)
    pooled = run_tuning(cycles=2, jobs=2)
    assert serial.rows == pooled.rows
