"""Plan-driven allocation is byte-identical to per-object mutation.

This is the pin the bench rests on: ``build_allocation_plan`` +
``execute_plan`` must be indistinguishable — to the collector — from
driving ``LifetimeDrivenMutator.run`` over the same schedule.  Every
collector on every backend is held to the full bar: identical live
graph, identical GcStats counters, identical pause log.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import collector_factory
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule
from repro.perf.bench import BENCH_COLLECTORS
from repro.perf.plan import build_allocation_plan, execute_plan

WORDS = 20_000
HALF_LIFE = 500.0


def _fingerprint(heap):
    rows = []
    for space in heap.spaces():
        for obj in space.objects():
            rows.append((obj.obj_id, obj.size, obj.birth, obj.kind, space.name))
    return sorted(rows)


def _run_mutator(kind, backend):
    heap = make_heap(backend)
    roots = RootSet()
    collector = collector_factory(kind, None)(heap, roots)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(HALF_LIFE, seed=0)
    )
    mutator.run(WORDS)
    return heap, collector


def _run_plan(kind, backend):
    heap = make_heap(backend)
    roots = RootSet()
    collector = collector_factory(kind, None)(heap, roots)
    plan = build_allocation_plan(DecaySchedule(HALF_LIFE, seed=0), WORDS)
    execute_plan(collector, plan)
    return heap, collector


@pytest.mark.parametrize("backend", HEAP_BACKENDS)
@pytest.mark.parametrize("kind", BENCH_COLLECTORS)
def test_plan_matches_mutator(kind, backend):
    heap_a, coll_a = _run_mutator(kind, backend)
    heap_b, coll_b = _run_plan(kind, backend)
    assert _fingerprint(heap_a) == _fingerprint(heap_b)
    assert coll_a.stats.snapshot() == coll_b.stats.snapshot()
    assert coll_a.stats.pauses == coll_b.stats.pauses


@pytest.mark.parametrize("kind", BENCH_COLLECTORS)
def test_plan_agrees_across_backends(kind):
    heap_a, coll_a = _run_plan(kind, "object")
    heap_b, coll_b = _run_plan(kind, "flat")
    assert _fingerprint(heap_a) == _fingerprint(heap_b)
    assert coll_a.stats.snapshot() == coll_b.stats.snapshot()


class TestBuildPlan:
    def test_replicates_slot_choreography(self):
        schedule = DecaySchedule(50.0, seed=3)
        plan = build_allocation_plan(schedule, 200)
        assert plan.total_objects == 200
        assert plan.total_words == 200
        assert len(plan.releases) == 200
        assert len(plan.store_slots) == 200
        # Slots are reused (LIFO), so the frame stays far below one
        # slot per allocation at this short half-life.
        assert plan.slot_count < 200
        assert max(plan.store_slots) == plan.slot_count - 1
        # A slot freed before allocation i is never still held at i.
        live: set[int] = set()
        for released, stored in zip(plan.releases, plan.store_slots):
            for slot in released:
                live.discard(slot)
            assert stored not in live
            live.add(stored)

    def test_rounds_word_budget_up_to_whole_objects(self):
        plan = build_allocation_plan(
            DecaySchedule(50.0, seed=0), 100, object_words=8
        )
        assert plan.total_objects == 13
        assert plan.total_words == 104

    def test_rejects_bad_budgets(self):
        schedule = DecaySchedule(50.0, seed=0)
        with pytest.raises(ValueError):
            build_allocation_plan(schedule, 0)
        with pytest.raises(ValueError):
            build_allocation_plan(schedule, 100, object_words=0)
