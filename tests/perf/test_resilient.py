"""Tests for the hardened parallel engine: attempt-salted seeds,
retry/quarantine, timeout recovery, worker-crash recovery, and the
journal integration of the experiment runner."""

import os
import time

from repro.perf.parallel import (
    TaskFailure,
    derive_seed,
    resilient_map,
    run_experiment_records,
    task_retries,
    task_timeout,
)
from repro.resilience.journal import SweepJournal


# ----------------------------------------------------------------------
# Worker functions (module level: they must pickle for the pool)
# ----------------------------------------------------------------------


def _echo(item, attempt):
    return (item, attempt)


def _fail_first_attempt(item, attempt):
    if attempt == 0:
        raise RuntimeError(f"transient failure on {item!r}")
    return (item, attempt)


def _always_raise(item, attempt):
    raise ValueError(f"permanent failure on {item!r}")


def _sleep_first_attempt(item, attempt):
    if item == "slow" and attempt == 0:
        time.sleep(30.0)
    return (item, attempt)


def _kill_worker(item, attempt):
    if item == "bomb":
        os._exit(1)
    return (item, attempt)


def _kill_worker_first_attempt(item, attempt):
    if item == "bomb" and attempt == 0:
        os._exit(1)
    return (item, attempt)


# ----------------------------------------------------------------------
# derive_seed attempt salting (satellite b)
# ----------------------------------------------------------------------


class TestDeriveSeed:
    def test_attempt_zero_matches_legacy_two_arg_form(self):
        # First attempts must replay the exact historical seed stream —
        # the golden-fingerprint suite depends on it.
        for index in range(5):
            assert derive_seed(42, index) == derive_seed(42, index, 0)

    def test_retry_attempts_get_fresh_seeds(self):
        base = derive_seed(42, 3)
        salted = {derive_seed(42, 3, attempt) for attempt in range(1, 4)}
        assert base not in salted
        assert len(salted) == 3

    def test_salting_is_deterministic(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)


class TestEnvKnobs:
    def test_timeout_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert task_timeout() is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert task_timeout() == 2.5
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert task_timeout() is None

    def test_retries_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert task_retries() == 1
        monkeypatch.setenv("REPRO_TASK_RETRIES", "3")
        assert task_retries() == 3
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-2")
        assert task_retries() == 0


# ----------------------------------------------------------------------
# resilient_map
# ----------------------------------------------------------------------


class TestSerialPath:
    def test_success_preserves_order(self):
        results = resilient_map(_echo, ["a", "b", "c"], jobs=1, retries=0)
        assert results == [("a", 0), ("b", 0), ("c", 0)]

    def test_transient_failure_retried(self):
        results = resilient_map(
            _fail_first_attempt, ["a"], jobs=1, retries=1
        )
        assert results == [("a", 1)]

    def test_exhausted_retries_quarantine(self):
        results = resilient_map(_always_raise, ["a"], jobs=1, retries=1)
        (failure,) = results
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 2
        assert "permanent failure" in failure.error
        assert "'a'" in failure.summary()

    def test_on_result_fires_per_settlement(self):
        seen = []
        resilient_map(
            _echo,
            ["a", "b"],
            jobs=1,
            retries=0,
            on_result=lambda index, outcome: seen.append((index, outcome)),
        )
        assert seen == [(0, ("a", 0)), (1, ("b", 0))]


class TestPooledPath:
    def test_success_preserves_order(self):
        results = resilient_map(
            _echo, ["a", "b", "c", "d"], jobs=2, retries=0
        )
        assert results == [(x, 0) for x in ("a", "b", "c", "d")]

    def test_transient_failures_retried(self):
        results = resilient_map(
            _fail_first_attempt, ["a", "b"], jobs=2, retries=1
        )
        assert results == [("a", 1), ("b", 1)]

    def test_timeout_retries_then_succeeds(self):
        results = resilient_map(
            _sleep_first_attempt,
            ["fast", "slow"],
            jobs=2,
            timeout=1.0,
            retries=1,
        )
        assert results[0] == ("fast", 0)
        # The offender was killed with its pool, then retried; the
        # retry (attempt 1) skips the sleep and completes.
        assert results[1] == ("slow", 1)

    def test_timeout_quarantines_after_retries(self):
        # retries=0: the slow task's only attempt times out.  (A
        # single-item map would take the serial path, where timeouts
        # are not enforced — keep a second, fast item in the batch.)
        fast, failure = resilient_map(
            _sleep_first_attempt,
            ["fast", "slow"],
            jobs=2,
            timeout=1.0,
            retries=0,
        )
        assert fast == ("fast", 0)
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 1

    def test_worker_crash_quarantines_after_retries(self):
        # Two bombs: every breakage charges both (the engine cannot
        # tell which in-flight task killed the pool), so both march to
        # quarantine in lockstep.
        results = resilient_map(
            _kill_worker, ["bomb", "bomb"], jobs=2, retries=1
        )
        for failure in results:
            assert isinstance(failure, TaskFailure)
            assert failure.kind == "worker-crash"
            assert failure.attempts == 2

    def test_worker_crash_recovery_resumes_all_tasks(self):
        # The bomb detonates only on its first attempt; every task in
        # flight at the breakage is charged one attempt and resubmitted,
        # so with budget to spare the whole sweep still completes.
        results = resilient_map(
            _kill_worker_first_attempt,
            ["a", "bomb", "b"],
            jobs=2,
            retries=2,
        )
        assert [r[0] for r in results] == ["a", "bomb", "b"]
        bomb_item, bomb_attempt = results[1]
        assert bomb_attempt >= 1


# ----------------------------------------------------------------------
# run_experiment_records + journal
# ----------------------------------------------------------------------


class TestJournalIntegration:
    def test_journalled_entry_served_without_rerun(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, ["table1"], "digest")
        journal.record_success(
            "table1",
            {"text": "from-journal", "payload": {"k": 1}, "seconds": 0.1},
        )
        resumed = SweepJournal.resume(path, ["table1"], "digest")
        (record,) = run_experiment_records(["table1"], journal=resumed)
        # Served from the journal: the fake text proves no rerun.
        assert record.text == "from-journal"
        assert record.cached

    def test_fresh_run_journals_each_completion(self, tmp_path):
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, ["equilibrium"], "digest")
        (record,) = run_experiment_records(["equilibrium"], journal=journal)
        assert not record.cached
        resumed = SweepJournal.resume(path, ["equilibrium"], "digest")
        assert resumed.completed["equilibrium"]["text"] == record.text

    def test_quarantine_reported_not_raised(self, tmp_path, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setattr(parallel, "_experiment_task", _always_raise)
        path = tmp_path / "journal.json"
        journal = SweepJournal.fresh(path, ["equilibrium"], "digest")
        failures = []
        records = run_experiment_records(
            ["equilibrium"], retries=0, journal=journal, failures=failures
        )
        assert records == []
        (failure,) = failures
        assert failure.kind == "crash"
        resumed = SweepJournal.resume(path, ["equilibrium"], "digest")
        assert resumed.quarantined["equilibrium"]["kind"] == "crash"
