"""The artifact cache: keying, invalidation, corruption tolerance."""

from __future__ import annotations

import json

from repro.perf.cache import ArtifactCache, source_digest


def test_miss_then_hit(tmp_path) -> None:
    cache = ArtifactCache(tmp_path, digest="d1")
    assert cache.get("table1") is None
    cache.put("table1", {"rows": [1, 2, 3]})
    assert cache.get("table1") == {"rows": [1, 2, 3]}


def test_params_distinguish_entries(tmp_path) -> None:
    cache = ArtifactCache(tmp_path, digest="d1")
    cache.put("sweep", "defaults")
    cache.put("sweep", "tuned", params={"cycles": 50})
    assert cache.get("sweep") == "defaults"
    assert cache.get("sweep", params={"cycles": 50}) == "tuned"
    assert cache.get("sweep", params={"cycles": 51}) is None


def test_source_digest_change_invalidates(tmp_path) -> None:
    old = ArtifactCache(tmp_path, digest="before-edit")
    old.put("table1", "stale artifact")
    new = ArtifactCache(tmp_path, digest="after-edit")
    assert new.get("table1") is None
    # The old entry is unreachable, not corrupted: the old digest
    # still finds it.
    assert old.get("table1") == "stale artifact"


def test_corrupt_entry_is_a_miss(tmp_path) -> None:
    cache = ArtifactCache(tmp_path, digest="d1")
    path = cache.put("table1", "good")
    path.write_text("{ not json", encoding="utf-8")
    assert cache.get("table1") is None


def test_entry_with_foreign_key_is_a_miss(tmp_path) -> None:
    # A truncated-filename collision must not serve a wrong value: the
    # full key inside the entry is checked on read.
    cache = ArtifactCache(tmp_path, digest="d1")
    path = cache.entry_path("table1")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"key": "somebody-else", "value": "wrong"}),
        encoding="utf-8",
    )
    assert cache.get("table1") is None


def test_clear_removes_entries(tmp_path) -> None:
    cache = ArtifactCache(tmp_path, digest="d1")
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.get("a") is None


def test_source_digest_tracks_file_content(tmp_path) -> None:
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "mod.py").write_text("x = 1\n", encoding="utf-8")
    before = source_digest(root)
    assert before == source_digest(root)
    (root / "mod.py").write_text("x = 2\n", encoding="utf-8")
    assert source_digest(root) != before
    # Adding a file changes it too.
    (root / "new.py").write_text("", encoding="utf-8")
    edited = source_digest(root)
    assert edited != before
    (root / "new.py").unlink()


def test_real_source_digest_is_stable() -> None:
    assert source_digest() == source_digest()
