"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_rejects_unknown_collector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "lattice", "--collector", "x"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "nboyer" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--g", "0.25", "--load", "3.5"]) == 0
        out = capsys.readouterr().out
        assert "mark/cons" in out
        assert "0.1888" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "lattice" in out

    def test_bench_lattice(self, capsys):
        assert main(
            ["bench", "lattice", "--collector", "mark-sweep", "--scale", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "mark/cons" in out
        assert "collections" in out

    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "table2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["_type"] == "Table2Result"
        assert len(data["rows"]) == 6

    def test_trace_record_and_analyze(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["trace", "record", "lattice", "-o", path, "--scale", "0"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "survival", path]) == 0
        out = capsys.readouterr().out
        assert "words old" in out
        assert main(["trace", "profile", path]) == 0
        out = capsys.readouterr().out
        assert "peak" in out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "paper claims verified" in out
        assert "FAIL" not in out

    def test_all_selective_with_output(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "artifacts"
        assert main(
            ["all", "--only", "table2", "--output", str(out_dir)]
        ) == 0
        capsys.readouterr()
        assert (out_dir / "table2.txt").exists()
        data = json.loads((out_dir / "table2.json").read_text())
        assert data["_type"] == "Table2Result"

    def test_all_rejects_unknown_only(self, capsys):
        with pytest.raises(SystemExit):
            main(["all", "--only", "table99"])

    def test_list_shows_extras(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcbench" in out
        assert "validate" not in out  # only experiments and benchmarks


class TestTraceFlags:
    @pytest.fixture()
    def trace_path(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["trace", "record", "lattice", "-o", path,
             "--scale", "0", "--epochs", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        return path

    def test_survival_custom_binning(self, capsys, trace_path):
        assert main(
            ["trace", "survival", trace_path,
             "--age-step", "500", "--brackets", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "words old" in out

    def test_profile_custom_epoch(self, capsys, trace_path):
        assert main(["trace", "profile", trace_path, "--epoch", "700"]) == 0
        out = capsys.readouterr().out
        assert "peak" in out

    def test_record_requires_known_benchmark(self):
        with pytest.raises(SystemExit):
            main(["trace", "record", "nonesuch", "-o", "/tmp/x.jsonl"])


class TestVerifyCommand:
    def test_verify_passes_on_all_collectors(self, capsys):
        assert main(["verify", "--ops", "150", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "mark-sweep" in out
        assert "hybrid" in out

    def test_verify_collector_subset(self, capsys):
        assert main(
            ["verify", "--ops", "100", "--seed", "2",
             "--collectors", "mark-sweep", "generational"]
        ) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "non-predictive" not in out

    def test_verify_unchecked_mode(self, capsys):
        assert main(
            ["verify", "--ops", "100", "--seed", "3", "--unchecked"]
        ) == 0
        assert "[PASS]" in capsys.readouterr().out

    def test_verify_rejects_unknown_collector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["verify", "--collectors", "warp-speed"]
            )

    def test_verify_rejects_bad_ops_cleanly(self, capsys):
        assert main(["verify", "--ops", "0"]) == 2
        err = capsys.readouterr().err
        assert "op count must be positive" in err
        assert "Traceback" not in err


class TestServiceCommands:
    def test_load_fingerprint_is_golden(self, capsys):
        assert main(["load", "--tenants", "5", "--fingerprint"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == (
            "5b6f41e7accb522f3ed1f38b162704d6f3bbdddd"
            "539aa11bd78e8022b250a328"
        )

    def test_load_self_served_writes_valid_report(self, capsys, tmp_path):
        report_path = tmp_path / "scale.json"
        assert main(
            [
                "load", "--tenants", "7", "--ops", "60",
                "--shards", "2", "--report", str(report_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "total:" in out
        import json

        from repro.service.report import validate_scale_report

        report = json.loads(report_path.read_text())
        assert validate_scale_report(report) == []

    def test_load_check_gates_against_committed_report(
        self, capsys, tmp_path
    ):
        import json

        report_path = tmp_path / "scale.json"
        assert main(
            [
                "load", "--tenants", "7", "--ops", "60",
                "--report", str(report_path),
            ]
        ) == 0
        capsys.readouterr()
        # Same seed regenerates the same deterministic rows: gate passes.
        assert main(
            [
                "load", "--tenants", "7", "--ops", "60",
                "--check", str(report_path),
            ]
        ) == 0
        capsys.readouterr()
        # Tighten the committed baseline to force a p99 regression.
        report = json.loads(report_path.read_text())
        for row in report["rows"]:
            row["p99_pause_words"] = 0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(report))
        assert main(
            [
                "load", "--tenants", "7", "--ops", "60",
                "--check", str(doctored),
            ]
        ) == 1
        captured = capsys.readouterr()
        assert "p99" in (captured.out + captured.err)

    def test_isolation_command_passes(self, capsys):
        assert main(
            [
                "isolation", "--tenants", "3", "--ops", "60",
                "--kinds", "mark-sweep,generational",
            ]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_load_rejects_unknown_kind_and_profile(self):
        with pytest.raises(SystemExit):
            main(["load", "--kinds", "warp-speed", "--fingerprint"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "--profile", "thermal"])
