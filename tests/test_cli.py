"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_rejects_unknown_collector(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "lattice", "--collector", "x"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "nboyer" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--g", "0.25", "--load", "3.5"]) == 0
        out = capsys.readouterr().out
        assert "mark/cons" in out
        assert "0.1888" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "lattice" in out

    def test_bench_lattice(self, capsys):
        assert main(
            ["bench", "lattice", "--collector", "mark-sweep", "--scale", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "mark/cons" in out
        assert "collections" in out

    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "table2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["_type"] == "Table2Result"
        assert len(data["rows"]) == 6

    def test_trace_record_and_analyze(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["trace", "record", "lattice", "-o", path, "--scale", "0"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "survival", path]) == 0
        out = capsys.readouterr().out
        assert "words old" in out
        assert main(["trace", "profile", path]) == 0
        out = capsys.readouterr().out
        assert "peak" in out

    def test_validate_command(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "paper claims verified" in out
        assert "FAIL" not in out

    def test_all_selective_with_output(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "artifacts"
        assert main(
            ["all", "--only", "table2", "--output", str(out_dir)]
        ) == 0
        capsys.readouterr()
        assert (out_dir / "table2.txt").exists()
        data = json.loads((out_dir / "table2.json").read_text())
        assert data["_type"] == "Table2Result"

    def test_all_rejects_unknown_only(self, capsys):
        with pytest.raises(SystemExit):
            main(["all", "--only", "table99"])

    def test_list_shows_extras(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcbench" in out
        assert "validate" not in out  # only experiments and benchmarks
