"""Tests for the nucleic (pseudoknot-like) benchmark."""

from __future__ import annotations

import math

import pytest

from repro.programs.nucleic import _compose, _identity, _make_transform, run_nucleic
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


def transform_values(machine, transform) -> list[float]:
    return [
        machine.flonum_value(machine.vector_ref(transform, slot))
        for slot in range(12)
    ]


class TestTransforms:
    def test_identity_composition(self, machine):
        identity = _identity(machine)
        other = _make_transform(
            machine, [0, 1, 0, -1, 0, 0, 0, 0, 1, 5, 6, 7]
        )
        composed = _compose(machine, identity, other)
        assert transform_values(machine, composed) == pytest.approx(
            transform_values(machine, other)
        )

    def test_composition_matches_matrix_algebra(self, machine):
        # Rotate 90 degrees about z twice: equals 180-degree rotation.
        quarter = _make_transform(
            machine, [0, -1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0]
        )
        half = _compose(machine, quarter, quarter)
        values = transform_values(machine, half)
        expected = [-1, 0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0]
        assert values == pytest.approx(expected, abs=1e-12)

    def test_translation_composes(self, machine):
        move = _make_transform(
            machine, [1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 2, 3]
        )
        double = _compose(machine, move, move)
        assert transform_values(machine, double)[9:] == pytest.approx(
            [2.0, 4.0, 6.0]
        )

    def test_composition_allocates_flonums(self, machine):
        a = _identity(machine)
        before = machine.stats.words_allocated
        _compose(machine, a, a)
        # 9 dot products of 3 mul+add pairs plus translation work,
        # all boxed.
        assert machine.stats.words_allocated - before > 100


class TestSearch:
    def test_deterministic(self):
        a = run_nucleic(Machine(TracingCollector), residues=5, seed=3)
        b = run_nucleic(Machine(TracingCollector), residues=5, seed=3)
        assert a.solutions == b.solutions
        assert a.placements_tried == b.placements_tried

    def test_pruning_bounds_search(self, machine):
        result = run_nucleic(
            machine, residues=6, candidates=3, max_radius=0.5, seed=4
        )
        # A tight radius prunes almost everything.
        assert result.placements_tried < 3**6

    def test_live_set_small_after_run(self, machine):
        result = run_nucleic(machine, residues=5, seed=5)
        machine.collect()
        assert machine.live_words() < result.words_allocated / 10

    def test_solution_count_bounded_by_tree(self, machine):
        result = run_nucleic(machine, residues=4, candidates=2, seed=6)
        assert 0 <= result.solutions <= 2**4

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_nucleic(machine, residues=0)
        with pytest.raises(ValueError):
            run_nucleic(machine, candidates=0)
