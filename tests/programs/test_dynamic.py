"""Tests for the dynamic / 10dynamic benchmark."""

from __future__ import annotations

import pytest

from repro.programs.dynamic import generate_corpus, infer_program, run_dynamic
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector
from repro.trace.recorder import LifetimeRecorder


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestCorpus:
    def test_deterministic(self):
        machine_a = Machine(TracingCollector)
        machine_b = Machine(TracingCollector)
        corpus_a = generate_corpus(machine_a, definitions=5, seed=1)
        corpus_b = generate_corpus(machine_b, definitions=5, seed=1)
        from repro.runtime.interop import to_python

        assert [to_python(machine_a, d) for d in corpus_a] == [
            to_python(machine_b, d) for d in corpus_b
        ]

    def test_different_seeds_differ(self):
        machine_a = Machine(TracingCollector)
        machine_b = Machine(TracingCollector)
        from repro.runtime.interop import to_python

        a = [
            to_python(machine_a, d)
            for d in generate_corpus(machine_a, definitions=5, seed=1)
        ]
        b = [
            to_python(machine_b, d)
            for d in generate_corpus(machine_b, definitions=5, seed=2)
        ]
        assert a != b

    def test_corpus_size(self, machine):
        corpus = generate_corpus(machine, definitions=7)
        assert len(corpus) == 7


class TestInference:
    def test_deterministic_coercions(self):
        machine_a = Machine(TracingCollector)
        machine_b = Machine(TracingCollector)
        corpus_a = generate_corpus(machine_a, definitions=10, seed=3)
        corpus_b = generate_corpus(machine_b, definitions=10, seed=3)
        assert infer_program(machine_a, corpus_a) == infer_program(
            machine_b, corpus_b
        )

    def test_iterations_identical(self, machine):
        # Re-analyzing the same corpus gives the same answer — the
        # iterated runs differ only in storage behaviour.
        corpus = generate_corpus(machine, definitions=10, seed=4)
        first = infer_program(machine, corpus)
        second = infer_program(machine, corpus)
        assert first == second

    def test_mass_extinction_at_iteration_end(self, machine):
        corpus = generate_corpus(machine, definitions=10, seed=5)
        live_before = machine.live_words()
        infer_program(machine, corpus)
        machine.collect()
        # Once the iteration's structures are dropped, live storage
        # returns to (roughly) just the corpus.
        assert machine.live_words() == pytest.approx(live_before, rel=0.05)

    def test_storage_survives_within_iteration(self):
        # During the iteration, allocated storage accumulates: the
        # high within-iteration survival of Figure 2 / Table 4.
        machine = Machine(TracingCollector)
        corpus = generate_corpus(machine, definitions=20, seed=6)
        recorder = LifetimeRecorder(machine, epoch_words=2_000)
        infer_program(machine, corpus)
        live = sum(
            record.size
            for record in recorder.trace.records
            if record.death is None
        )
        total = recorder.trace.words_allocated
        recorder.finish()
        assert live / total > 0.75


class TestRunner:
    def test_result_shape(self, machine):
        result = run_dynamic(machine, iterations=3, definitions=8, depth=4)
        assert result.iterations == 3
        assert len(result.coercions_per_iteration) == 3
        # Every iteration analyzes the same corpus.
        assert len(set(result.coercions_per_iteration)) == 1
        assert result.words_allocated > 0

    def test_rejects_zero_iterations(self, machine):
        with pytest.raises(ValueError):
            run_dynamic(machine, iterations=0)

    def test_unknown_head_rejected(self, machine):
        from repro.runtime.interop import from_list
        from repro.programs.dynamic import _Inference

        inference = _Inference(machine)
        bad = from_list(machine, ["bogus", "x"])
        with pytest.raises(ValueError):
            inference.infer(bad, None)
