"""Tests for the Boyer term rewriter and benchmark."""

from __future__ import annotations

import pytest

from repro.programs.boyer import run_nboyer, run_sboyer
from repro.programs.boyer.rewriter import BoyerRewriter
from repro.programs.boyer.rules import LEMMAS, build_lemma_database
from repro.programs.boyer.terms import (
    apply_subst,
    is_compound,
    member_equal,
    term_equal,
    term_size,
)
from repro.runtime.interop import from_list, to_python
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


@pytest.fixture
def rewriter(machine):
    return BoyerRewriter(machine, build_lemma_database(machine))


class TestTermUtilities:
    def test_term_equal_structural(self, machine):
        a = from_list(machine, ["plus", "x", ["times", "y", "z"]])
        b = from_list(machine, ["plus", "x", ["times", "y", "z"]])
        c = from_list(machine, ["plus", "x", ["times", "y", "w"]])
        assert term_equal(machine, a, b)
        assert not term_equal(machine, a, c)

    def test_term_equal_on_atoms(self, machine):
        assert term_equal(machine, machine.intern("x"), machine.intern("x"))
        assert not term_equal(
            machine, machine.intern("x"), machine.intern("y")
        )

    def test_member_equal(self, machine):
        lst = from_list(machine, [["f", "a"], ["g", "b"]])
        assert member_equal(machine, from_list(machine, ["g", "b"]), lst)
        assert not member_equal(machine, from_list(machine, ["h", "c"]), lst)

    def test_apply_subst_replaces_variables(self, machine):
        term = from_list(machine, ["plus", "x", ["times", "x", "y"]])
        subst = {"x": from_list(machine, ["zero"]), "y": machine.intern("q")}
        result = apply_subst(machine, subst, term)
        assert to_python(machine, result) == [
            "plus",
            ["zero"],
            ["times", ["zero"], "q"],
        ]

    def test_apply_subst_shares_bound_terms(self, machine):
        big = from_list(machine, ["f", "a", "b"])
        term = from_list(machine, ["g", "x", "x"])
        result = apply_subst(machine, {"x": big}, term)
        first = machine.car(machine.cdr(result))
        second = machine.car(machine.cdr(machine.cdr(result)))
        assert first == second  # the same heap object, not a copy

    def test_term_size(self, machine):
        assert term_size(machine, machine.intern("x")) == 0
        term = from_list(machine, ["f", "x"])  # 2 pairs
        assert term_size(machine, term) == 2

    def test_is_compound(self, machine):
        assert is_compound(from_list(machine, ["f"]))
        assert not is_compound(machine.intern("f"))
        assert not is_compound(None)


class TestUnification:
    def test_variable_binds(self, machine, rewriter):
        term = from_list(machine, ["plus", ["f", "a"], "b"])
        pattern = from_list(machine, ["plus", "x", "y"])
        subst = rewriter.one_way_unify(term, pattern)
        assert subst is not None
        assert to_python(machine, subst["x"]) == ["f", "a"]

    def test_repeated_variable_must_match(self, machine, rewriter):
        pattern = from_list(machine, ["difference", "x", "x"])
        good = from_list(machine, ["difference", ["f", "a"], ["f", "a"]])
        bad = from_list(machine, ["difference", ["f", "a"], ["f", "b"]])
        assert rewriter.one_way_unify(good, pattern) is not None
        assert rewriter.one_way_unify(bad, pattern) is None

    def test_operator_mismatch_fails(self, machine, rewriter):
        term = from_list(machine, ["times", "a", "b"])
        pattern = from_list(machine, ["plus", "x", "y"])
        assert rewriter.one_way_unify(term, pattern) is None

    def test_nested_pattern(self, machine, rewriter):
        pattern = from_list(machine, ["plus", ["plus", "x", "y"], "z"])
        term = from_list(machine, ["plus", ["plus", "a", "b"], "c"])
        subst = rewriter.one_way_unify(term, pattern)
        assert subst is not None
        assert to_python(machine, subst["x"]) == "a"

    def test_numeric_literals_are_constants(self, machine, rewriter):
        # The nboyer bug fix: (remainder y 1) must not match
        # (remainder a b) for arbitrary b.
        pattern = from_list(machine, ["remainder", "y", 1])
        matching = from_list(machine, ["remainder", "q", 1])
        not_matching = from_list(machine, ["remainder", "q", ["f", "b"]])
        assert rewriter.one_way_unify(matching, pattern) is not None
        assert rewriter.one_way_unify(not_matching, pattern) is None

    def test_arity_mismatch_fails(self, machine, rewriter):
        pattern = from_list(machine, ["plus", "x", "y"])
        term = from_list(machine, ["plus", "a"])
        assert rewriter.one_way_unify(term, pattern) is None


class TestRewriting:
    def test_atoms_rewrite_to_themselves(self, machine, rewriter):
        atom = machine.intern("a")
        assert rewriter.rewrite(atom) == atom

    def test_plus_associativity(self, machine, rewriter):
        term = from_list(machine, ["plus", ["plus", "a", "b"], "c"])
        result = rewriter.rewrite(term)
        assert to_python(machine, result) == ["plus", "a", ["plus", "b", "c"]]

    def test_implies_becomes_if(self, machine, rewriter):
        term = from_list(machine, ["implies", "p", "q"])
        result = rewriter.rewrite(term)
        assert to_python(machine, result) == [
            "if", "p", ["if", "q", ["t"], ["f"]], ["t"],
        ]

    def test_difference_x_x(self, machine, rewriter):
        term = from_list(machine, ["difference", ["f", "a"], ["f", "a"]])
        assert to_python(machine, rewriter.rewrite(term)) == ["zero"]

    def test_unmatched_term_unchanged(self, machine, rewriter):
        term = from_list(machine, ["mystery", "a", "b"])
        assert to_python(machine, rewriter.rewrite(term)) == [
            "mystery", "a", "b",
        ]

    def test_rewrite_counts_rule_applications(self, machine, rewriter):
        rewriter.rewrite(from_list(machine, ["implies", "p", "q"]))
        assert rewriter.rewrite_count >= 1


class TestTautology:
    def test_t_is_tautology(self, machine, rewriter):
        assert rewriter.tautologyp(from_list(machine, ["t"]), None, None)

    def test_f_is_not(self, machine, rewriter):
        assert not rewriter.tautologyp(from_list(machine, ["f"]), None, None)

    def test_if_with_assumed_condition(self, machine, rewriter):
        # (if p (t) (f)) is a tautology when p is in the true list.
        p = machine.intern("p")
        term = from_list(machine, ["if", "p", ["t"], ["f"]])
        assert rewriter.tautologyp(term, machine.cons(p, None), None)
        assert not rewriter.tautologyp(term, None, None)

    def test_excluded_middle_via_branches(self, machine, rewriter):
        # (if p (if p (t) (f)) (if p (f) (t))) is a tautology.
        term = from_list(
            machine,
            ["if", "p", ["if", "p", ["t"], ["f"]], ["if", "p", ["f"], ["t"]]],
        )
        assert rewriter.tautologyp(term, None, None)

    def test_tautp_on_simple_implication(self, machine, rewriter):
        assert rewriter.tautp(from_list(machine, ["implies", "p", "p"]))
        assert not rewriter.tautp(from_list(machine, ["implies", "p", "q"]))


class TestBenchmark:
    def test_nboyer_proves_the_theorem(self, machine):
        result = run_nboyer(machine, 0)
        assert result.proved
        assert result.rewrites > 500
        assert result.words_allocated > 100_000

    def test_sboyer_same_result_far_less_allocation(self):
        machine_n = Machine(TracingCollector)
        machine_s = Machine(TracingCollector)
        nres = run_nboyer(machine_n, 0)
        sres = run_sboyer(machine_s, 0)
        assert sres.proved
        assert sres.rewrites == nres.rewrites
        assert sres.rewritten_size == nres.rewritten_size
        # Baker: shared consing "greatly decreases" allocation.
        assert sres.words_allocated < nres.words_allocated / 5

    def test_scaling_grows_allocation(self):
        machine0 = Machine(TracingCollector)
        machine1 = Machine(TracingCollector)
        r0 = run_nboyer(machine0, 0)
        r1 = run_nboyer(machine1, 1)
        assert r1.proved
        assert r1.words_allocated > 2 * r0.words_allocated

    def test_rejects_negative_scale(self, machine):
        with pytest.raises(ValueError):
            run_nboyer(machine, -1)


class TestRuleBase:
    def test_rule_count_substantial(self):
        assert len(LEMMAS) >= 90

    def test_every_lemma_is_equal_form(self, machine):
        database = build_lemma_database(machine)
        for lemmas in database.values():
            for lemma in lemmas:
                assert machine.symbol_name(machine.car(lemma)) == "equal"

    def test_index_keyed_by_lhs_operator(self, machine):
        database = build_lemma_database(machine)
        assert "plus" in database
        assert "append" in database
        assert "implies" in database

    def test_try_order_is_last_added_first(self, machine):
        # add-lemma conses onto the property list, so later lemmas are
        # tried first; reverse-loop has two lemmas and the (nil)
        # special case was added second.
        database = build_lemma_database(machine)
        first = database["reverse-loop"][0]
        lhs = machine.car(machine.cdr(first))
        assert to_python(machine, lhs) == ["reverse-loop", "x", ["nil"]]
