"""Tests for the nbody benchmark."""

from __future__ import annotations

import pytest

from repro.programs.nbody import run_nbody
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestNBody:
    def test_energy_approximately_conserved(self, machine):
        result = run_nbody(machine, bodies=8, steps=10, dt=1e-4, seed=1)
        assert result.energy_drift < 0.05 * abs(result.initial_energy) + 0.05

    def test_deterministic(self):
        a = run_nbody(Machine(TracingCollector), bodies=6, steps=3, seed=2)
        b = run_nbody(Machine(TracingCollector), bodies=6, steps=3, seed=2)
        assert a.final_energy == b.final_energy
        assert a.words_allocated == b.words_allocated

    def test_flonum_allocation_dominates(self, machine):
        result = run_nbody(machine, bodies=8, steps=4)
        # ~20 flonum ops per body pair per step, 4 words each.
        assert result.words_allocated > 8 * 7 * 4 * 10

    def test_live_set_is_tiny(self, machine):
        # The paper's signature: enormous allocation, < 1% live.
        result = run_nbody(machine, bodies=8, steps=6)
        machine.collect()
        assert machine.live_words() < result.words_allocated / 50

    def test_allocation_scales_quadratically_in_bodies(self):
        small = run_nbody(Machine(TracingCollector), bodies=8, steps=2)
        large = run_nbody(Machine(TracingCollector), bodies=16, steps=2)
        ratio = large.words_allocated / small.words_allocated
        assert 3.0 < ratio < 5.0

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_nbody(machine, bodies=1)
        with pytest.raises(ValueError):
            run_nbody(machine, steps=0)
