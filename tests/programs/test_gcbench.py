"""Tests for the GCBench workload."""

from __future__ import annotations

import pytest

from repro.gc.generational import GenerationalCollector
from repro.programs.gcbench import run_gcbench
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestGcBench:
    def test_long_lived_tree_complete(self, machine):
        result = run_gcbench(machine, min_depth=3, max_depth=5)
        assert result.long_lived_nodes == (1 << 6) - 1

    def test_transient_trees_counted(self, machine):
        result = run_gcbench(machine, min_depth=3, max_depth=5)
        # Depths 3 and 5, each with iterations x 2 trees.
        assert result.transient_trees > 0
        assert result.transient_trees % 2 == 0

    def test_allocation_balanced_across_depths(self):
        # Each depth allocates roughly the same storage as the deepest
        # tree (the original's design); total is therefore roughly
        # (number of depths + long-lived) x deepest-tree words.
        machine = Machine(TracingCollector)
        result = run_gcbench(machine, min_depth=4, max_depth=8)
        deepest_words = ((1 << 9) - 1) * 2
        depths = len(range(4, 9, 2))
        assert result.words_allocated > depths * deepest_words

    def test_runs_under_real_collector(self):
        # Small nursery so collections strike mid-build; the final
        # _check_tree inside run_gcbench verifies the long-lived tree
        # survived them intact.
        machine = Machine(
            lambda heap, roots: GenerationalCollector(
                heap, roots, [512, 4_096]
            )
        )
        result = run_gcbench(machine, min_depth=4, max_depth=8)
        assert result.long_lived_nodes == (1 << 9) - 1
        assert machine.stats.collections > 0
        machine.heap.check_integrity()

    def test_everything_dies_when_results_dropped(self, machine):
        # The workload holds its long-lived data only for the run;
        # once the handles are dropped nothing remains reachable.
        run_gcbench(machine, min_depth=3, max_depth=5)
        machine.collect()
        assert machine.live_words() == 0

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_gcbench(machine, min_depth=0, max_depth=4)
        with pytest.raises(ValueError):
            run_gcbench(machine, min_depth=5, max_depth=4)
