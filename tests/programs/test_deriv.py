"""Tests for the deriv benchmark (Scheme via the interpreter)."""

from __future__ import annotations

import pytest

from repro.gc.hybrid import HybridCollector
from repro.programs.deriv import run_deriv
from repro.programs.registry import get_benchmark
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestDeriv:
    def test_derivative_of_gabriels_expression(self, machine):
        result = run_deriv(machine, iterations=1)
        # d/dx of 3x^2 is represented (unsimplified) as the classic
        # product-rule expansion; spot-check its head and the constant
        # term's derivative.
        assert result.derivative[0] == "+"
        assert result.derivative[-1] == 0  # d/dx 5
        three_x_squared = result.derivative[1]
        assert three_x_squared[0] == "*"
        assert three_x_squared[1] == ["*", 3, "x", "x"]

    def test_deterministic(self):
        a = run_deriv(Machine(TracingCollector), iterations=3)
        b = run_deriv(Machine(TracingCollector), iterations=3)
        assert a.derivative == b.derivative
        assert a.words_allocated == b.words_allocated

    def test_allocation_scales_with_iterations(self):
        small = run_deriv(Machine(TracingCollector), iterations=5)
        large = run_deriv(Machine(TracingCollector), iterations=20)
        assert 3.0 < large.words_allocated / small.words_allocated < 5.0

    def test_nothing_survives(self, machine):
        result = run_deriv(machine, iterations=10)
        machine.collect()
        # Only the interpreter's defined procedures remain (closures in
        # the global table); the derivatives themselves are garbage.
        assert machine.live_words() < result.words_allocated / 10

    def test_runs_under_real_collector(self):
        machine = Machine(
            lambda heap, roots: HybridCollector(heap, roots, 512, 8, 512)
        )
        result = run_deriv(machine, iterations=20)
        assert machine.stats.collections > 0
        assert result.derivative[0] == "+"
        machine.heap.check_integrity()

    def test_registered_as_extra(self):
        assert get_benchmark("deriv").name == "deriv"

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_deriv(machine, iterations=0)
