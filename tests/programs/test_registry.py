"""Tests for the benchmark registry."""

from __future__ import annotations

import pytest

from repro.programs.registry import BENCHMARKS, benchmark_names, get_benchmark
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


class TestRegistry:
    def test_all_six_paper_benchmarks_present(self):
        assert benchmark_names(include_extras=False) == [
            "nbody",
            "nucleic2",
            "lattice",
            "10dynamic",
            "nboyer",
            "sboyer",
        ]

    def test_extra_workloads_listed_after_the_six(self):
        names = benchmark_names()
        assert names[:6] == benchmark_names(include_extras=False)
        assert "gcbench" in names
        assert "mperm" in names

    def test_extras_resolvable(self):
        assert get_benchmark("gcbench").name == "gcbench"
        assert get_benchmark("mperm").name == "mperm"

    def test_get_by_name(self):
        assert get_benchmark("lattice").name == "lattice"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("quicksort")

    def test_descriptions_match_table2(self):
        descriptions = {b.name: b.description for b in BENCHMARKS}
        assert descriptions["nbody"] == "inverse-square law simulation"
        assert (
            descriptions["10dynamic"] == "Henglein's dynamic type inference"
        )

    @pytest.mark.parametrize(
        "name", ["nbody", "nucleic2", "lattice", "10dynamic"]
    )
    def test_scale_zero_runs_quickly(self, name):
        machine = Machine(TracingCollector)
        benchmark = get_benchmark(name)
        result = benchmark.run(machine, 0)
        assert machine.stats.words_allocated > 0
        assert result is not None
