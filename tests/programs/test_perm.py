"""Tests for the perm / mperm workloads."""

from __future__ import annotations

import math

import pytest

from repro.gc.stopcopy import StopAndCopyCollector
from repro.programs.perm import run_mperm, run_perm
from repro.runtime.interop import to_python
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


class TestPerm:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_counts_are_factorials(self, machine, n):
        result = run_perm(machine, n)
        assert result.permutation_count == math.factorial(n)

    def test_permutations_are_distinct_and_valid(self, machine):
        from repro.programs.perm import _permutations
        from repro.runtime.interop import from_list

        items = from_list(machine, [1, 2, 3])
        perms = _permutations(machine, items)
        seen = set()
        while perms is not None:
            perm = to_python(machine, machine.car(perms))
            assert sorted(perm) == [1, 2, 3]
            seen.add(tuple(perm))
            perms = machine.cdr(perms)
        assert len(seen) == 6

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_perm(machine, 0)


class TestMperm:
    def test_window_bounds_live_storage(self, machine):
        result = run_mperm(machine, 4, keep=2, batches=6)
        assert result.batches == 6
        machine.collect()
        # Only the kept batches remain live; with 6 batches generated,
        # most storage has died.
        assert machine.live_words() < result.words_allocated / 2

    def test_runs_under_real_collector(self):
        machine = Machine(
            lambda heap, roots: StopAndCopyCollector(heap, roots, 4_096)
        )
        result = run_mperm(machine, 4, keep=2, batches=8)
        assert result.permutation_count == 24
        assert machine.stats.collections > 0
        machine.heap.check_integrity()

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            run_mperm(machine, 4, keep=0)
        with pytest.raises(ValueError):
            run_mperm(machine, 4, keep=5, batches=3)
