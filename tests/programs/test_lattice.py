"""Tests for the lattice benchmark."""

from __future__ import annotations

from itertools import product

import pytest

from repro.programs.lattice import Lattice, count_monotone_maps, run_lattice
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector


@pytest.fixture
def machine():
    return Machine(TracingCollector)


def brute_force_count(source: Lattice, target: Lattice) -> int:
    """Reference implementation: try every function."""
    count = 0
    n = len(source)
    for assignment in product(range(len(target)), repeat=n):
        ok = True
        for a in range(n):
            for b in range(n):
                if source.leq(a, b) and not target.leq(
                    assignment[a], assignment[b]
                ):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            count += 1
    return count


class TestLatticeStructure:
    def test_chain_product_size(self):
        lattice = Lattice.chain_product((2, 3))
        assert len(lattice) == 6

    def test_leq_componentwise(self):
        lattice = Lattice.chain_product((2, 2))
        elements = {element: i for i, element in enumerate(lattice.elements)}
        assert lattice.leq(elements[(0, 0)], elements[(1, 1)])
        assert not lattice.leq(elements[(1, 0)], elements[(0, 1)])

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Lattice.chain_product(())
        with pytest.raises(ValueError):
            Lattice.chain_product((0, 2))


class TestCounting:
    def test_chain_to_chain(self, machine):
        # Monotone maps from an m-chain to an n-chain: C(n+m-1, m).
        source = Lattice.chain_product((3,))
        target = Lattice.chain_product((4,))
        # C(4+3-1, 3) = C(6,3) = 20.
        assert count_monotone_maps(machine, source, target) == 20

    def test_singleton_source(self, machine):
        source = Lattice.chain_product((1,))
        target = Lattice.chain_product((5,))
        assert count_monotone_maps(machine, source, target) == 5

    @pytest.mark.parametrize(
        "source_dims,target_dims",
        [((2,), (2, 2)), ((2, 2), (3,)), ((2, 2), (2, 2)), ((3, 2), (2, 2))],
    )
    def test_matches_brute_force(self, machine, source_dims, target_dims):
        source = Lattice.chain_product(source_dims)
        target = Lattice.chain_product(target_dims)
        expected = brute_force_count(source, target)
        assert count_monotone_maps(machine, source, target) == expected

    def test_allocation_is_transient(self, machine):
        source = Lattice.chain_product((2, 2))
        target = Lattice.chain_product((2, 2))
        count_monotone_maps(machine, source, target)
        allocated = machine.stats.words_allocated
        machine.collect()
        # "allocates almost no long-lived storage": everything the
        # enumeration built is garbage once it returns.
        assert allocated > 100
        assert machine.live_words() == 0


class TestRunner:
    def test_default_run(self, machine):
        result = run_lattice(machine, (2, 2), (3,))
        assert result.source_size == 4
        assert result.target_size == 3
        assert result.map_count == brute_force_count(
            Lattice.chain_product((2, 2)), Lattice.chain_product((3,))
        )
        assert result.words_allocated > 0

    def test_known_default_count(self):
        # The shipped default configuration's answer is pinned so a
        # regression in the enumerator is caught immediately.
        machine = Machine(TracingCollector)
        result = run_lattice(machine)
        assert result.map_count == 28_224
