"""Tests for the Section 5 analysis."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analysis

GS = st.floats(min_value=0.01, max_value=0.5)
LOADS = st.floats(min_value=1.1, max_value=20.0)


class TestLiveFraction:
    def test_matches_paper_formula(self):
        # l(f,g) = 1 - 2^{-Lf/ln2} (1 - L(g-f)); 2^{-Lf/ln2} = e^{-Lf}.
        for f, g, load in [(0.1, 0.2, 3.5), (0.25, 0.25, 2.0), (0.0, 0.3, 5.0)]:
            expected = 1.0 - 2.0 ** (
                -load * f / math.log(2)
            ) * (1.0 - load * (g - f))
            assert analysis.live_fraction(f, g, load) == pytest.approx(expected)

    def test_f_zero_gives_Lg(self):
        # With no free space, the protected steps hold Ng words, all
        # assumed live: l(0, g) = Lg of the live storage.
        assert analysis.live_fraction(0.0, 0.3, 3.0) == pytest.approx(0.9)

    def test_f_equals_g_form(self):
        # l(g,g) = 1 - e^{-Lg}.
        g, load = 0.25, 3.5
        assert analysis.live_fraction(g, g, load) == pytest.approx(
            1.0 - math.exp(-load * g)
        )

    @given(g=GS, load=LOADS)
    def test_bounded_between_zero_and_min(self, g, load):
        value = analysis.live_fraction(g, g, load)
        assert 0.0 <= value <= 1.0

    @given(g=GS, load=LOADS, split=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_decreasing_in_f(self, g, load, split):
        # More free space in the protected steps means fewer live
        # objects expected there: dl/df <= 0.
        f1 = split * g
        f2 = g
        assert analysis.live_fraction(f1, g, load) >= analysis.live_fraction(
            f2, g, load
        ) - 1e-12

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            analysis.live_fraction(0.1, 0.6, 2.0)  # g > 1/2
        with pytest.raises(ValueError):
            analysis.live_fraction(0.3, 0.2, 2.0)  # f > g
        with pytest.raises(ValueError):
            analysis.live_fraction(0.1, 0.2, 1.0)  # L <= 1


class TestTheorem3:
    """live_h(f,g)/n converges to l(f,g) as h grows."""

    @given(
        g=st.floats(min_value=0.05, max_value=0.5),
        load=st.floats(min_value=1.5, max_value=8.0),
        split=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_convergence(self, g, load, split):
        f = split * g
        limit = analysis.live_fraction(f, g, load)
        h = 100_000.0
        r = 2.0 ** (-1.0 / h)
        n = 1.0 / (1.0 - r)
        ratio = analysis.expected_live(f, g, load, h) / n
        assert ratio == pytest.approx(limit, abs=5e-4)

    def test_convergence_improves_with_h(self):
        f, g, load = 0.2, 0.25, 3.5
        limit = analysis.live_fraction(f, g, load)

        def error(h: float) -> float:
            r = 2.0 ** (-1.0 / h)
            n = 1.0 / (1.0 - r)
            return abs(analysis.expected_live(f, g, load, h) / n - limit)

        assert error(100_000.0) < error(1_000.0) < error(100.0)

    def test_rejects_non_positive_half_life(self):
        with pytest.raises(ValueError):
            analysis.expected_live(0.1, 0.2, 2.0, 0.0)


class TestTheorem4:
    def test_stable_condition_matches_formula(self):
        # L(1-2g) >= 1 - l(g,g) = e^{-Lg}
        for g, load in [(0.1, 2.0), (0.25, 3.5), (0.45, 1.5), (0.49, 10.0)]:
            expected = load * (1 - 2 * g) >= math.exp(-load * g)
            assert analysis.stable_equilibrium_holds(g, load) == expected

    def test_mark_cons_closed_form(self):
        g, load = 0.25, 3.5
        assert analysis.stable_equilibrium_holds(g, load)
        dead = math.exp(-load * g)
        expected = dead / (load * (1 - g) - dead)
        estimate = analysis.mark_cons_ratio(g, load)
        assert estimate.exact
        assert estimate.value == pytest.approx(expected)
        assert estimate.free_fraction == g

    def test_g_zero_degenerates_to_nongenerational(self):
        for load in (1.5, 2.0, 3.5, 8.0):
            estimate = analysis.mark_cons_ratio(0.0, load)
            assert estimate.value == pytest.approx(
                analysis.nongenerational_mark_cons(load)
            )

    @given(g=GS, load=st.floats(min_value=1.2, max_value=20.0))
    @settings(max_examples=200)
    def test_mark_cons_positive(self, g, load):
        assert analysis.mark_cons_ratio(g, load).value > 0.0

    @given(g=GS, load=st.floats(min_value=1.2, max_value=20.0))
    @settings(max_examples=200)
    def test_generational_never_worse_when_exact(self, g, load):
        # Wherever Theorem 4 applies, the non-predictive collector is
        # at least as good as the non-generational baseline — the
        # paper's main theoretical result.
        estimate = analysis.mark_cons_ratio(g, load)
        if estimate.exact:
            assert estimate.value <= analysis.nongenerational_mark_cons(
                load
            ) * (1.0 + 1e-12)


class TestFixedPoint:
    def test_returns_g_in_stable_regime(self):
        assert analysis.fixed_point_f(0.25, 3.5) == pytest.approx(0.25)

    def test_fixed_point_satisfies_equation_4(self):
        g, load = 0.45, 1.5  # outside the stable regime
        assert not analysis.stable_equilibrium_holds(g, load)
        f = analysis.fixed_point_f(g, load)
        update = 1 - g + (analysis.live_fraction(f, g, load) - 1) / load
        clamped = max(0.0, min(update, g))
        assert f == pytest.approx(clamped, abs=1e-9)
        assert 0.0 < f < g

    def test_g_zero(self):
        assert analysis.fixed_point_f(0.0, 2.0) == 0.0

    @given(g=GS, load=LOADS)
    @settings(max_examples=200)
    def test_fixed_point_in_range(self, g, load):
        f = analysis.fixed_point_f(g, load)
        assert 0.0 <= f <= g


class TestCorollary5:
    def test_relative_overhead_is_ratio(self):
        g, load = 0.25, 3.5
        mark_cons = analysis.mark_cons_ratio(g, load).value
        relative = analysis.relative_overhead(g, load).value
        assert relative == pytest.approx(
            mark_cons / analysis.nongenerational_mark_cons(load)
        )

    def test_matches_paper_closed_form(self):
        # (L-1)(1 - l) / (L(1-g) - (1 - l))
        g, load = 0.2, 5.0
        dead = 1.0 - analysis.live_fraction(g, g, load)
        expected = (load - 1) * dead / (load * (1 - g) - dead)
        assert analysis.relative_overhead(g, load).value == pytest.approx(
            expected
        )

    def test_below_one_for_reasonable_parameters(self):
        # The paper's headline: values below 1 exist.
        for load in (1.5, 2.0, 3.5, 5.0, 8.0):
            best = analysis.optimal_generation_fraction(load)
            assert best.relative_overhead < 1.0


class TestOverheadCurve:
    def test_curve_length_and_ordering(self):
        points = analysis.overhead_curve(3.5, samples=25)
        assert len(points) == 25
        gs = [point.g for point in points]
        assert gs == sorted(gs)
        assert 0 < gs[0] and gs[-1] == pytest.approx(0.5)

    def test_explicit_points(self):
        points = analysis.overhead_curve(2.0, gs=[0.1, 0.2])
        assert [point.g for point in points] == [0.1, 0.2]

    def test_exact_flag_transitions_at_most_once(self):
        # The stable regime is a prefix in g: exact then lower-bound.
        for load in (1.2, 1.5, 2.0, 3.5, 8.0):
            flags = [
                point.exact
                for point in analysis.overhead_curve(load, samples=200)
            ]
            transitions = sum(
                1 for a, b in zip(flags, flags[1:]) if a != b
            )
            assert transitions <= 1
            if transitions == 1:
                assert flags[0] and not flags[-1]

    def test_optimal_g_beats_neighbors(self):
        best = analysis.optimal_generation_fraction(3.5)
        for delta in (-0.02, 0.02):
            g = min(0.5, max(1e-6, best.g + delta))
            assert (
                analysis.relative_overhead(g, 3.5).value
                >= best.relative_overhead - 1e-9
            )


class TestNongenerational:
    def test_formula(self):
        assert analysis.nongenerational_mark_cons(3.5) == pytest.approx(0.4)
        assert analysis.nongenerational_mark_cons(2.0) == pytest.approx(1.0)

    def test_rejects_load_at_most_one(self):
        with pytest.raises(ValueError):
            analysis.nongenerational_mark_cons(1.0)
