"""Tests for the tuning policies (paper Section 8.1/8.3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    AdaptiveRemsetPolicy,
    FixedFractionPolicy,
    FixedJPolicy,
    HalfEmptyPolicy,
    StepSnapshot,
    leading_empty_steps,
)


def snapshot(used, *, remset=0, projected=0) -> StepSnapshot:
    return StepSnapshot(
        step_used=list(used),
        step_capacity=[1024] * len(used),
        remset_size=remset,
        projected_remset_growth=projected,
    )


class TestLeadingEmpty:
    def test_all_empty(self):
        assert leading_empty_steps(snapshot([0, 0, 0, 0])) == 4

    def test_none_empty(self):
        assert leading_empty_steps(snapshot([5, 0, 0])) == 0

    def test_prefix(self):
        assert leading_empty_steps(snapshot([0, 0, 7, 0])) == 2


class TestFixedJ:
    def test_clamped_by_empty_prefix(self):
        policy = FixedJPolicy(3)
        assert policy.choose_j(snapshot([0, 0, 5, 0, 0, 0, 0, 0])) == 2

    def test_clamped_by_half_k(self):
        policy = FixedJPolicy(10)
        assert policy.choose_j(snapshot([0] * 8)) == 4

    def test_requested_value_when_legal(self):
        assert FixedJPolicy(2).choose_j(snapshot([0, 0, 0, 9, 9, 9])) == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedJPolicy(-1)


class TestFixedFraction:
    def test_rounds_fraction_of_k(self):
        policy = FixedFractionPolicy(0.25)
        assert policy.choose_j(snapshot([0] * 8)) == 2

    def test_clamps_to_empty_prefix(self):
        policy = FixedFractionPolicy(0.5)
        assert policy.choose_j(snapshot([0, 4, 0, 0, 0, 0, 0, 0])) == 1

    def test_rejects_fraction_above_half(self):
        with pytest.raises(ValueError):
            FixedFractionPolicy(0.6)


class TestHalfEmpty:
    def test_paper_rule(self):
        # j = floor(l/2) with l = 6 empty steps -> j = 3.
        policy = HalfEmptyPolicy()
        assert policy.choose_j(snapshot([0, 0, 0, 0, 0, 0, 9, 9])) == 3

    def test_never_exceeds_half_k(self):
        policy = HalfEmptyPolicy()
        assert policy.choose_j(snapshot([0] * 6)) == 3
        assert policy.choose_j(snapshot([0] * 5)) == 2

    @given(
        used=st.lists(
            st.integers(min_value=0, max_value=1024), min_size=2, max_size=20
        )
    )
    def test_invariants(self, used):
        snap = snapshot(used)
        j = HalfEmptyPolicy().choose_j(snap)
        assert 0 <= j <= len(used) // 2
        assert all(value == 0 for value in list(used)[:j])


class TestAdaptiveRemset:
    def test_no_pressure_defers_to_base(self):
        policy = AdaptiveRemsetPolicy(max_remset=1000)
        snap = snapshot([0, 0, 0, 0, 9, 9, 9, 9])
        assert policy.choose_j(snap) == HalfEmptyPolicy().choose_j(snap)

    def test_pressure_reduces_j(self):
        policy = AdaptiveRemsetPolicy(max_remset=100)
        relaxed = snapshot([0, 0, 0, 0, 9, 9, 9, 9], remset=0, projected=0)
        stressed = snapshot(
            [0, 0, 0, 0, 9, 9, 9, 9], remset=150, projected=150
        )
        assert policy.choose_j(stressed) < policy.choose_j(relaxed)

    def test_extreme_pressure_gives_zero(self):
        policy = AdaptiveRemsetPolicy(max_remset=0)
        snap = snapshot([0, 0, 0, 0, 9, 9, 9, 9], remset=10, projected=10)
        assert policy.choose_j(snap) == 0

    def test_custom_base_policy(self):
        policy = AdaptiveRemsetPolicy(max_remset=10_000, base=FixedJPolicy(1))
        assert policy.choose_j(snapshot([0, 0, 0, 0, 9, 9, 9, 9])) == 1

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            AdaptiveRemsetPolicy(max_remset=-1)
