"""Tests for the radioactive decay model (paper Section 2)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    LN2,
    RadioactiveDecayModel,
    equilibrium_live_storage,
    half_life_for_live_storage,
)

HALF_LIVES = st.floats(min_value=1.0, max_value=1e6)
TIMES = st.floats(min_value=0.0, max_value=1e6)


class TestDistribution:
    def test_survival_at_zero_is_one(self):
        model = RadioactiveDecayModel(100.0)
        assert model.survival_probability(0.0) == 1.0

    def test_survival_at_half_life_is_half(self):
        model = RadioactiveDecayModel(100.0)
        assert model.survival_probability(100.0) == pytest.approx(0.5)

    def test_survival_at_two_half_lives_is_quarter(self):
        model = RadioactiveDecayModel(64.0)
        assert model.survival_probability(128.0) == pytest.approx(0.25)

    def test_death_probability_complements_survival(self):
        model = RadioactiveDecayModel(50.0)
        for t in (0.0, 10.0, 50.0, 500.0):
            assert model.death_probability(t) == pytest.approx(
                1.0 - model.survival_probability(t)
            )

    def test_pdf_matches_paper_formula(self):
        model = RadioactiveDecayModel(1024.0)
        for t in (0.0, 100.0, 1024.0):
            expected = (LN2 / 1024.0) * 2.0 ** (-t / 1024.0)
            assert model.pdf(t) == pytest.approx(expected)

    def test_pdf_is_zero_for_negative_times(self):
        assert RadioactiveDecayModel(10.0).pdf(-1.0) == 0.0

    def test_pdf_integrates_to_one(self):
        model = RadioactiveDecayModel(32.0)
        step = 0.01
        total = sum(
            model.pdf(i * step) * step for i in range(int(2000 / step))
        )
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RadioactiveDecayModel(10.0).survival_probability(-1.0)

    def test_invalid_half_life_rejected(self):
        with pytest.raises(ValueError):
            RadioactiveDecayModel(0.0)
        with pytest.raises(ValueError):
            RadioactiveDecayModel(-5.0)


class TestMemorylessness:
    """Assumption 1's consequence: age tells nothing about the future."""

    @given(
        h=HALF_LIVES,
        age_half_lives=st.floats(min_value=0.0, max_value=200.0),
        t_half_lives=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=200)
    def test_conditional_survival_is_age_independent(
        self, h, age_half_lives, t_half_lives
    ):
        # Ages are bounded in half-lives: past ~1000 half-lives the
        # survival probability underflows doubles entirely.
        model = RadioactiveDecayModel(h)
        age = age_half_lives * h
        t = t_half_lives * h
        conditional = model.conditional_survival(age, t)
        unconditional = model.survival_probability(t)
        assert conditional == pytest.approx(unconditional, rel=1e-6, abs=1e-12)

    def test_conditional_survival_rejects_negative_age(self):
        with pytest.raises(ValueError):
            RadioactiveDecayModel(10.0).conditional_survival(-1.0, 5.0)


class TestEquilibrium:
    def test_equation_1_approximation(self):
        # n ≈ h / ln 2 ≈ 1.4427 h (paper Equation 1).
        assert equilibrium_live_storage(1000.0) == pytest.approx(
            1442.695, rel=1e-4
        )

    def test_exact_form_close_to_approximation_for_large_h(self):
        approx = equilibrium_live_storage(10_000.0)
        exact = equilibrium_live_storage(10_000.0, exact=True)
        assert exact == pytest.approx(approx, rel=1e-4)

    def test_exact_form_diverges_for_small_h(self):
        # L'Hospital's approximation is only good for large h.
        approx = equilibrium_live_storage(1.0)
        exact = equilibrium_live_storage(1.0, exact=True)
        assert abs(exact - approx) / exact > 0.2

    @given(h=st.floats(min_value=10.0, max_value=1e6))
    def test_half_life_roundtrip(self, h):
        n = equilibrium_live_storage(h)
        assert half_life_for_live_storage(n) == pytest.approx(h, rel=1e-9)

    def test_model_method_agrees_with_function(self):
        model = RadioactiveDecayModel(123.0)
        assert model.equilibrium_live_storage() == equilibrium_live_storage(
            123.0
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            equilibrium_live_storage(-1.0)
        with pytest.raises(ValueError):
            half_life_for_live_storage(0.0)


class TestDerivedQuantities:
    def test_expected_lifetime_equals_equilibrium(self):
        model = RadioactiveDecayModel(777.0)
        assert model.expected_lifetime() == pytest.approx(
            model.equilibrium_live_storage()
        )

    def test_median_is_half_life(self):
        assert RadioactiveDecayModel(99.0).median_lifetime() == 99.0

    def test_expected_live_after_half_life(self):
        model = RadioactiveDecayModel(10.0)
        assert model.expected_live_after(1000.0, 10.0) == pytest.approx(500.0)

    def test_time_to_decay_to(self):
        model = RadioactiveDecayModel(100.0)
        assert model.time_to_decay_to(0.5) == pytest.approx(100.0)
        assert model.time_to_decay_to(0.25) == pytest.approx(200.0)
        assert model.time_to_decay_to(1.0) == pytest.approx(0.0)

    def test_time_to_decay_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RadioactiveDecayModel(1.0).time_to_decay_to(0.0)
        with pytest.raises(ValueError):
            RadioactiveDecayModel(1.0).time_to_decay_to(1.5)

    def test_survival_ratio_approximation(self):
        # r ≈ 1 - ln2/h for large h (the paper's L'Hospital step).
        model = RadioactiveDecayModel(10_000.0)
        assert model.survival_ratio == pytest.approx(
            1.0 - LN2 / 10_000.0, abs=1e-8
        )


class TestSampling:
    def test_continuous_sample_mean(self):
        model = RadioactiveDecayModel(100.0)
        rng = random.Random(1)
        samples = [model.sample_lifetime(rng) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.expected_lifetime(), rel=0.03)

    def test_discrete_sample_median_near_half_life(self):
        model = RadioactiveDecayModel(64.0)
        rng = random.Random(2)
        samples = sorted(
            model.sample_discrete_lifetime(rng) for _ in range(20_000)
        )
        median = samples[len(samples) // 2]
        assert abs(median - 64) <= 4

    def test_discrete_samples_are_positive_integers(self):
        model = RadioactiveDecayModel(3.0)
        rng = random.Random(3)
        for _ in range(1000):
            sample = model.sample_discrete_lifetime(rng)
            assert isinstance(sample, int)
            assert sample >= 1

    def test_discrete_sample_memoryless_in_aggregate(self):
        """Cohort halving: of N samples, ~half exceed h, ~quarter 2h."""
        model = RadioactiveDecayModel(128.0)
        rng = random.Random(4)
        samples = [model.sample_discrete_lifetime(rng) for _ in range(40_000)]
        over_h = sum(1 for s in samples if s > 128) / len(samples)
        over_2h = sum(1 for s in samples if s > 256) / len(samples)
        assert over_h == pytest.approx(0.5, abs=0.02)
        assert over_2h == pytest.approx(0.25, abs=0.02)
