"""Tests for live-storage profiles (the Figures 2-4 machinery)."""

from __future__ import annotations

import pytest

from repro.trace.events import LifetimeTrace, ObjectRecord
from repro.trace.profile import storage_profile


def trace_of(records, end_clock) -> LifetimeTrace:
    return LifetimeTrace(records=records, start_clock=0, end_clock=end_clock)


class TestStorageProfile:
    def test_totals_match_live_words(self):
        records = [
            ObjectRecord(0, 10, birth=0, death=250),
            ObjectRecord(1, 20, birth=120, death=380),
            ObjectRecord(2, 5, birth=210),
        ]
        trace = trace_of(records, 400)
        profile = storage_profile(trace, epoch_words=100)
        for clock, total in zip(profile.sample_clocks, profile.totals()):
            assert total == trace.live_words_at(clock)

    def test_bands_attribute_by_birth_epoch(self):
        records = [
            ObjectRecord(0, 10, birth=0),
            ObjectRecord(1, 20, birth=150),
        ]
        profile = storage_profile(trace_of(records, 300), epoch_words=100)
        # At the 200-word sample: object 0 in epoch 0, object 1 in
        # epoch 1.
        index = profile.sample_clocks.index(200)
        assert profile.bands[index][0] == 10
        assert profile.bands[index][1] == 20

    def test_old_band_threshold(self):
        records = [ObjectRecord(0, 10, birth=0)]
        profile = storage_profile(
            trace_of(records, 1_000), epoch_words=50, old_threshold=200
        )
        for clock, band, old in zip(
            profile.sample_clocks, profile.bands, profile.old_band
        ):
            if clock - 0 > 200:
                assert old == 10 and sum(band) == 0
            else:
                assert old == 0 and sum(band) == 10

    def test_default_threshold_is_ten_epochs(self):
        records = [ObjectRecord(0, 1, birth=0)]
        profile = storage_profile(trace_of(records, 100), epoch_words=10)
        assert profile.old_threshold == 100

    def test_peak(self):
        records = [
            ObjectRecord(0, 10, birth=0, death=150),
            ObjectRecord(1, 30, birth=90, death=160),
        ]
        profile = storage_profile(trace_of(records, 300), epoch_words=50)
        assert profile.peak_live_words == 40

    def test_dead_objects_leave_the_bands(self):
        records = [ObjectRecord(0, 10, birth=0, death=150)]
        profile = storage_profile(trace_of(records, 300), epoch_words=50)
        index = profile.sample_clocks.index(200)
        assert profile.totals()[index] == 0

    def test_text_rendering(self):
        records = [ObjectRecord(0, 10, birth=0)]
        profile = storage_profile(trace_of(records, 200), epoch_words=50)
        text = profile.to_text()
        assert "peak" in text
        assert "|" in text

    def test_empty_profile_renders(self):
        profile = storage_profile(trace_of([], 100), epoch_words=50)
        assert profile.to_text() == "(no live storage)"

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_profile(trace_of([], 100), epoch_words=0)
        with pytest.raises(ValueError):
            storage_profile(trace_of([], 100), epoch_words=10, sample_every=0)
