"""Tests for text rendering utilities."""

from __future__ import annotations

import pytest

from repro.trace.render import TextTable, render_series


class TestTextTable:
    def test_renders_aligned_columns(self):
        table = TextTable(["name", "value"])
        table.add_row("alpha", 1_000)
        table.add_row("b", 2)
        text = table.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1,000" in text
        assert len({len(line) for line in lines[:2]}) == 1  # header rule

    def test_float_formatting(self):
        table = TextTable(["x"])
        table.add_row(0.123456)
        assert "0.123" in table.to_text()

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_bools_not_comma_grouped(self):
        table = TextTable(["flag"])
        table.add_row(True)
        assert "True" in table.to_text()


class TestRenderSeries:
    def test_plots_points(self):
        points = [(x / 10, x * x / 100.0) for x in range(1, 11)]
        text = render_series(points, x_label="g", y_label="overhead")
        assert "*" in text
        assert "g:" in text
        assert "overhead" in text

    def test_empty_series(self):
        assert render_series([]) == "(empty series)"

    def test_constant_series_does_not_crash(self):
        text = render_series([(0.0, 1.0), (1.0, 1.0)])
        assert "*" in text
