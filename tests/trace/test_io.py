"""Tests for trace persistence."""

from __future__ import annotations

import pytest

from repro.trace.events import LifetimeTrace, ObjectRecord
from repro.trace.io import TraceFormatError, load_trace, save_trace
from repro.trace.profile import storage_profile
from repro.trace.survival import survival_table


def sample_trace() -> LifetimeTrace:
    return LifetimeTrace(
        records=[
            ObjectRecord(0, 2, birth=0, death=150, kind="pair"),
            ObjectRecord(1, 4, birth=30, kind="flonum"),
            ObjectRecord(2, 5, birth=70, death=400, kind="vector"),
        ],
        start_clock=0,
        end_clock=500,
    )


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert loaded.start_clock == original.start_clock
        assert loaded.end_clock == original.end_clock
        assert loaded.records == original.records

    def test_analyses_identical_after_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        original = sample_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert survival_table(loaded, 100).rates() == survival_table(
            original, 100
        ).rates()
        assert (
            storage_profile(loaded, 100).totals()
            == storage_profile(original, 100).totals()
        )

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(LifetimeTrace(start_clock=5, end_clock=5), path)
        loaded = load_trace(path)
        assert loaded.records == []
        assert loaded.start_clock == 5


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "version"
        path.write_text(
            '{"format": "repro-lifetime-trace", "version": 99, '
            '"start_clock": 0, "end_clock": 0, "records": 0}\n'
        )
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "corrupt"
        save_trace(sample_trace(), path)
        with open(path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_record_count_mismatch(self, tmp_path):
        path = tmp_path / "mismatch"
        save_trace(sample_trace(), path)
        text = path.read_text().splitlines()
        path.write_text("\n".join(text[:-1]) + "\n")  # drop one record
        with pytest.raises(TraceFormatError):
            load_trace(path)
