"""Tests for the lifetime recorder."""

from __future__ import annotations

import pytest

from repro.gc.marksweep import MarkSweepCollector
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum
from repro.trace.collector import TracingCollector
from repro.trace.recorder import LifetimeRecorder, record_run


class TestRecorder:
    def test_records_every_allocation(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=100)
        for index in range(5):
            machine.cons(Fixnum(index), None)
        trace = recorder.finish()
        assert trace.object_count == 5
        assert trace.words_allocated == 10

    def test_death_quantized_to_epoch(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=100)
        machine.cons(Fixnum(0), None)  # dropped immediately
        keeper = []
        while machine.clock < 250:
            keeper.append(machine.cons(Fixnum(1), None))
        trace = recorder.finish()
        doomed = trace.records[0]
        assert doomed.death is not None
        # Death observed at the first sample at/after the 100-word
        # epoch boundary.
        assert 100 <= doomed.death <= 110

    def test_survivors_have_no_death(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=50)
        keeper = machine.cons(Fixnum(1), None)
        for _ in range(100):
            machine.cons(Fixnum(0), None)
        trace = recorder.finish()
        assert trace.records[0].death is None
        assert trace.records[0].obj_id == keeper.obj_id

    def test_dead_objects_reclaimed_from_heap(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=50)
        for _ in range(100):
            machine.cons(Fixnum(0), None)
        recorder.sample()
        # Memory is bounded: the dead were freed by the sampler.
        assert machine.heap.object_count <= 60

    def test_finish_idempotent(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=50)
        machine.cons(Fixnum(0), None)
        trace1 = recorder.finish()
        trace2 = recorder.finish()
        assert trace1 is trace2

    def test_allocations_after_finish_ignored(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=50)
        trace = recorder.finish()
        machine.cons(Fixnum(0), None)
        assert trace.object_count == 0

    def test_requires_tracing_collector(self):
        machine = Machine(
            lambda heap, roots: MarkSweepCollector(heap, roots, 1_000)
        )
        with pytest.raises(TypeError):
            LifetimeRecorder(machine, epoch_words=10)

    def test_rejects_bad_epoch(self):
        machine = Machine(TracingCollector)
        with pytest.raises(ValueError):
            LifetimeRecorder(machine, epoch_words=0)

    def test_record_run_helper(self):
        def program(machine: Machine) -> None:
            keep = machine.cons(Fixnum(1), None)
            for _ in range(20):
                machine.cons(Fixnum(0), None)

        trace = record_run(program, epoch_words=10)
        assert trace.object_count == 21
        # Everything died by the end (the keeper's handle was dropped
        # when the program returned... but finish() samples before the
        # local goes away, so at least the churn is dead).
        dead = sum(1 for record in trace.records if record.death is not None)
        assert dead >= 19

    def test_live_object_count_tracks_population(self):
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch_words=10)
        keepers = [machine.cons(Fixnum(index), None) for index in range(3)]
        for _ in range(50):
            machine.cons(Fixnum(0), None)
        recorder.sample()
        assert recorder.live_object_count <= 3 + 10
