"""Tests for the measurement-substrate tracing collector."""

from __future__ import annotations

from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.trace.collector import TracingCollector


def setup():
    heap = SimulatedHeap()
    roots = RootSet()
    return heap, roots, TracingCollector(heap, roots)


class TestTracingCollector:
    def test_unbounded_allocation(self):
        heap, _, collector = setup()
        for _ in range(1_000):
            collector.allocate(100)
        assert heap.live_words == 100_000
        assert collector.stats.words_allocated == 100_000

    def test_never_collects_spontaneously(self):
        heap, _, collector = setup()
        for _ in range(100):
            collector.allocate(10)  # all garbage; still resident
        assert heap.object_count == 100

    def test_explicit_collect_reclaims_unreachable(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(10)
        frame.push(kept)
        collector.allocate(10)
        collector.collect()
        assert heap.object_count == 1
        assert heap.contains_id(kept.obj_id)

    def test_collect_charges_no_work(self):
        heap, roots, collector = setup()
        collector.allocate(10)
        collector.collect()
        assert collector.stats.words_traced == 0
        assert collector.stats.collections == 0
