"""Tests for lifetime trace records."""

from __future__ import annotations

from repro.trace.events import LifetimeTrace, ObjectRecord


class TestObjectRecord:
    def test_alive_interval(self):
        record = ObjectRecord(obj_id=1, size=4, birth=100, death=200)
        assert not record.alive_at(99)
        assert record.alive_at(100)
        assert record.alive_at(199)
        assert not record.alive_at(200)

    def test_immortal_object(self):
        record = ObjectRecord(obj_id=1, size=4, birth=100)
        assert record.alive_at(10**9)
        assert record.lifetime() is None

    def test_lifetime(self):
        record = ObjectRecord(obj_id=1, size=4, birth=100, death=350)
        assert record.lifetime() == 250


class TestLifetimeTrace:
    def _trace(self) -> LifetimeTrace:
        return LifetimeTrace(
            records=[
                ObjectRecord(0, 10, birth=0, death=50),
                ObjectRecord(1, 20, birth=10, death=100),
                ObjectRecord(2, 5, birth=60),  # immortal
            ],
            start_clock=0,
            end_clock=120,
        )

    def test_words_allocated(self):
        assert self._trace().words_allocated == 35

    def test_live_words_at(self):
        trace = self._trace()
        assert trace.live_words_at(0) == 10
        assert trace.live_words_at(20) == 30
        assert trace.live_words_at(70) == 25
        assert trace.live_words_at(110) == 5

    def test_peak(self):
        assert self._trace().peak_live_words(10) == 30

    def test_immortal_words(self):
        assert self._trace().immortal_words() == 5

    def test_iter_dead(self):
        dead = list(self._trace().iter_dead())
        assert [record.obj_id for record in dead] == [0, 1]

    def test_empty_trace(self):
        trace = LifetimeTrace()
        assert trace.words_allocated == 0
        assert trace.peak_live_words(10) == 0
