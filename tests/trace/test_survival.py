"""Tests for survival-rate tables (the Tables 4-7 machinery)."""

from __future__ import annotations

import pytest

from repro.trace.events import LifetimeTrace, ObjectRecord
from repro.trace.survival import survival_table


def trace_of(records, end_clock) -> LifetimeTrace:
    return LifetimeTrace(records=records, start_clock=0, end_clock=end_clock)


class TestSurvivalTable:
    def test_immortal_objects_survive_every_bracket(self):
        records = [ObjectRecord(0, 10, birth=0)]
        table = survival_table(
            trace_of(records, 1_000), age_step=100, bracket_count=3
        )
        for row in table.rows:
            if row.alive_words:
                assert row.rate == 1.0

    def test_objects_dying_at_fixed_age(self):
        # Objects living exactly 350 words, sampled at ages spread
        # across each bracket: bracket 1 (ages 100..199) always
        # survives the 100-word horizon, bracket 2 (200..299) survives
        # only below age 250, bracket 3 (300..399) never does.
        records = [
            ObjectRecord(i, 1, birth=i * 10, death=i * 10 + 350)
            for i in range(100)
        ]
        table = survival_table(
            trace_of(records, 2_500), age_step=100, bracket_count=3
        )
        bracket1, bracket2, bracket3 = table.rows[:3]
        assert bracket1.rate == 1.0
        assert bracket2.rate == pytest.approx(0.5, abs=0.1)
        assert bracket3.rate == 0.0

    def test_rates_match_hand_computation(self):
        # One object: birth 0, death 250.  Samples at 100, 200 (age
        # 100, 200).  At age 100 it survives to 200 (< 250): yes.  At
        # age 200 it must survive to 300 (> 250): no.
        records = [ObjectRecord(0, 4, birth=0, death=250)]
        table = survival_table(
            trace_of(records, 400), age_step=100, bracket_count=3
        )
        assert table.rows[0].alive_words == 4
        assert table.rows[0].surviving_words == 4
        assert table.rows[1].alive_words == 4
        assert table.rows[1].surviving_words == 0

    def test_censoring_excludes_unknowable_samples(self):
        # The trace ends at 150: with horizon 100, only the sample at
        # t=0..50 can be judged — ages beyond that are censored.
        records = [ObjectRecord(0, 1, birth=0)]
        table = survival_table(
            trace_of(records, 150), age_step=100, bracket_count=2
        )
        assert all(row.alive_words == 0 for row in table.rows)

    def test_open_bracket_accumulates_old_ages(self):
        records = [ObjectRecord(0, 1, birth=0)]
        table = survival_table(
            trace_of(records, 10_000), age_step=100, bracket_count=2
        )
        open_row = table.rows[-1]
        assert open_row.hi_age is None
        assert open_row.alive_words > 50

    def test_bracket_labels(self):
        records = [ObjectRecord(0, 1, birth=0)]
        table = survival_table(
            trace_of(records, 1_000), age_step=100, bracket_count=2
        )
        assert table.rows[0].label() == "100 to 200 words old"
        assert table.rows[-1].label() == "More than 300 words old"

    def test_empty_bracket_has_none_rate(self):
        records = [ObjectRecord(0, 1, birth=0, death=50)]
        table = survival_table(
            trace_of(records, 1_000), age_step=100, bracket_count=2
        )
        assert all(row.rate is None for row in table.rows)

    def test_to_text_renders_percentages(self):
        records = [ObjectRecord(0, 1, birth=0)]
        table = survival_table(
            trace_of(records, 1_000), age_step=100, bracket_count=2
        )
        text = table.to_text()
        assert "100%" in text
        assert "More than" in text

    def test_validation(self):
        records = [ObjectRecord(0, 1, birth=0)]
        with pytest.raises(ValueError):
            survival_table(trace_of(records, 100), age_step=0)
        with pytest.raises(ValueError):
            survival_table(
                trace_of(records, 100), age_step=10, bracket_count=0
            )
        with pytest.raises(ValueError):
            # Horizon longer than the whole trace.
            survival_table(
                trace_of(records, 100), age_step=10, horizon=500
            )

    def test_memoryless_input_gives_flat_rates(self):
        # Deterministic halving cohorts (the decay model's idealized
        # form) produce the same survival rate in every bracket.
        import random

        rng = random.Random(0)
        records = []
        clock = 0
        for index in range(30_000):
            lifetime = 1
            while rng.random() < 0.5 and lifetime < 4_000:
                lifetime += 250  # halving per 250 words
            records.append(
                ObjectRecord(index, 1, birth=clock, death=clock + lifetime)
            )
            clock += 1
        table = survival_table(
            trace_of(records, clock), age_step=250, bracket_count=4
        )
        rates = [row.rate for row in table.rows[:-1] if row.alive_words > 500]
        assert rates, "expected populated brackets"
        for rate in rates:
            assert rate == pytest.approx(0.5, abs=0.08)
