"""Tests for the semispace stop-and-copy collector."""

from __future__ import annotations

import pytest

from repro.gc.collector import HeapExhausted
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def setup(semispace_words=50, **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = StopAndCopyCollector(heap, roots, semispace_words, **kwargs)
    return heap, roots, collector


class TestGeometry:
    def test_two_semispaces(self):
        heap, _, collector = setup()
        assert collector.tospace is not collector.fromspace
        assert collector.fromspace.is_empty()

    def test_flip_swaps_roles(self):
        heap, roots, collector = setup()
        old_to = collector.tospace
        collector.collect()
        assert collector.fromspace is old_to


class TestCollection:
    def test_survivors_move_to_other_semispace(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.allocate(4)  # garbage
        target = collector.fromspace
        collector.collect()
        assert kept.space is target
        assert heap.object_count == 1

    def test_fromspace_empty_after_collection(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        for _ in range(5):
            frame.push(collector.allocate(2))
        collector.collect()
        assert collector.fromspace.is_empty()
        heap.check_integrity()

    def test_work_proportional_to_live_only(self):
        # Dead objects are abandoned, never touched — the property
        # that makes stop-and-copy cheap for young generations (§7).
        heap, roots, collector = setup(semispace_words=1000)
        frame = roots.push_frame()
        frame.push(collector.allocate(10))
        for _ in range(50):
            collector.allocate(10)  # garbage
        collector.collect()
        assert collector.stats.words_copied == 10
        assert collector.stats.words_reclaimed == 500

    def test_cheney_scan_reaches_nested_structure(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        a = collector.allocate(2, field_count=2)
        b = collector.allocate(2, field_count=1)
        c = collector.allocate(2)
        heap.write_field(a, 0, b)
        heap.write_field(a, 1, c)
        heap.write_field(b, 0, c)
        frame.push(a)
        collector.collect()
        assert heap.object_count == 3
        assert collector.stats.words_copied == 6

    def test_shared_object_copied_once(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        shared = collector.allocate(2)
        a = collector.allocate(2, field_count=1)
        b = collector.allocate(2, field_count=1)
        heap.write_field(a, 0, shared)
        heap.write_field(b, 0, shared)
        frame.push(a)
        frame.push(b)
        collector.collect()
        assert collector.stats.words_copied == 6  # not 8


class TestAllocationAndSizing:
    def test_collects_when_tospace_full(self):
        heap, roots, collector = setup(semispace_words=10)
        for _ in range(5):
            collector.allocate(2)
        collector.allocate(2)
        assert collector.stats.collections == 1

    def test_exhaustion_when_fixed(self):
        heap, roots, collector = setup(semispace_words=10, auto_expand=False)
        frame = roots.push_frame()
        for _ in range(5):
            frame.push(collector.allocate(2))
        with pytest.raises(HeapExhausted):
            collector.allocate(2)

    def test_auto_expand_grows_both_semispaces(self):
        heap, roots, collector = setup(semispace_words=10, load_factor=2.0)
        frame = roots.push_frame()
        for _ in range(20):
            frame.push(collector.allocate(2))
        assert collector.tospace.capacity == collector.fromspace.capacity
        assert collector.peak_semispace_words >= 40

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            setup(semispace_words=0)
        with pytest.raises(ValueError):
            setup(load_factor=0.5)
