"""Tests for the shared collector machinery."""

from __future__ import annotations

import pytest

from repro.gc.collector import Collector, HeapExhausted
from repro.gc.marksweep import MarkSweepCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet


class _NullCollector(Collector):
    """Minimal concrete collector for exercising the base class."""

    name = "null"

    def __init__(self, heap, roots):
        super().__init__(heap, roots)
        self.space = heap.add_space("null-space", None)
        self.other = heap.add_space("other-space", None)

    def _reserve(self, size):
        return self.space

    def collect(self):
        pass


@pytest.fixture
def setup():
    heap = SimulatedHeap()
    roots = RootSet()
    return heap, roots, _NullCollector(heap, roots)


class TestTraceRegion:
    def test_marks_only_within_region(self, setup):
        heap, roots, collector = setup
        inside = collector.allocate(2, field_count=1)
        outside = heap.allocate(2, 1, collector.other)
        heap.write_field(inside, 0, outside)
        heap.write_field(outside, 0, inside)
        marked = collector._trace_region(
            {collector.space}, [inside.obj_id, outside.obj_id]
        )
        assert marked == {inside.obj_id}

    def test_boundary_objects_not_scanned(self, setup):
        # A region object reachable ONLY through an out-of-region
        # object's fields must NOT be found: boundary objects terminate
        # the trace (their interesting slots must come via seeds).
        heap, roots, collector = setup
        hidden = collector.allocate(2)
        bridge = heap.allocate(2, 1, collector.other)
        heap.write_field(bridge, 0, hidden)
        marked = collector._trace_region({collector.space}, [bridge.obj_id])
        assert marked == set()

    def test_work_accounting_optional(self, setup):
        heap, roots, collector = setup
        obj = collector.allocate(5)
        collector._trace_region(
            {collector.space}, [obj.obj_id], count_work=False
        )
        assert collector.stats.words_marked == 0
        collector._trace_region({collector.space}, [obj.obj_id])
        assert collector.stats.words_marked == 5

    def test_root_ids_counts_tracing_cost(self, setup):
        heap, roots, collector = setup
        frame = roots.push_frame()
        frame.push(collector.allocate(1))
        frame.push(collector.allocate(1))
        ids = collector._root_ids()
        assert len(ids) == 2
        assert collector.stats.roots_traced == 2

    def test_default_hooks_are_noops(self, setup):
        heap, roots, collector = setup
        a = collector.allocate(2, field_count=1)
        b = collector.allocate(2)
        collector.remember_store(a, 0, b)  # must not raise
        collector.on_static_promotion()  # must not raise

    def test_describe(self, setup):
        _, _, collector = setup
        assert "null" in collector.describe()


class TestHeapExhausted:
    def test_message_names_collector_and_size(self):
        heap = SimulatedHeap()
        roots = RootSet()
        collector = MarkSweepCollector(
            heap, roots, 4, auto_expand=False
        )
        with pytest.raises(HeapExhausted) as excinfo:
            frame = roots.push_frame()
            frame.push(collector.allocate(4))
            collector.allocate(4)
        assert "mark-sweep" in str(excinfo.value)
        assert excinfo.value.requested == 4
