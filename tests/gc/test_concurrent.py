"""Tests for the concurrent (off-thread marking) collector.

Four layers:

* the handoff machinery — cycles open with a marker in flight, the
  handoff pause is priced at zero words, allocation stays black, and
  a clean run's reconcile scan does zero words of work (the
  shrinking-reachability argument, observed);
* equivalence — seeded mutation storms on BOTH heap backends must
  produce exactly the unbounded incremental collector's counters and
  survivor set, and the pool marker must be byte-identical to the
  inline one (process placement is not an observable);
* the resilient-marker ladder — a hung worker falls back to the
  inline task with the attempt salt bumped, and the salt perturbs
  only traversal order, never the result;
* lifecycle — errors travel back as data and raise at reconciliation,
  and close/collect/static-promotion all discard the pending marker.
"""

from __future__ import annotations

import random

import pytest

from repro.gc.concurrent import ConcurrentCollector, _mark_snapshot_task
from repro.gc.incremental import IncrementalCollector
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.barrier import WriteBarrier
from repro.heap.heap import HeapError
from repro.heap.roots import RootSet


def setup(heap_words=100, backend=None, **kwargs):
    heap = make_heap(backend)
    roots = RootSet()
    collector = ConcurrentCollector(heap, roots, heap_words, **kwargs)
    return heap, roots, collector


def link(heap, barrier, src, slot, dst):
    """One mutator pointer store, through the write barrier."""
    barrier.on_store(src, slot, dst)
    heap.write_slot(src, slot, dst.obj_id if dst is not None else None)


def storm(collector, heap, roots, *, seed=0, steps=120):
    """A deterministic allocate/store/drop/collect interleaving."""
    rng = random.Random(seed)
    barrier = WriteBarrier(collector.remember_store)
    frame = roots.push_frame()
    live = []
    for _ in range(steps):
        choice = rng.random()
        if choice < 0.55 or len(live) < 2:
            obj = collector.allocate(rng.randrange(2, 6), 2)
            live.append((frame.push(obj), obj))
        elif choice < 0.8:
            src = live[rng.randrange(len(live))][1]
            dst = live[rng.randrange(len(live))][1]
            link(heap, barrier, src, rng.randrange(2), dst)
        elif choice < 0.95 and len(live) > 2:
            index, _victim = live.pop(rng.randrange(len(live)))
            frame.set(index, None)
        else:
            collector.collect()
    collector.collect()
    collector.collect()


class TestHandoff:
    def test_cycle_opens_with_marker_inflight(self):
        _, roots, collector = setup(heap_words=100, trigger_fraction=0.5)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        assert collector.marker_inflight
        assert collector.pending_marked_ids()

    def test_handoff_pause_is_zero_work(self):
        _, roots, collector = setup(heap_words=100)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        handoffs = [
            p for p in collector.stats.pauses if p.kind == "handoff"
        ]
        assert handoffs and all(p.work == 0 for p in handoffs)

    def test_allocation_during_cycle_is_black(self):
        heap, roots, collector = setup(heap_words=200)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        newborn = collector.allocate(4)
        frame.push(newborn)
        assert heap.birth_of(newborn.obj_id) >= collector.epoch_clock
        # Born after the snapshot: invisible to the marker, survives
        # the cycle close unconditionally.
        assert newborn.obj_id not in collector.pending_marked_ids()
        collector.collect()
        assert heap.contains_id(newborn.obj_id)

    def test_clean_run_reconciles_with_zero_work(self):
        _, roots, collector = setup(heap_words=200)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        frame.push(collector.allocate(4))
        collector.collect()
        reconciles = [
            p for p in collector.stats.pauses if p.kind == "reconcile"
        ]
        assert reconciles and all(p.work == 0 for p in reconciles)

    def test_satb_deletion_still_reconciles_with_zero_work(self):
        # An overwritten pre-epoch referent is already in the marker's
        # snapshot-reachable set, so the SATB gray adds no scan work —
        # and the referent survives as floating garbage, exactly the
        # incremental collector's semantics.
        heap, roots, collector = setup(heap_words=400)
        barrier = WriteBarrier(collector.remember_store)
        frame = roots.push_frame()
        holder = collector.allocate(4, 1)
        victim = collector.allocate(4)
        frame.push(holder)
        link(heap, barrier, holder, 0, victim)
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        link(heap, barrier, holder, 0, None)  # deletion mid-cycle
        collector.collect()
        assert heap.contains_id(victim.obj_id)
        last = collector.stats.pauses[-1]
        assert last.kind == "reconcile" and last.work == 0


class TestEquivalence:
    @pytest.mark.parametrize("backend", HEAP_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 7, 29])
    def test_storm_matches_unbounded_incremental(self, backend, seed):
        heap_c = make_heap(backend)
        roots_c = RootSet()
        concurrent = ConcurrentCollector(heap_c, roots_c, 120)
        storm(concurrent, heap_c, roots_c, seed=seed)

        heap_i = make_heap(backend)
        roots_i = RootSet()
        incremental = IncrementalCollector(
            heap_i, roots_i, 120, slice_budget=None
        )
        storm(incremental, heap_i, roots_i, seed=seed)

        assert (
            concurrent.stats.snapshot() == incremental.stats.snapshot()
        )
        assert sorted(concurrent.space.object_ids()) == sorted(
            incremental.space.object_ids()
        )

    @pytest.mark.parametrize("backend", HEAP_BACKENDS)
    def test_pool_marker_matches_inline(self, backend):
        heap_p = make_heap(backend)
        roots_p = RootSet()
        pool = ConcurrentCollector(heap_p, roots_p, 120, marker_workers=1)
        try:
            storm(pool, heap_p, roots_p, seed=13)
        finally:
            pool.close()

        heap_i = make_heap(backend)
        roots_i = RootSet()
        inline = ConcurrentCollector(heap_i, roots_i, 120)
        storm(inline, heap_i, roots_i, seed=13)

        assert pool.stats.snapshot() == inline.stats.snapshot()
        assert pool.stats.pauses == inline.stats.pauses
        assert sorted(pool.space.object_ids()) == sorted(
            inline.space.object_ids()
        )


class _HungFuture:
    """A future whose worker never answers."""

    def done(self):
        return False

    def result(self, timeout=None):
        raise TimeoutError("induced hang")

    def cancel(self):
        return True


class TestResilientMarker:
    def test_hung_worker_falls_back_inline(self):
        _, roots, collector = setup(
            heap_words=200, marker_timeout=0.01, marker_retries=0
        )
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        expected = collector.pending_marked_ids()
        # Replay the drain as if the pool never answered: the ladder
        # must terminate at the inline fallback with the same result.
        collector._result = None
        collector._future = _HungFuture()
        marked, _words = collector._await_marker()
        assert frozenset(marked) == expected
        collector.collect()

    def test_attempt_salt_perturbs_order_not_result(self):
        from repro.perf.parallel import derive_seed

        heap, roots, collector = setup(heap_words=400)
        barrier = WriteBarrier(collector.remember_store)
        frame = roots.push_frame()
        objs = [collector.allocate(3, 2) for _ in range(12)]
        for obj in objs:
            frame.push(obj)
        rng = random.Random(5)
        for obj in objs:
            link(heap, barrier, obj, 0, objs[rng.randrange(len(objs))])
        snapshot = heap.export_mark_snapshot(
            collector.space, list(roots.ids())
        )
        payload = (snapshot, 0, 1)
        results = [
            _mark_snapshot_task(payload, attempt) for attempt in (0, 1, 5)
        ]
        assert derive_seed(0, 1, 0) != derive_seed(0, 1, 1)
        assert results[0] == results[1] == results[2]
        assert results[0]["ids"]


class TestLifecycle:
    def test_marker_error_raises_at_reconcile(self):
        snapshot = {
            "backend": "object",
            "objects": {1: (4, (99,))},
            "known": frozenset({1}),
            "roots": [1],
        }
        result = _mark_snapshot_task((snapshot, 0, 0))
        assert "error" in result and "dangling" in result["error"]

        _, roots, collector = setup(heap_words=100)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        collector._result = {"error": "induced marker failure"}
        with pytest.raises(HeapError, match="induced marker failure"):
            collector.collect()

    def test_collect_discards_pending(self):
        _, roots, collector = setup(heap_words=100)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        collector.collect()
        assert not collector.marker_inflight
        assert collector._payload is None

    def test_static_promotion_discards_pending(self):
        _, roots, collector = setup(heap_words=100)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        collector.on_static_promotion()
        assert not collector.cycle_open
        assert collector._payload is None

    def test_close_is_idempotent(self):
        _, roots, collector = setup(heap_words=100, marker_workers=1)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        collector.close()
        collector.close()
        assert collector._pool is None

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            setup(marker_workers=-1)
