"""Tests for the mark/sweep non-predictive variant (paper §8).

"If the prototype works well, we intend to add an alternative
2-generation non-predictive collector based on a mark/sweep algorithm
with occasional compaction."  This variant frees dead collectable
objects in place and compacts only when the renumbered steps lack the
empty prefix the j-selection rule needs.
"""

from __future__ import annotations

import pytest

from repro.core.policy import FixedJPolicy
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule


def setup(step_count=6, step_words=20, **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap, roots, step_count, step_words, algorithm="mark-sweep", **kwargs
    )
    return heap, roots, collector


class TestMarkSweepMode:
    def test_rejects_unknown_algorithm(self):
        heap, roots = SimulatedHeap(), RootSet()
        with pytest.raises(ValueError):
            NonPredictiveCollector(heap, roots, 4, 10, algorithm="compact")

    def test_survivors_stay_in_place_without_compaction(self):
        heap, roots, collector = setup(
            step_count=4, step_words=8, compaction_threshold=0
        )
        frame = roots.push_frame()
        kept = collector.allocate(8)  # fills step 4 entirely
        frame.push(kept)
        for _ in range(3):
            collector.allocate(8)  # garbage fills 3..1
        space_before = kept.space
        collector.collect()
        assert kept.space is space_before  # swept in place, not moved
        assert collector.stats.words_copied == 0
        assert collector.stats.words_marked == 8
        assert collector.stats.words_swept == 32

    def test_dead_objects_freed_in_place(self):
        heap, roots, collector = setup(step_count=4, step_words=8)
        doomed = [collector.allocate(8) for _ in range(4)]
        collector.allocate(8)  # triggers the collection
        for obj in doomed:
            assert not heap.contains_id(obj.obj_id)

    def test_sweep_reopens_holes_for_allocation(self):
        heap, roots, collector = setup(
            step_count=4, step_words=8, compaction_threshold=0
        )
        frame = roots.push_frame()
        # Alternate live/dead within steps.
        for index in range(8):
            obj = collector.allocate(4)
            if index % 2 == 0:
                frame.push(obj)
        collector.collect()
        # Half of each step is free again; allocation reuses holes.
        obj = collector.allocate(4)
        assert heap.contains_id(obj.obj_id)
        heap.check_integrity()

    def test_compaction_restores_empty_prefix(self):
        heap, roots, collector = setup(
            step_count=8, step_words=8, compaction_threshold=2
        )
        frame = roots.push_frame()
        # Scatter live objects across all steps.
        for index in range(8):
            obj = collector.allocate(8)
            if index % 2 == 0:
                frame.push(obj)
        collector.collect()
        assert collector.compactions >= 1
        # After compaction the leading steps are empty again.
        leading_empty = 0
        for space in collector.steps:
            if not space.is_empty():
                break
            leading_empty += 1
        assert leading_empty >= 2
        assert collector.stats.words_copied > 0
        heap.check_integrity()
        collector.check_step_invariants()

    def test_reachability_safety_under_churn(self):
        heap, roots, collector = setup(step_count=8, step_words=40)
        frame = roots.push_frame()
        window = []
        for index in range(300):
            obj = collector.allocate(2, field_count=1)
            if window:
                heap.write_field(window[-1][1], 0, obj)
                collector.remember_store(window[-1][1], 0, obj)
            slot = frame.push(obj)
            window.append((slot, obj))
            if len(window) > 10:
                old_slot, _ = window.pop(0)
                frame.set(old_slot, None)
        heap.check_integrity()
        for _, obj in window:
            assert heap.contains_id(obj.obj_id)

    def test_mark_cons_between_copy_mode_and_baseline_under_decay(self):
        # §4 says the non-predictive policy works over "any of those
        # basic algorithms".  Measured trade-off: the mark/sweep
        # variant still beats the non-generational baseline 1/(L-1)
        # but by less than the copying prototype, because its
        # partial compactions cannot sustain as large an empty prefix
        # (hence as large a protected fraction g) as evacuation does.
        results = {}
        for algorithm in ("stop-and-copy", "mark-sweep"):
            heap = SimulatedHeap()
            roots = RootSet()
            collector = NonPredictiveCollector(
                heap,
                roots,
                16,
                631,
                algorithm=algorithm,
                compaction_threshold=8,
            )
            mutator = LifetimeDrivenMutator(
                collector, roots, DecaySchedule(2_000.0, seed=8)
            )
            mutator.run(150_000)
            results[algorithm] = collector.stats.mark_cons
        baseline = 0.4  # 1/(L-1) at L=3.5
        assert results["stop-and-copy"] < results["mark-sweep"] < baseline

    def test_protected_steps_untouched_by_sweep(self):
        heap, roots, collector = setup(
            step_count=4,
            step_words=8,
            policy=FixedJPolicy(1),
            initial_j=1,
        )
        for _ in range(3):
            collector.allocate(8)
        unrooted_protected = collector.allocate(8)  # step 1
        assert collector.step_number(unrooted_protected) == 1
        collector.collect()
        assert heap.contains_id(unrooted_protected.obj_id)
