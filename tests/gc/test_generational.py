"""Tests for the conventional generational collector."""

from __future__ import annotations

import pytest

from repro.gc.generational import GenerationalCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def setup(generation_words=(20, 100), **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = GenerationalCollector(
        heap, roots, list(generation_words), **kwargs
    )
    return heap, roots, collector


class TestAllocationAndPromotion:
    def test_allocates_in_nursery(self):
        heap, _, collector = setup()
        obj = collector.allocate(4)
        assert obj.space is collector.nursery
        assert collector.generation_index(obj) == 0

    def test_minor_collection_promotes_survivors(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.collect_generations(0)
        assert collector.generation_index(kept) == 1
        assert collector.nursery.is_empty()
        assert collector.stats.words_promoted == 4
        assert collector.stats.minor_collections == 1

    def test_nursery_fill_triggers_minor(self):
        heap, roots, collector = setup(generation_words=(10, 100))
        for _ in range(6):
            collector.allocate(2)
        assert collector.stats.minor_collections >= 1
        assert collector.stats.major_collections == 0

    def test_full_collection_when_old_gen_tight(self):
        heap, roots, collector = setup(
            generation_words=(10, 12), auto_expand_oldest=False
        )
        frame = roots.push_frame()
        # A small live window: promoted-then-dropped objects pile up
        # as garbage in the old generation, forcing full collections.
        slots = []
        for _ in range(20):
            slot = frame.push(collector.allocate(2))
            slots.append(slot)
            if len(slots) > 3:
                frame.set(slots.pop(0), None)
        assert collector.stats.major_collections >= 1

    def test_oldest_expands_when_allowed(self):
        heap, roots, collector = setup(
            generation_words=(10, 12), oldest_load_factor=2.0
        )
        frame = roots.push_frame()
        for _ in range(30):
            frame.push(collector.allocate(2))
        assert (collector.oldest.capacity or 0) > 12


class TestRememberedSets:
    def test_barrier_records_old_to_young(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_generations(0)  # promote old to gen 1
        young = collector.allocate(2)
        frame.push(young)
        collector.remember_store(old, 0, young)
        assert (old.obj_id, 0) in collector.remsets[1]

    def test_barrier_ignores_young_to_old(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2)
        frame.push(old)
        collector.collect_generations(0)
        young = collector.allocate(2, field_count=1)
        frame.push(young)
        collector.remember_store(young, 0, old)
        assert len(collector.remsets[0]) == 0
        assert len(collector.remsets[1]) == 0

    def test_remset_keeps_unrooted_young_alive(self):
        # The defining remembered-set property: an object reachable
        # ONLY through an old-to-young pointer must survive a minor
        # collection.
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_generations(0)
        young = collector.allocate(2)
        heap.write_field(old, 0, young)
        collector.remember_store(old, 0, young)
        # No root points at young; only old's slot does.
        collector.collect_generations(0)
        assert heap.contains_id(young.obj_id)
        assert collector.generation_index(young) == 1

    def test_stale_entries_pruned_at_collection(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_generations(0)
        young = collector.allocate(2)
        frame.push(young)
        heap.write_field(old, 0, young)
        collector.remember_store(old, 0, young)
        heap.write_field(old, 0, None)  # overwritten: entry now stale
        collector.collect_generations(0)
        assert len(collector.remsets[1]) == 0
        assert collector.stats.remset_entries_pruned >= 1

    def test_full_collection_empties_all_remsets(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_generations(0)
        young = collector.allocate(2)
        heap.write_field(old, 0, young)
        collector.remember_store(old, 0, young)
        collector.collect()
        assert all(len(remset) == 0 for remset in collector.remsets)


class TestSafety:
    def test_unreachable_old_objects_reclaimed_by_full(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        doomed = collector.allocate(4)
        slot = frame.push(doomed)
        collector.collect_generations(0)  # promoted while rooted
        frame.set(slot, None)
        collector.collect()
        assert not heap.contains_id(doomed.obj_id)

    def test_integrity_through_many_collections(self):
        heap, roots, collector = setup(generation_words=(16, 64))
        frame = roots.push_frame()
        window = []
        for index in range(200):
            obj = collector.allocate(2, field_count=1)
            if window:
                heap.write_field(obj, 0, window[-1][1])
            slot = frame.push(obj)
            window.append((slot, obj))
            if len(window) > 8:
                old_slot, _ = window.pop(0)
                frame.set(old_slot, None)
        heap.check_integrity()
        for _, obj in window:
            assert heap.contains_id(obj.obj_id)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            setup(generation_words=(10,))
        with pytest.raises(ValueError):
            setup(generation_words=(0, 10))
        with pytest.raises(ValueError):
            setup(oldest_load_factor=1.0)

    def test_collect_generations_range_checked(self):
        _, _, collector = setup()
        with pytest.raises(ValueError):
            collector.collect_generations(5)
