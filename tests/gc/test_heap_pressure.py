"""Tests for graceful heap-pressure degradation.

Exhaustion is a policy, not an accident: collectors collect, then
expand within their configured bound, and only then raise a structured
:class:`HeapExhausted` carrying a per-space occupancy snapshot.
"""

import pytest

from repro.gc.collector import HeapExhausted
from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def _fresh():
    return SimulatedHeap(), RootSet()


class TestExactCapacityBoundary:
    def test_filling_to_exact_capacity_succeeds(self):
        heap, roots = _fresh()
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        assert collector.space.used == 8

    def test_one_word_past_capacity_exhausts(self):
        heap, roots = _fresh()
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted) as excinfo:
            collector.allocate(1)
        assert excinfo.value.requested == 1

    def test_garbage_at_capacity_is_collected_not_fatal(self):
        heap, roots = _fresh()
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        collector.allocate(4)
        collector.allocate(4)  # both unreachable
        obj = collector.allocate(4)  # forces a collection, then fits
        roots.set_global("live", obj)
        assert heap.contains_id(obj.obj_id)


class TestEmergencyCollection:
    def test_tenuring_nursery_wedge_resolved_by_full_collection(self):
        # Under-age survivors stay in the nursery after a minor
        # collection (tenuring), so the nursery can still be full; the
        # emergency full collection promotes them all before giving up.
        heap, roots = _fresh()
        collector = GenerationalCollector(
            heap,
            roots,
            [16, 64],
            promotion_threshold=2,
            tenuring_overflow_fraction=1.0,
        )
        stayers = []
        for index in range(4):
            obj = collector.allocate(4)
            roots.set_global(f"g{index}", obj)
            stayers.append(obj)
        assert collector.nursery.used == 16
        newcomer = collector.allocate(4)  # triggers the emergency path
        roots.set_global("newcomer", newcomer)
        assert heap.contains_id(newcomer.obj_id)
        for obj in stayers:
            assert collector.generation_index(obj) == 1
        assert collector.nursery.used == 4

    def test_stopcopy_collects_garbage_before_raising(self):
        heap, roots = _fresh()
        collector = StopAndCopyCollector(heap, roots, 8, auto_expand=False)
        collector.allocate(4)
        collector.allocate(4)  # both unreachable
        obj = collector.allocate(8)
        roots.set_global("live", obj)
        assert heap.contains_id(obj.obj_id)


class TestExpansionCap:
    def test_marksweep_expands_only_to_the_cap(self):
        heap, roots = _fresh()
        collector = MarkSweepCollector(
            heap, roots, 8, auto_expand=True, max_heap_words=16
        )
        for index in range(4):
            roots.set_global(f"g{index}", collector.allocate(4))
        assert collector.space.capacity <= 16
        with pytest.raises(HeapExhausted):
            collector.allocate(4)
        assert collector.space.capacity <= 16

    def test_stopcopy_expands_only_to_the_cap(self):
        heap, roots = _fresh()
        collector = StopAndCopyCollector(
            heap, roots, 8, auto_expand=True, max_semispace_words=16
        )
        for index in range(4):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted):
            collector.allocate(4)
        for space in heap.spaces():
            assert (space.capacity or 0) <= 16

    def test_cap_below_initial_size_rejected(self):
        heap, roots = _fresh()
        with pytest.raises(ValueError):
            MarkSweepCollector(heap, roots, 32, max_heap_words=16)
        heap, roots = _fresh()
        with pytest.raises(ValueError):
            StopAndCopyCollector(heap, roots, 32, max_semispace_words=16)


class TestExhaustionDiagnostics:
    def _exhaust(self):
        heap, roots = _fresh()
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted) as excinfo:
            collector.allocate(4)
        return collector, excinfo.value

    def test_snapshot_carries_per_space_occupancy(self):
        collector, error = self._exhaust()
        assert error.collector is collector
        assert error.requested == 4
        assert error.phase == "allocate"
        spaces = error.snapshot["spaces"]
        assert spaces, "snapshot must list the wedged spaces"
        for entry in spaces:
            assert {"name", "used", "capacity"} <= set(entry)
        wedged = {entry["name"]: entry for entry in spaces}
        assert wedged[collector.space.name]["used"] == 8

    def test_message_names_phase_and_occupancy(self):
        _, error = self._exhaust()
        message = str(error)
        assert "phase allocate" in message
        assert "4 words" in message

    def test_snapshot_is_jsonable(self):
        import json

        _, error = self._exhaust()
        json.dumps(error.snapshot)
