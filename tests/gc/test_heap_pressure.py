"""Tests for graceful heap-pressure degradation.

Exhaustion is a policy, not an accident: collectors collect, then
expand within their configured bound, and only then raise a structured
:class:`HeapExhausted` carrying a per-space occupancy snapshot.

Every scenario runs on both heap backends — the flat backend's arena
bookkeeping must wedge, collect, and report occupancy exactly like the
object backend's.
"""

import random

import pytest

from repro.gc.collector import HeapExhausted
from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.roots import RootSet


@pytest.fixture(params=HEAP_BACKENDS)
def backend(request):
    return request.param


def _fresh(backend):
    return make_heap(backend), RootSet()


class TestExactCapacityBoundary:
    def test_filling_to_exact_capacity_succeeds(self, backend):
        heap, roots = _fresh(backend)
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        assert collector.space.used == 8

    def test_one_word_past_capacity_exhausts(self, backend):
        heap, roots = _fresh(backend)
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted) as excinfo:
            collector.allocate(1)
        assert excinfo.value.requested == 1

    def test_garbage_at_capacity_is_collected_not_fatal(self, backend):
        heap, roots = _fresh(backend)
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        collector.allocate(4)
        collector.allocate(4)  # both unreachable
        obj = collector.allocate(4)  # forces a collection, then fits
        roots.set_global("live", obj)
        assert heap.contains_id(obj.obj_id)


class TestEmergencyCollection:
    def test_tenuring_nursery_wedge_resolved_by_full_collection(
        self, backend
    ):
        # Under-age survivors stay in the nursery after a minor
        # collection (tenuring), so the nursery can still be full; the
        # emergency full collection promotes them all before giving up.
        heap, roots = _fresh(backend)
        collector = GenerationalCollector(
            heap,
            roots,
            [16, 64],
            promotion_threshold=2,
            tenuring_overflow_fraction=1.0,
        )
        stayers = []
        for index in range(4):
            obj = collector.allocate(4)
            roots.set_global(f"g{index}", obj)
            stayers.append(obj)
        assert collector.nursery.used == 16
        newcomer = collector.allocate(4)  # triggers the emergency path
        roots.set_global("newcomer", newcomer)
        assert heap.contains_id(newcomer.obj_id)
        for obj in stayers:
            assert collector.generation_index(obj) == 1
        assert collector.nursery.used == 4

    def test_stopcopy_collects_garbage_before_raising(self, backend):
        heap, roots = _fresh(backend)
        collector = StopAndCopyCollector(heap, roots, 8, auto_expand=False)
        collector.allocate(4)
        collector.allocate(4)  # both unreachable
        obj = collector.allocate(8)
        roots.set_global("live", obj)
        assert heap.contains_id(obj.obj_id)


class TestExpansionCap:
    def test_marksweep_expands_only_to_the_cap(self, backend):
        heap, roots = _fresh(backend)
        collector = MarkSweepCollector(
            heap, roots, 8, auto_expand=True, max_heap_words=16
        )
        for index in range(4):
            roots.set_global(f"g{index}", collector.allocate(4))
        assert collector.space.capacity <= 16
        with pytest.raises(HeapExhausted):
            collector.allocate(4)
        assert collector.space.capacity <= 16

    def test_stopcopy_expands_only_to_the_cap(self, backend):
        heap, roots = _fresh(backend)
        collector = StopAndCopyCollector(
            heap, roots, 8, auto_expand=True, max_semispace_words=16
        )
        for index in range(4):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted):
            collector.allocate(4)
        for space in heap.spaces():
            assert (space.capacity or 0) <= 16

    def test_cap_below_initial_size_rejected(self, backend):
        heap, roots = _fresh(backend)
        with pytest.raises(ValueError):
            MarkSweepCollector(heap, roots, 32, max_heap_words=16)
        heap, roots = _fresh(backend)
        with pytest.raises(ValueError):
            StopAndCopyCollector(heap, roots, 32, max_semispace_words=16)


class TestExhaustionDiagnostics:
    def _exhaust(self, backend):
        heap, roots = _fresh(backend)
        collector = MarkSweepCollector(heap, roots, 8, auto_expand=False)
        for index in range(2):
            roots.set_global(f"g{index}", collector.allocate(4))
        with pytest.raises(HeapExhausted) as excinfo:
            collector.allocate(4)
        return collector, excinfo.value

    def test_snapshot_carries_per_space_occupancy(self, backend):
        collector, error = self._exhaust(backend)
        assert error.collector is collector
        assert error.requested == 4
        assert error.phase == "allocate"
        spaces = error.snapshot["spaces"]
        assert spaces, "snapshot must list the wedged spaces"
        for entry in spaces:
            assert {"name", "used", "capacity"} <= set(entry)
        wedged = {entry["name"]: entry for entry in spaces}
        assert wedged[collector.space.name]["used"] == 8

    def test_message_names_phase_and_occupancy(self, backend):
        _, error = self._exhaust(backend)
        message = str(error)
        assert "phase allocate" in message
        assert "4 words" in message

    def test_snapshot_is_jsonable(self, backend):
        import json

        _, error = self._exhaust(backend)
        json.dumps(error.snapshot)


class TestSeededFlatPressure:
    """Seeded allocate/drop churn on the flat backend, driven to
    exhaustion: the arena bookkeeping must report the same structured
    diagnostics the object backend does, at any wedge point."""

    def _churn_to_exhaustion(self, seed):
        heap, roots = _fresh("flat")
        collector = MarkSweepCollector(heap, roots, 32, auto_expand=False)
        rng = random.Random(seed)
        live = {}
        with pytest.raises(HeapExhausted) as excinfo:
            for step in range(10_000):
                if live and rng.random() < 0.3:
                    name = rng.choice(sorted(live))
                    roots.remove_global(name)
                    del live[name]
                else:
                    size = rng.randint(1, 6)
                    obj = collector.allocate(size)
                    name = f"g{step}"
                    roots.set_global(name, obj)
                    live[name] = size
            pytest.fail("churn never exhausted a capped 32-word heap")
        return heap, collector, live, excinfo.value

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_occupancy_snapshot_matches_live_roots(self, seed):
        heap, collector, live, error = self._churn_to_exhaustion(seed)
        # At the wedge the heap holds exactly the rooted survivors: the
        # failed allocation collected first, so no garbage remains.
        expected_used = sum(live.values())
        wedged = {
            entry["name"]: entry for entry in error.snapshot["spaces"]
        }
        entry = wedged[collector.space.name]
        assert entry["used"] == expected_used == collector.space.used
        assert entry["capacity"] == 32
        assert error.requested + expected_used > 32
        heap.check_integrity()

    @pytest.mark.parametrize("seed", [3, 99])
    def test_emergency_collection_path_under_churn(self, seed):
        # A generational heap under the same churn: minor collections
        # tenure under-age survivors in place, so the emergency full
        # collection is what keeps the nursery usable.
        heap, roots = _fresh("flat")
        collector = GenerationalCollector(
            heap,
            roots,
            [16, 128],
            promotion_threshold=3,
            tenuring_overflow_fraction=1.0,
        )
        rng = random.Random(seed)
        live = {}
        for step in range(300):
            if live and rng.random() < 0.4:
                name = rng.choice(sorted(live))
                roots.remove_global(name)
                del live[name]
            else:
                obj = collector.allocate(rng.randint(1, 4))
                name = f"g{step}"
                roots.set_global(name, obj)
                live[name] = obj
        assert collector.stats.collections > 0
        for name, obj in live.items():
            assert heap.contains_id(obj.obj_id), name
        heap.check_integrity()
