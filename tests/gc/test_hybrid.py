"""Tests for the hybrid collector (paper Section 8)."""

from __future__ import annotations

import pytest

from repro.core.policy import FixedJPolicy
from repro.gc.collector import HeapExhausted
from repro.gc.hybrid import HybridCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def setup(nursery_words=10, step_count=4, step_words=10, **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = HybridCollector(
        heap, roots, nursery_words, step_count, step_words, **kwargs
    )
    return heap, roots, collector


class TestEphemeralCollection:
    def test_allocates_in_nursery(self):
        heap, _, collector = setup()
        obj = collector.allocate(4)
        assert collector.in_nursery(obj)

    def test_promotion_empties_nursery(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.allocate(4)  # garbage
        collector.collect_nursery()
        assert collector.nursery.is_empty()
        assert collector.step_number(kept) is not None
        assert not heap.contains_id(kept.obj_id + 1) or True
        assert collector.stats.minor_collections == 1
        assert collector.stats.words_promoted == 4

    def test_promotion_targets_highest_free_step(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.collect_nursery()
        assert collector.step_number(kept) == collector.step_count

    def test_nursery_fill_triggers_promotion(self):
        heap, roots, collector = setup(nursery_words=8)
        for _ in range(5):
            collector.allocate(2)
        assert collector.stats.minor_collections >= 1

    def test_oversized_allocation_rejected(self):
        _, _, collector = setup(nursery_words=8)
        with pytest.raises(ValueError):
            collector.allocate(9)


class TestYoungRememberedSet:
    def test_step_to_nursery_store_remembered(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_nursery()  # old now in a step
        young = collector.allocate(2)
        frame.push(young)
        collector.remember_store(old, 0, young)
        assert (old.obj_id, 0) in collector.remset_young

    def test_remset_keeps_unrooted_nursery_object_alive(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_nursery()
        young = collector.allocate(2)
        heap.write_field(old, 0, young)
        collector.remember_store(old, 0, young)
        # young has no root; only old's remembered slot reaches it.
        collector.collect_nursery()
        assert heap.contains_id(young.obj_id)
        assert collector.step_number(young) is not None

    def test_young_remset_cleared_after_promotion(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)
        frame.push(old)
        collector.collect_nursery()
        young = collector.allocate(2)
        heap.write_field(old, 0, young)
        collector.remember_store(old, 0, young)
        collector.collect_nursery()
        assert len(collector.remset_young) == 0


class TestNonPredictiveCollection:
    def test_np_collection_includes_nursery(self):
        # "A non-predictive collection always promotes all live
        # objects out of the ephemeral area."
        heap, roots, collector = setup()
        frame = roots.push_frame()
        in_nursery = collector.allocate(4)
        frame.push(in_nursery)
        collector.collect()
        assert collector.nursery.is_empty()
        assert collector.step_number(in_nursery) is not None

    def test_np_collection_reclaims_step_garbage(self):
        heap, roots, collector = setup()
        doomed = collector.allocate(4)
        collector.collect_nursery()  # doomed promoted (it was rooted? no)
        # doomed had no root: it died at the promotion already.
        assert not heap.contains_id(doomed.obj_id)
        survivor = collector.allocate(4)
        frame = roots.push_frame()
        frame.push(survivor)
        collector.collect_nursery()
        slot_obj = survivor
        collector.collect()
        assert heap.contains_id(slot_obj.obj_id)

    def test_renumbering_and_policy(self):
        heap, roots, collector = setup(
            step_count=6, step_words=4, policy=FixedJPolicy(2), initial_j=2
        )
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.collect()
        assert collector.j <= 2
        assert collector.step_number(kept) is not None

    def test_dynamic_exhaustion(self):
        heap, roots, collector = setup(
            nursery_words=20, step_count=2, step_words=10
        )
        frame = roots.push_frame()
        with pytest.raises(HeapExhausted):
            for _ in range(20):
                frame.push(collector.allocate(5))


class TestPromotionIntoProtected:
    def _fill_collectable(self, collector, roots):
        """Arrange a state where only protected steps have room."""
        heap = collector.heap
        frame = roots.push_frame()
        kept = []
        # j=2 of 4 steps; fill steps 3,4 via repeated promotions.
        while collector._collectable_free() >= (collector.nursery.capacity or 0):
            obj = collector.allocate(8)
            kept.append(obj)
            frame.push(obj)
            collector.collect_nursery()
        return frame, kept

    def test_situation5_entries_recorded(self):
        heap, roots, collector = setup(
            nursery_words=8,
            step_count=4,
            step_words=8,
            policy=FixedJPolicy(2),
            initial_j=2,
        )
        frame, kept = self._fill_collectable(collector, roots)
        # Next promotion must go into the protected steps; give the
        # promoted object a pointer into a collectable step.
        young = collector.allocate(4, field_count=1)
        frame.push(young)
        heap.write_field(young, 0, kept[0])
        collector.collect_nursery()
        assert collector.step_number(young) <= collector.j
        assert (young.obj_id, 0) in collector.remset_steps
        # And the entry must actually protect the target at the next
        # np collection if the target loses its other roots.
        heap.check_integrity()

    def test_disabled_protected_promotion_spills_and_lowers_j(self):
        # With the situation-5 path disabled, a promotion that cannot
        # fit in steps j+1..k spills below the boundary and j is
        # decreased afterwards (the paper's "flexibility to decrease
        # j"); no promotion entries are recorded.
        heap, roots, collector = setup(
            nursery_words=8,
            step_count=4,
            step_words=8,
            policy=FixedJPolicy(2),
            initial_j=2,
            allow_promotion_into_protected=False,
        )
        frame, kept = self._fill_collectable(collector, roots)
        young = collector.allocate(4)
        frame.push(young)
        collector.collect_nursery()
        assert collector.j < 2
        assert collector.step_number(young) is not None
        assert collector.remset_steps.promotion_size == 0


class TestSafety:
    def test_integrity_through_churn(self):
        heap, roots, collector = setup(
            nursery_words=16, step_count=6, step_words=16
        )
        frame = roots.push_frame()
        window = []
        for index in range(300):
            obj = collector.allocate(2, field_count=1)
            if window:
                # Old-to-new pointers keep reachability bounded by the
                # window; stores go through the collector's barrier
                # hook as the machine would route them.
                previous = window[-1][1]
                heap.write_field(previous, 0, obj)
                collector.remember_store(previous, 0, obj)
            slot = frame.push(obj)
            window.append((slot, obj))
            if len(window) > 10:
                old_slot, _ = window.pop(0)
                frame.set(old_slot, None)
        heap.check_integrity()
        for _, obj in window:
            assert heap.contains_id(obj.obj_id)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            setup(nursery_words=0)
        with pytest.raises(ValueError):
            setup(step_count=1)
        with pytest.raises(ValueError):
            setup(step_words=0)
        with pytest.raises(ValueError):
            setup(initial_j=3)
