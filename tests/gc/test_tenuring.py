"""Tests for the tenuring (promotion-threshold) policy.

The paper's §9 points at the promotion-policy literature (Ungar &
Jackson's adaptive tenuring among others); the generational collector
supports survive-N-collections tenuring with tenuring overflow, and
these tests pin its semantics.
"""

from __future__ import annotations

import pytest

from repro.gc.generational import GenerationalCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum


def setup(generation_words=(40, 200), **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = GenerationalCollector(
        heap, roots, list(generation_words), **kwargs
    )
    return heap, roots, collector


class TestTenuring:
    def test_threshold_one_promotes_immediately(self):
        heap, roots, collector = setup(promotion_threshold=1)
        frame = roots.push_frame()
        obj = collector.allocate(4)
        frame.push(obj)
        collector.collect_generations(0)
        assert collector.generation_index(obj) == 1

    def test_underage_survivor_stays(self):
        heap, roots, collector = setup(promotion_threshold=2)
        frame = roots.push_frame()
        obj = collector.allocate(4)
        frame.push(obj)
        collector.collect_generations(0)
        assert collector.generation_index(obj) == 0  # one survival: stays
        collector.collect_generations(0)
        assert collector.generation_index(obj) == 1  # second: promoted

    def test_stayer_still_charged_copy_work(self):
        heap, roots, collector = setup(promotion_threshold=2)
        frame = roots.push_frame()
        frame.push(collector.allocate(4))
        collector.collect_generations(0)
        assert collector.stats.words_copied == 4
        assert collector.stats.words_promoted == 0

    def test_tenuring_overflow_promotes_early(self):
        heap, roots, collector = setup(
            generation_words=(40, 200),
            promotion_threshold=5,
            tenuring_overflow_fraction=0.25,
        )
        frame = roots.push_frame()
        # 24 words of survivors > 25% of the 40-word nursery.
        kept = [collector.allocate(8) for _ in range(3)]
        for obj in kept:
            frame.push(obj)
        collector.collect_generations(0)
        for obj in kept:
            assert collector.generation_index(obj) == 1

    def test_full_collection_ignores_threshold(self):
        heap, roots, collector = setup(promotion_threshold=10)
        frame = roots.push_frame()
        obj = collector.allocate(4)
        frame.push(obj)
        collector.collect()
        assert collector.generation_index(obj) == 1

    def test_counts_reset_on_promotion(self):
        heap, roots, collector = setup(promotion_threshold=2)
        frame = roots.push_frame()
        obj = collector.allocate(4)
        frame.push(obj)
        collector.collect_generations(0)
        collector.collect_generations(0)
        assert collector.generation_index(obj) == 1
        assert obj.obj_id not in collector._survival_counts

    def test_counts_dropped_for_the_dead(self):
        heap, roots, collector = setup(promotion_threshold=3)
        frame = roots.push_frame()
        obj = collector.allocate(4)
        slot = frame.push(obj)
        collector.collect_generations(0)
        assert obj.obj_id in collector._survival_counts
        frame.set(slot, None)
        collector.collect_generations(0)
        assert obj.obj_id not in collector._survival_counts

    def test_validation(self):
        with pytest.raises(ValueError):
            setup(promotion_threshold=0)
        with pytest.raises(ValueError):
            setup(tenuring_overflow_fraction=0.0)
        with pytest.raises(ValueError):
            setup(tenuring_overflow_fraction=1.5)


class TestTenuringRemsetCompleteness:
    def test_promoted_object_pointing_at_stayer_is_remembered(self):
        # The situation-2 analogue tenuring introduces: a promoted
        # object may point at an under-age stayer in the nursery; that
        # pointer must be a root for the next minor collection.
        machine = Machine(
            lambda heap, roots: GenerationalCollector(
                heap, roots, [200, 800], promotion_threshold=2
            )
        )
        collector = machine.collector
        heap = machine.heap
        young = machine.cons(Fixnum(1), None)  # will stay (age 1)
        old = machine.cons(young, None)  # same age...
        # Age `old` once more so its count passes the threshold while
        # `young` is freshly re-created.
        collector.collect_generations(0)  # both stay (age 1)
        collector.collect_generations(0)  # both promoted (age 2)
        fresh = machine.cons(Fixnum(2), None)  # brand new in nursery
        machine.set_cdr(old, fresh)  # old (gen 1) -> fresh (gen 0): barrier
        fresh_id = fresh.obj_id
        del fresh  # reachable only through `old`
        import gc as python_gc

        python_gc.collect()
        collector.collect_generations(0)
        assert heap.contains_id(fresh_id)
        # And the structure reads back correctly.
        assert machine.car(machine.cdr(old)) == Fixnum(2)

    def test_stayer_entries_survive_minor_collection(self):
        # A stayer's remembered-set entry (it points into a younger
        # generation) must not be wiped by the clear-on-minor path.
        machine = Machine(
            lambda heap, roots: GenerationalCollector(
                heap, roots, [200, 800, 1600], promotion_threshold=2
            )
        )
        collector = machine.collector
        heap = machine.heap
        # Promote a holder to generation 1.
        holder = machine.cons(None, None)
        collector.collect_generations(0)
        collector.collect_generations(0)
        assert collector.generation_index(holder.obj) == 1
        # Point it at a nursery object; entry lands in remset[1].
        young = machine.cons(Fixnum(7), None)
        machine.set_car(holder, young)
        assert len(collector.remsets[1]) == 1
        young_id = young.obj_id
        del young
        import gc as python_gc

        python_gc.collect()
        # Minor collection of gen 0 only: holder's entry is consumed as
        # a seed; the young object is promoted and stays reachable.
        collector.collect_generations(0)
        assert heap.contains_id(young_id)
        assert machine.car(machine.car(holder)) == Fixnum(7)
