"""Tests for the incremental tri-color mark/sweep collector.

Three layers:

* unit tests of the slicing machinery — cycles open at the trigger,
  slices respect the budget (to object granularity), allocation
  stays black, the SATB barrier grays overwritten referents;
* the degenerate-budget sanity check — ``slice_budget=None`` behaves
  exactly like stop-the-world mark-sweep;
* seeded mutation storms on BOTH heap backends: random stores, root
  drops, and collections interleaved mid-mark must never lose an
  object an independent BFS over the roots can still reach.
"""

from __future__ import annotations

import random

import pytest

from repro.gc.collector import HeapExhausted
from repro.gc.incremental import BLACK, GRAY, WHITE, IncrementalCollector
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.barrier import WriteBarrier
from repro.heap.roots import RootSet


def setup(heap_words=100, backend=None, **kwargs):
    heap = make_heap(backend)
    roots = RootSet()
    collector = IncrementalCollector(heap, roots, heap_words, **kwargs)
    return heap, roots, collector


def link(heap, barrier, src, slot, dst):
    """One mutator pointer store, through the write barrier."""
    barrier.on_store(src, slot, dst)
    heap.write_slot(src, slot, dst.obj_id if dst is not None else None)


class TestSlicing:
    def test_cycle_opens_at_trigger(self):
        _, roots, collector = setup(heap_words=100, trigger_fraction=0.5)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        assert collector.cycles_opened == 1
        assert collector.space.used > 0

    def test_slices_bound_work_to_budget(self):
        _, roots, collector = setup(
            heap_words=400, slice_budget=8, trigger_fraction=0.25
        )
        frame = roots.push_frame()
        for _ in range(40):
            frame.push(collector.allocate(4))
        # Every slice marked at most budget + one object of overshoot
        # (work granularity is a whole object).
        for pause in collector.stats.pauses:
            if pause.kind == "slice":
                assert pause.work <= 8 + 4
        assert collector.slices_run > 0

    def test_unbounded_budget_drains_wavefront_in_one_slice(self):
        # budget=None degenerates to stop-the-world marking: every
        # slice drains the whole wavefront, so the gray stack is empty
        # at every allocation boundary (the cycle itself stays open
        # until heap pressure or an explicit collect closes it).
        _, roots, collector = setup(heap_words=100, slice_budget=None)
        frame = roots.push_frame()
        for _ in range(30):
            frame.push(collector.allocate(4))
        assert not collector.gray_stack
        assert collector.cycles_opened >= 1

    def test_allocation_during_cycle_is_black(self):
        heap, roots, collector = setup(heap_words=200, slice_budget=1)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        newborn = collector.allocate(4)
        frame.push(newborn)
        # Born after the epoch opened: survives the cycle close
        # unconditionally, without ever being colored or scanned.
        assert heap.birth_of(newborn.obj_id) >= collector.epoch_clock
        collector.collect()
        assert heap.contains_id(newborn.obj_id)

    def test_explicit_collect_closes_cycle(self):
        _, roots, collector = setup(heap_words=200, slice_budget=1)
        frame = roots.push_frame()
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        collector.collect()
        assert not collector.cycle_open
        assert not collector.gray_stack

    def test_exhaustion_without_expand(self):
        _, roots, collector = setup(heap_words=12, auto_expand=False)
        frame = roots.push_frame()
        for _ in range(6):
            frame.push(collector.allocate(2))
        with pytest.raises(HeapExhausted):
            collector.allocate(2)

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            setup(slice_budget=0)
        with pytest.raises(ValueError):
            setup(slice_budget=-3)


class TestSatbBarrier:
    def test_overwritten_referent_is_grayed(self):
        heap, roots, collector = setup(heap_words=400, slice_budget=1)
        barrier = WriteBarrier(collector.remember_store)
        frame = roots.push_frame()
        holder = collector.allocate(4, 2)
        victim = collector.allocate(4)
        frame.push(holder)
        link(heap, barrier, holder, 0, victim)
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        # Sever the only edge mid-cycle; the deletion barrier must
        # gray the old referent if it predates the epoch.
        was_white = heap.color_of(victim.obj_id) == WHITE
        link(heap, barrier, holder, 0, None)
        if was_white:
            assert heap.color_of(victim.obj_id) == GRAY
            assert victim.obj_id in collector.gray_stack
        assert collector.satb_grays >= 1
        # SATB keeps the snapshot referent alive through this cycle.
        collector.collect()
        assert heap.contains_id(victim.obj_id)

    def test_barrier_is_noop_outside_cycle(self):
        heap, roots, collector = setup(heap_words=400)
        barrier = WriteBarrier(collector.remember_store)
        frame = roots.push_frame()
        holder = collector.allocate(4, 2)
        victim = collector.allocate(4)
        frame.push(holder)
        link(heap, barrier, holder, 0, victim)
        link(heap, barrier, holder, 0, None)
        assert collector.satb_grays == 0
        assert not collector.gray_stack

    def test_floating_garbage_dies_next_cycle(self):
        heap, roots, collector = setup(heap_words=400, slice_budget=1)
        barrier = WriteBarrier(collector.remember_store)
        frame = roots.push_frame()
        holder = collector.allocate(4, 2)
        victim = collector.allocate(4)
        frame.push(holder)
        link(heap, barrier, holder, 0, victim)
        while not collector.cycle_open:
            frame.push(collector.allocate(4))
        link(heap, barrier, holder, 0, None)
        collector.collect()   # victim floats (SATB snapshot)
        collector.collect()   # precise from a quiescent heap
        assert not heap.contains_id(victim.obj_id)


def bfs_reachable(heap, roots, space):
    """Independent oracle: in-space ids reachable from the roots."""
    seen = set()
    stack = [
        ref for ref in roots.ids() if heap.space_if_live(ref) is space
    ]
    while stack:
        oid = stack.pop()
        if oid in seen:
            continue
        seen.add(oid)
        for _slot, ref in heap.ref_slots(oid):
            if heap.space_if_live(ref) is space:
                stack.append(ref)
    return seen


@pytest.mark.parametrize("backend", sorted(HEAP_BACKENDS))
@pytest.mark.parametrize("seed", [0, 7, 13, 42])
class TestMutationStorm:
    """Random stores mid-mark never lose a reachable object."""

    def test_storm_preserves_bfs_reachability(self, backend, seed):
        heap, roots, collector = setup(
            heap_words=256, backend=backend, slice_budget=2,
            trigger_fraction=0.3,
        )
        barrier = WriteBarrier(collector.remember_store)
        rng = random.Random(seed)
        frame = roots.push_frame()
        live = []
        for step in range(400):
            action = rng.randrange(10)
            if action < 4 or not live:
                obj = collector.allocate(rng.choice((3, 4)), 2)
                frame.push(obj)
                live.append(obj)
            elif action < 7 and len(live) >= 2:
                src = rng.choice(live)
                dst = rng.choice(live + [None])
                slot = rng.randrange(heap.slot_count_of(src.obj_id))
                link(heap, barrier, src, slot, dst)
            elif action < 9 and len(live) > 4:
                # Drop a root (the object may stay reachable via heap
                # edges made above).
                live.remove(rng.choice(live))
                dropped = frame
                kept = [o for o in live]
                roots.pop_frame(dropped)
                frame = roots.push_frame()
                for obj in kept:
                    frame.push(obj)
            else:
                collector.collect()
            # The invariant under test, at every step: everything the
            # independent BFS can reach is still resident.
            reachable = bfs_reachable(heap, roots, collector.space)
            resident = set(collector.space.object_ids())
            missing = reachable - resident
            assert not missing, (
                f"step {step}: reachable ids {sorted(missing)} "
                f"not resident (backend {backend}, seed {seed})"
            )
        # Quiesce: two collections reach the precise resident set.
        collector.collect()
        collector.collect()
        reachable = bfs_reachable(heap, roots, collector.space)
        assert set(collector.space.object_ids()) == reachable


class TestColorEncoding:
    """The tri-color API both heap backends must agree on."""

    @pytest.mark.parametrize("backend", sorted(HEAP_BACKENDS))
    def test_colors_roundtrip_and_reset(self, backend):
        heap, roots, collector = setup(heap_words=64, backend=backend)
        obj = collector.allocate(4)
        assert heap.color_of(obj.obj_id) == WHITE
        # Colors are writable only within a mark epoch (on the flat
        # backend the epoch sizes the color arena).
        heap.begin_mark_epoch()
        heap.set_color(obj.obj_id, GRAY)
        assert heap.color_of(obj.obj_id) == GRAY
        heap.set_color(obj.obj_id, BLACK)
        assert heap.color_of(obj.obj_id) == BLACK
        # A new epoch whitens everything.
        heap.begin_mark_epoch()
        assert heap.color_of(obj.obj_id) == WHITE
