"""Tests for GC work accounting."""

from __future__ import annotations

import pytest

from repro.gc.stats import GcStats, PauseRecord


class TestDerivedMeasures:
    def test_mark_cons_combines_marked_and_copied(self):
        stats = GcStats()
        stats.words_allocated = 1_000
        stats.words_marked = 100
        stats.words_copied = 150
        assert stats.words_traced == 250
        assert stats.mark_cons == pytest.approx(0.25)

    def test_mark_cons_zero_when_nothing_allocated(self):
        assert GcStats().mark_cons == 0.0

    def test_gc_work_includes_sweep_and_roots(self):
        stats = GcStats()
        stats.words_marked = 10
        stats.words_copied = 20
        stats.words_swept = 30
        stats.roots_traced = 5
        assert stats.gc_work == 65

    def test_gc_mutator_ratio_default_denominator(self):
        stats = GcStats()
        stats.words_allocated = 200
        stats.words_copied = 50
        assert stats.gc_mutator_ratio() == pytest.approx(0.25)

    def test_gc_mutator_ratio_custom_denominator(self):
        stats = GcStats()
        stats.words_copied = 50
        assert stats.gc_mutator_ratio(500) == pytest.approx(0.1)
        assert stats.gc_mutator_ratio(0) == 0.0

    def test_max_pause(self):
        stats = GcStats()
        assert stats.max_pause_work == 0
        stats.record_pause(clock=10, kind="full", work=5, reclaimed=1, live=5)
        stats.record_pause(clock=20, kind="full", work=9, reclaimed=2, live=9)
        assert stats.max_pause_work == 9
        assert stats.pauses[0] == PauseRecord(
            clock=10, kind="full", work=5, reclaimed=1, live=5
        )

    def test_summary_keys(self):
        summary = GcStats().summary()
        for key in (
            "words_allocated",
            "mark_cons",
            "gc_mutator_ratio",
            "collections",
            "max_pause_work",
        ):
            assert key in summary
