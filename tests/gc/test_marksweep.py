"""Tests for the non-generational mark/sweep collector."""

from __future__ import annotations

import pytest

from repro.gc.collector import HeapExhausted
from repro.gc.marksweep import MarkSweepCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def setup(heap_words=100, **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = MarkSweepCollector(heap, roots, heap_words, **kwargs)
    return heap, roots, collector


class TestAllocation:
    def test_allocates_in_heap_space(self):
        heap, _, collector = setup()
        obj = collector.allocate(4)
        assert obj.space is collector.space
        assert collector.stats.words_allocated == 4

    def test_collects_when_full(self):
        heap, roots, collector = setup(heap_words=10)
        for _ in range(5):
            collector.allocate(2)  # all garbage (no roots)
        obj = collector.allocate(2)  # forces a collection
        assert collector.stats.collections == 1
        assert heap.contains_id(obj.obj_id)

    def test_exhaustion_without_expand(self):
        heap, roots, collector = setup(heap_words=10, auto_expand=False)
        frame = roots.push_frame()
        for _ in range(5):
            frame.push(collector.allocate(2))
        with pytest.raises(HeapExhausted):
            collector.allocate(2)

    def test_auto_expand_keeps_load_factor(self):
        heap, roots, collector = setup(heap_words=10, load_factor=2.0)
        frame = roots.push_frame()
        for _ in range(20):
            frame.push(collector.allocate(2))
        live = sum(1 for _ in frame.ids()) * 2
        assert collector.space.capacity >= live


class TestCollection:
    def test_preserves_rooted_objects(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        kept = collector.allocate(4)
        frame.push(kept)
        collector.allocate(4)  # garbage
        collector.collect()
        assert heap.contains_id(kept.obj_id)
        assert heap.object_count == 1

    def test_preserves_transitively_reachable(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        a = collector.allocate(2, field_count=1)
        b = collector.allocate(2, field_count=1)
        c = collector.allocate(2)
        heap.write_field(a, 0, b)
        heap.write_field(b, 0, c)
        frame.push(a)
        collector.collect()
        assert heap.object_count == 3

    def test_reclaims_cycles(self):
        heap, roots, collector = setup()
        a = collector.allocate(2, field_count=1)
        b = collector.allocate(2, field_count=1)
        heap.write_field(a, 0, b)
        heap.write_field(b, 0, a)
        collector.collect()
        assert heap.object_count == 0

    def test_work_accounting(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        frame.push(collector.allocate(4))
        collector.allocate(6)  # garbage
        collector.collect()
        stats = collector.stats
        assert stats.words_marked == 4
        assert stats.words_swept == 10
        assert stats.words_reclaimed == 6
        assert stats.mark_cons == pytest.approx(4 / 10)

    def test_pause_records(self):
        heap, roots, collector = setup()
        collector.allocate(4)
        collector.collect()
        (pause,) = collector.stats.pauses
        assert pause.kind == "full"
        assert pause.reclaimed == 4
        assert pause.live == 0

    def test_integrity_after_collection(self):
        heap, roots, collector = setup()
        frame = roots.push_frame()
        for index in range(10):
            obj = collector.allocate(2, field_count=1)
            if index % 3 == 0:
                frame.push(obj)
        collector.collect()
        heap.check_integrity()


class TestValidation:
    def test_rejects_bad_heap_size(self):
        with pytest.raises(ValueError):
            setup(heap_words=0)

    def test_rejects_bad_load_factor(self):
        with pytest.raises(ValueError):
            setup(load_factor=1.0)

    def test_describe(self):
        _, _, collector = setup()
        assert "mark-sweep" in collector.describe()
