"""Property-based reachability-safety tests across every collector.

The fundamental GC contract: no matter what the mutator does —
allocate, store pointers, drop roots, trigger collections — an object
reachable from the roots is never reclaimed, and the heap's structural
invariants hold.  Hypothesis drives randomized mutator programs
against all five collectors through the Machine (so every store goes
through the write barrier, exactly as benchmark code's do).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gc.collector import HeapExhausted

from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum

from tests.conftest import COLLECTOR_FACTORIES

#: One mutator action: (opcode, operand).
ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "drop", "link", "unlink", "collect"]),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=120,
)


def run_program(machine: Machine, actions) -> list:
    """Interpret a random action list; returns the live pair handles."""
    live: list = []
    for opcode, operand in actions:
        try:
            if opcode == "alloc":
                live.append(machine.cons(Fixnum(operand % 1000), None))
            elif opcode == "drop" and live:
                live.pop(operand % len(live))
            elif opcode == "link" and len(live) >= 2:
                src = live[operand % len(live)]
                dst = live[(operand // 7) % len(live)]
                machine.set_cdr(src, dst)
            elif opcode == "unlink" and live:
                machine.set_cdr(live[operand % len(live)], None)
            elif opcode == "collect":
                machine.collect()
        except HeapExhausted:
            # A legitimate outcome for tiny heaps under a pathological
            # action sequence; safety still must hold below.
            break
    return live


@pytest.mark.parametrize("kind", sorted(COLLECTOR_FACTORIES))
class TestReachabilitySafety:
    @given(actions=ACTIONS)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_live_objects_survive_everything(self, kind, actions):
        machine = Machine(COLLECTOR_FACTORIES[kind])
        live = run_program(machine, actions)
        machine.heap.check_integrity()
        for handle in live:
            # The handle's object must still be resident and its car
            # intact (not recycled or clobbered).
            assert machine.heap.contains_id(handle.obj_id)
            car = machine.car(handle)
            assert isinstance(car, Fixnum)

    @given(actions=ACTIONS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_explicit_collect_preserves_structure(self, kind, actions):
        # Random links can make the structures cyclic, so the snapshot
        # compares shallow (car, cdr-identity) views, not deep trees.
        machine = Machine(COLLECTOR_FACTORIES[kind])
        live = run_program(machine, actions)

        def view(handle):
            cdr = machine.cdr(handle)
            return (
                machine.car(handle),
                cdr.obj_id if hasattr(cdr, "obj_id") else cdr,
            )

        snapshot = [view(handle) for handle in live]
        try:
            machine.collect()
        except HeapExhausted:
            return
        machine.heap.check_integrity()
        for handle, before in zip(live, snapshot):
            assert view(handle) == before


@pytest.mark.parametrize("kind", sorted(COLLECTOR_FACTORIES))
def test_deep_list_survives_collection_pressure(kind):
    """A single long list built under constant collection pressure."""
    machine = Machine(COLLECTOR_FACTORIES[kind])
    head = None
    for index in range(300):
        head = machine.cons(Fixnum(index), head)
    # Walk it back and verify every element.
    value = head
    for index in range(299, -1, -1):
        assert machine.car(value) == Fixnum(index)
        value = machine.cdr(value)
    assert value is None
    machine.heap.check_integrity()


@pytest.mark.parametrize("kind", sorted(COLLECTOR_FACTORIES))
def test_garbage_is_eventually_reclaimed(kind):
    """Allocating garbage forever must not exhaust a bounded heap."""
    machine = Machine(COLLECTOR_FACTORIES[kind])
    for index in range(2_000):
        machine.cons(Fixnum(index), None)  # immediately dropped
    machine.collect()
    assert machine.live_words() == 0
