"""Property-based invariants for the generational and hybrid collectors.

Counterparts to tests/gc/test_nonpredictive_properties.py: hypothesis
drives randomized lifetime workloads (including tenuring
configurations) and checks the structural invariants after the run.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gc.collector import HeapExhausted
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator


class ListSchedule:
    def __init__(self, lifetimes: list[int]) -> None:
        self.lifetimes = lifetimes

    def lifetime_for(self, clock: int, index: int) -> int:
        return self.lifetimes[index % len(self.lifetimes)]


@given(
    lifetimes=st.lists(
        st.integers(min_value=1, max_value=500), min_size=1, max_size=40
    ),
    threshold=st.integers(min_value=1, max_value=4),
)
@settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_generational_invariants_with_tenuring(lifetimes, threshold):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = GenerationalCollector(
        heap,
        roots,
        [96, 512],
        auto_expand_oldest=True,
        promotion_threshold=threshold,
    )
    mutator = LifetimeDrivenMutator(collector, roots, ListSchedule(lifetimes))
    try:
        mutator.run(3_000)
    except HeapExhausted:
        pass
    heap.check_integrity()
    for obj_id in mutator.held_ids():
        assert heap.contains_id(obj_id)
    # Survival counts never name dead or promoted-to-oldest objects in
    # a stale generation.
    for obj_id in collector._survival_counts:
        assert heap.contains_id(obj_id)
        gen = collector.generation_index(heap.get(obj_id))
        assert gen is not None and gen < collector.generation_count - 1


@given(
    lifetimes=st.lists(
        st.integers(min_value=1, max_value=500), min_size=1, max_size=40
    ),
    initial_j=st.integers(min_value=0, max_value=3),
)
@settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_hybrid_invariants(lifetimes, initial_j):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = HybridCollector(
        heap, roots, 64, 6, 128, initial_j=initial_j
    )
    mutator = LifetimeDrivenMutator(collector, roots, ListSchedule(lifetimes))
    try:
        mutator.run(3_000)
    except HeapExhausted:
        pass
    heap.check_integrity()
    assert 0 <= collector.j <= collector.step_count // 2 or (
        collector.j == initial_j  # never collected yet
    )
    for obj_id in mutator.held_ids():
        assert heap.contains_id(obj_id)
    # Remembered-set entries only name resident objects... entries may
    # be stale (overwritten slots) but never reference freed sources
    # in a way that would crash the next trace.
    for obj_id, slot in collector.remset_steps.entries():
        if heap.contains_id(obj_id):
            assert slot < len(heap.get(obj_id).fields)


@pytest.mark.parametrize("threshold", [1, 2])
def test_generational_steady_state_reaches_equilibrium(threshold):
    """Long fixed-lifetime run: live population must stay bounded."""
    heap = SimulatedHeap()
    roots = RootSet()
    collector = GenerationalCollector(
        heap, roots, [128, 1_024], promotion_threshold=threshold
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, ListSchedule([300])
    )
    mutator.run(20_000)
    mutator.release_due()
    assert mutator.live_words <= 301
    # Resident garbage is bounded by the heap geometry, not growing
    # with the run length.
    assert heap.live_words <= (collector.oldest.capacity or 0) + 128
