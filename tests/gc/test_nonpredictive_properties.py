"""Property-based invariants of the non-predictive collector.

Hypothesis drives the collector with randomized lifetime workloads and
checks the structural invariants DESIGN.md §5 lists after every
collection: step geometry consistent, j within bounds, protected steps
holding only post-collection allocation, and no reachable object lost.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import FixedFractionPolicy, HalfEmptyPolicy
from repro.gc.collector import HeapExhausted
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator


class ListSchedule:
    """Lifetimes drawn from a hypothesis-provided list (cycled)."""

    def __init__(self, lifetimes: list[int]) -> None:
        self.lifetimes = lifetimes

    def lifetime_for(self, clock: int, index: int) -> int:
        return self.lifetimes[index % len(self.lifetimes)]


@given(
    lifetimes=st.lists(
        st.integers(min_value=1, max_value=400), min_size=1, max_size=40
    ),
    step_count=st.integers(min_value=2, max_value=10),
    algorithm=st.sampled_from(["stop-and-copy", "mark-sweep"]),
)
@settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_invariants_hold_under_random_workloads(
    lifetimes, step_count, algorithm
):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap, roots, step_count, 64, algorithm=algorithm
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, ListSchedule(lifetimes)
    )
    try:
        mutator.run(2_000)
    except HeapExhausted:
        pass  # workload may be too live for the heap; invariants still hold
    collector.check_step_invariants()
    heap.check_integrity()
    # Everything the mutator still holds must be resident.
    for obj_id in mutator.held_ids():
        assert heap.contains_id(obj_id)
    # Occupancy never exceeds the step geometry.
    assert heap.live_words <= step_count * 64


@given(
    g=st.floats(min_value=0.0, max_value=0.5),
    lifetimes=st.lists(
        st.integers(min_value=1, max_value=200), min_size=1, max_size=20
    ),
)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_fixed_fraction_policy_respects_constraints(g, lifetimes):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap, roots, 8, 64, policy=FixedFractionPolicy(g)
    )
    mutator = LifetimeDrivenMutator(collector, roots, ListSchedule(lifetimes))
    try:
        mutator.run(2_000)
    except HeapExhausted:
        pass
    assert 0 <= collector.j <= 4
    # The recommended constraint: steps 1..j empty right after each
    # collection implies protected steps only hold newer allocation;
    # at an arbitrary moment they at least never exceed capacity.
    for space in collector.steps[: collector.j]:
        assert space.used <= space.capacity


@pytest.mark.parametrize("algorithm", ["stop-and-copy", "mark-sweep"])
def test_post_collection_protected_steps_empty(algorithm):
    """With the §8.1 policy, steps 1..j are empty right after collection."""
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap, roots, 8, 64, policy=HalfEmptyPolicy(), algorithm=algorithm
    )
    mutator = LifetimeDrivenMutator(collector, roots, ListSchedule([100]))
    collections_seen = 0
    while collections_seen < 5:
        before = collector.stats.collections
        mutator.step()
        if collector.stats.collections > before:
            collections_seen += 1
            for space in collector.steps[: collector.j]:
                # The triggering allocation may already sit in the
                # highest free step; the protected prefix must hold
                # nothing else.
                assert space.used <= 1
