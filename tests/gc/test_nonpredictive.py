"""Tests for the non-predictive collector (paper Section 4 and 8)."""

from __future__ import annotations

import pytest

from repro.core.policy import FixedJPolicy, HalfEmptyPolicy
from repro.gc.collector import HeapExhausted
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet


def setup(step_count=6, step_words=10, **kwargs):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap, roots, step_count, step_words, **kwargs
    )
    return heap, roots, collector


class TestAllocationOrder:
    def test_fills_highest_numbered_step_first(self):
        heap, _, collector = setup()
        obj = collector.allocate(4)
        assert collector.step_number(obj) == 6

    def test_descends_when_step_fills(self):
        heap, _, collector = setup(step_count=3, step_words=4)
        first = collector.allocate(4)
        second = collector.allocate(4)
        assert collector.step_number(first) == 3
        assert collector.step_number(second) == 2

    def test_oversized_object_rejected(self):
        _, _, collector = setup(step_words=4)
        with pytest.raises(ValueError):
            collector.allocate(5)

    def test_bump_pointer_closes_slivers(self):
        # A step with a sliver too small for the request is closed;
        # later smaller objects do not reopen it.
        heap, _, collector = setup(step_count=3, step_words=5)
        collector.allocate(4)  # step 3, 1 word sliver
        big = collector.allocate(2)  # closes step 3, goes to step 2
        small = collector.allocate(1)  # still step 2
        assert collector.step_number(big) == 2
        assert collector.step_number(small) == 2


class TestCollection:
    def test_collection_triggered_when_all_steps_full(self):
        heap, roots, collector = setup(step_count=3, step_words=4)
        for _ in range(3):
            collector.allocate(4)  # garbage
        collector.allocate(4)
        assert collector.stats.collections == 1

    def test_renumbering_moves_protected_to_oldest(self):
        heap, roots, collector = setup(
            step_count=4, step_words=4, policy=FixedJPolicy(1), initial_j=1
        )
        frame = roots.push_frame()
        # Fill steps 4,3,2 with garbage, step 1 with a live object.
        for _ in range(3):
            collector.allocate(4)
        protected = collector.allocate(4)
        frame.push(protected)
        assert collector.step_number(protected) == 1
        collector.collect()
        # Renumbering: old step 1 becomes step k = 4 ("exchanged, not
        # collected").
        assert collector.step_number(protected) == 4
        collector.check_step_invariants()

    def test_protected_objects_survive_even_if_garbage(self):
        # "The collector essentially assumes that all objects in steps
        # 1 through j are live."
        heap, roots, collector = setup(
            step_count=4, step_words=4, policy=FixedJPolicy(1), initial_j=1
        )
        for _ in range(3):
            collector.allocate(4)
        doomed = collector.allocate(4)  # lands in step 1, unrooted
        assert collector.step_number(doomed) == 1
        collector.collect()
        assert heap.contains_id(doomed.obj_id)

    def test_collectable_garbage_reclaimed(self):
        heap, roots, collector = setup(step_count=4, step_words=4, initial_j=1)
        doomed = [collector.allocate(4) for _ in range(3)]
        collector.allocate(4)
        collector.collect()
        for obj in doomed:
            assert not heap.contains_id(obj.obj_id)

    def test_survivors_packed_into_highest_free_steps(self):
        heap, roots, collector = setup(
            step_count=4, step_words=4, policy=FixedJPolicy(0), initial_j=0
        )
        frame = roots.push_frame()
        survivors = []
        for _ in range(4):
            obj = collector.allocate(4)
            survivors.append(obj)
            frame.push(obj)
        collector.collect()
        # Everything lives: survivors should occupy the top steps.
        numbers = sorted(collector.step_number(obj) for obj in survivors)
        assert numbers == [1, 2, 3, 4]
        collector.check_step_invariants()

    def test_copy_work_counts_survivors_only(self):
        heap, roots, collector = setup(step_count=4, step_words=4, initial_j=0)
        frame = roots.push_frame()
        frame.push(collector.allocate(4))
        for _ in range(3):
            collector.allocate(4)
        collector.collect()
        assert collector.stats.words_copied == 4
        assert collector.stats.words_reclaimed == 12

    def test_policy_chooses_new_j_after_collection(self):
        heap, roots, collector = setup(
            step_count=8, step_words=4, policy=HalfEmptyPolicy(), initial_j=0
        )
        for _ in range(8):
            collector.allocate(4)  # all garbage
        collector.collect()
        # Everything died: all 8 steps empty, so j = min(8//2, 8//2) = 4.
        assert collector.j == 4

    def test_exhaustion_when_everything_lives(self):
        heap, roots, collector = setup(step_count=4, step_words=4, initial_j=0)
        frame = roots.push_frame()
        with pytest.raises(HeapExhausted):
            for _ in range(10):
                frame.push(collector.allocate(4))


class TestRememberedSet:
    def _fill_protected(self, collector, roots, frame):
        """Run one collection so there is a protected region to use."""
        for _ in range(collector.step_count):
            collector.allocate(4)
        collector.collect()

    def test_barrier_records_protected_to_collectable(self):
        heap, roots, collector = setup(step_count=4, step_words=8, initial_j=2)
        frame = roots.push_frame()
        old = collector.allocate(2, field_count=1)  # step 4 (collectable)
        frame.push(old)
        # Descend into the protected region (fill steps 4 and 3).
        for _ in range(7):
            collector.allocate(2)
        young = collector.allocate(2, field_count=1)
        frame.push(young)
        assert collector.step_number(young) <= 2  # protected
        collector.remember_store(young, 0, old)
        assert (young.obj_id, 0) in collector.remset

    def test_barrier_ignores_collectable_sources(self):
        heap, roots, collector = setup(step_count=4, step_words=8, initial_j=1)
        frame = roots.push_frame()
        a = collector.allocate(2, field_count=1)  # step 4
        b = collector.allocate(2, field_count=1)  # step 4
        frame.push(a)
        frame.push(b)
        collector.remember_store(a, 0, b)
        assert len(collector.remset) == 0

    def test_remset_keeps_collectable_target_alive(self):
        # An object reachable ONLY from a protected-step slot must
        # survive the collection of the collectable steps.
        heap, roots, collector = setup(step_count=4, step_words=4, initial_j=1)
        target = collector.allocate(4, field_count=0)  # step 4, unrooted
        collector.allocate(4)  # step 3, garbage
        collector.allocate(4)  # step 2, garbage
        holder = collector.allocate(4, field_count=1)  # step 1, protected
        heap.write_field(holder, 0, target)
        collector.remember_store(holder, 0, target)
        collector.collect()
        assert heap.contains_id(target.obj_id)
        assert heap.contains_id(holder.obj_id)
        heap.check_integrity()

    def test_remset_cleared_after_collection(self):
        heap, roots, collector = setup(step_count=4, step_words=4, initial_j=1)
        target = collector.allocate(4)
        collector.allocate(4)
        collector.allocate(4)
        holder = collector.allocate(4, field_count=1)
        heap.write_field(holder, 0, target)
        collector.remember_store(holder, 0, target)
        collector.collect()
        assert len(collector.remset) == 0

    def test_scan_protected_mode(self):
        # use_remset=False scans the protected steps wholesale (§8.6's
        # costly alternative) and must be equally safe.
        heap, roots, collector = setup(
            step_count=4, step_words=4, initial_j=1, use_remset=False
        )
        target = collector.allocate(4)
        collector.allocate(4)
        collector.allocate(4)
        holder = collector.allocate(4, field_count=1)
        heap.write_field(holder, 0, target)
        collector.collect()
        assert heap.contains_id(target.obj_id)


class TestReduceJ:
    def test_reduce_j_rescans_for_hidden_pointers(self):
        # A pointer created while both ends were protected becomes
        # protected-to-collectable when j drops; reduce_j must record
        # it or the target would be collected while reachable.
        heap, roots, collector = setup(step_count=6, step_words=4, initial_j=3)
        # Fill collectable steps 6..4 with garbage.
        for _ in range(3):
            collector.allocate(4)
        inner = collector.allocate(4)              # step 3 (protected)
        holder = collector.allocate(4, field_count=1)  # step 2 (protected)
        heap.write_field(holder, 0, inner)
        collector.remember_store(holder, 0, inner)  # both protected: no entry
        assert len(collector.remset) == 0
        collector.reduce_j(2)  # step 3 becomes collectable
        assert (holder.obj_id, 0) in collector.remset
        collector.allocate(4)  # fill step 1 so a collection can trigger
        collector.collect()
        assert heap.contains_id(inner.obj_id)

    def test_reduce_j_cannot_increase(self):
        _, _, collector = setup(initial_j=1)
        with pytest.raises(ValueError):
            collector.reduce_j(2)
        with pytest.raises(ValueError):
            collector.reduce_j(-1)

    def test_reduce_to_same_value_is_noop(self):
        _, _, collector = setup(initial_j=1)
        collector.reduce_j(1)
        assert collector.j == 1


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            setup(step_count=1)
        with pytest.raises(ValueError):
            setup(step_words=0)
        with pytest.raises(ValueError):
            setup(initial_j=4)  # > k/2

    def test_describe(self):
        _, _, collector = setup()
        assert "non-predictive" in collector.describe()
