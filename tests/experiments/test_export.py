"""Tests for experiment-result serialization."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.experiments.export import to_jsonable
from repro.experiments.table2 import run_table2


@dataclass(frozen=True)
class _Inner:
    value: float


@dataclass(frozen=True)
class _Outer:
    name: str
    inner: _Inner
    numbers: tuple[int, ...]
    mapping: dict[float, str]


class TestToJsonable:
    def test_dataclass_becomes_tagged_dict(self):
        data = to_jsonable(_Inner(1.5))
        assert data == {"_type": "_Inner", "value": 1.5}

    def test_nesting_and_containers(self):
        outer = _Outer("x", _Inner(2.0), (1, 2), {3.5: "a"})
        data = to_jsonable(outer)
        assert data["inner"]["_type"] == "_Inner"
        assert data["numbers"] == [1, 2]
        assert data["mapping"] == {"3.5": "a"}

    def test_special_floats(self):
        assert to_jsonable(float("inf")) == "inf"
        assert to_jsonable(float("-inf")) == "-inf"
        assert to_jsonable(float("nan")) == "nan"

    def test_scalars_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True
        assert to_jsonable(42) == 42
        assert to_jsonable("s") == "s"

    def test_opaque_objects_are_reprd(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"

    def test_real_experiment_result_round_trips_through_json(self):
        result = run_table2()
        dumped = json.dumps(to_jsonable(result))
        loaded = json.loads(dumped)
        assert loaded["_type"] == "Table2Result"
        assert len(loaded["rows"]) == 6
        assert loaded["rows"][0]["name"] == "nbody"
