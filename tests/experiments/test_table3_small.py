"""Structural tests for the Table 3 driver at test scale.

The paper-shape assertions need scale 1 and live in
benchmarks/test_table3.py; these tests check the driver's mechanics
cheaply.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import GcGeometry
from repro.experiments.table3 import render_table3, run_table3


@pytest.fixture(scope="module")
def result():
    return run_table3(scale=0, geometry=GcGeometry())


class TestTable3Mechanics:
    def test_all_six_rows(self, result):
        assert [row.name for row in result.rows] == [
            "nbody",
            "nucleic2",
            "lattice",
            "10dynamic",
            "nboyer",
            "sboyer",
        ]

    def test_measurements_sane(self, result):
        for row in result.rows:
            assert row.words_allocated > 0
            assert 0 <= row.peak_live_words <= row.words_allocated
            assert row.semispace_words > 0
            assert row.stop_and_copy_ratio >= 0
            assert row.generational_ratio >= 0

    def test_row_lookup(self, result):
        assert result.row("lattice").name == "lattice"
        with pytest.raises(KeyError):
            result.row("nope")

    def test_same_allocation_under_both_collectors(self, result):
        # The column comes from the stop-and-copy run, but the programs
        # are deterministic, so it must be collector-independent; spot
        # check through a direct second run.
        from repro.experiments.harness import run_benchmark_under
        from repro.programs.registry import get_benchmark

        outcome = run_benchmark_under(
            get_benchmark("lattice"), "generational", scale=0
        )
        assert outcome.words_allocated == result.row("lattice").words_allocated

    def test_render(self, result):
        text = render_table3(result)
        assert "gc/mutator" in text
        assert "10dynamic" in text
