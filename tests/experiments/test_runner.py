"""Tests for the experiment registry and the cheap experiments."""

from __future__ import annotations

import pytest

from repro.experiments.equilibrium import run_equilibrium
from repro.experiments.runner import (
    EXPERIMENTS,
    experiment_names,
    run_experiment,
)
from repro.experiments.table2 import run_table2


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = experiment_names()
        for expected in (
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "equilibrium",
            "antiprediction",
            "tuning",
            "remset",
            "hazard",
            "promotion",
            "weakhyp",
        ):
            assert expected in names

    def test_names_unique(self):
        names = experiment_names()
        assert len(names) == len(set(names))

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_runner_returns_result_and_text(self):
        result, text = run_experiment("table2")
        assert result is not None
        assert isinstance(text, str) and text

    def test_artifact_descriptions_nonempty(self):
        for experiment in EXPERIMENTS:
            assert experiment.paper_artifact


class TestTable2:
    def test_lists_all_six(self):
        result = run_table2()
        assert [row.name for row in result.rows] == [
            "nbody",
            "nucleic2",
            "lattice",
            "10dynamic",
            "nboyer",
            "sboyer",
        ]

    def test_line_counts_positive(self):
        for row in run_table2().rows:
            assert row.lines_of_code > 50


class TestEquilibrium:
    def test_small_run_matches_equation_1(self):
        result = run_equilibrium(
            half_life=500.0, half_lives_to_run=16, samples=6
        )
        assert result.relative_error < 0.08

    def test_memorylessness_flat(self):
        result = run_equilibrium(
            half_life=800.0, half_lives_to_run=16, samples=6
        )
        for rate in result.cohort_survival[:3]:
            assert rate == pytest.approx(0.5, abs=0.1)
