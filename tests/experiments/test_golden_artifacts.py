"""Golden-artifact regression: experiments must match committed JSON.

The repository commits every experiment's JSON artifact.  These tests
regenerate a fast subset (equilibrium, hazard, remset) and compare the
fresh results against the committed files, with a small relative
tolerance on floats so legitimate platform noise never fails the
build while any real behavior change does.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments.export import to_jsonable
from repro.experiments.runner import run_experiment

ARTIFACTS = Path(__file__).resolve().parents[2] / "artifacts"

#: Experiments cheap enough to regenerate on every test run.
GOLDEN = ("equilibrium", "remset", "hazard")

#: Relative tolerance for floating-point artifact values.
RTOL = 0.05


def assert_matches(fresh, gold, path=""):
    """Recursive structural compare with float tolerance."""
    if isinstance(gold, dict):
        assert isinstance(fresh, dict), f"{path}: {type(fresh).__name__}"
        assert set(fresh) == set(gold), (
            f"{path}: keys {sorted(set(fresh) ^ set(gold))} differ"
        )
        for key in gold:
            assert_matches(fresh[key], gold[key], f"{path}.{key}")
    elif isinstance(gold, list):
        assert isinstance(fresh, list), f"{path}: {type(fresh).__name__}"
        assert len(fresh) == len(gold), (
            f"{path}: length {len(fresh)} != {len(gold)}"
        )
        for index, (a, b) in enumerate(zip(fresh, gold)):
            assert_matches(a, b, f"{path}[{index}]")
    elif isinstance(gold, bool) or gold is None or isinstance(gold, str):
        assert fresh == gold, f"{path}: {fresh!r} != {gold!r}"
    elif isinstance(gold, (int, float)):
        assert isinstance(fresh, (int, float)), f"{path}: not numeric"
        assert math.isclose(fresh, gold, rel_tol=RTOL, abs_tol=1e-9), (
            f"{path}: {fresh} != {gold} (rtol {RTOL})"
        )
    else:  # pragma: no cover - artifacts are plain JSON
        assert fresh == gold, f"{path}: {fresh!r} != {gold!r}"


@pytest.mark.parametrize("name", GOLDEN)
def test_experiment_matches_committed_artifact(name):
    artifact = ARTIFACTS / f"{name}.json"
    assert artifact.exists(), f"missing golden artifact {artifact}"
    gold = json.loads(artifact.read_text(encoding="utf-8"))
    result, _ = run_experiment(name)
    fresh = json.loads(json.dumps(to_jsonable(result)))
    assert_matches(fresh, gold, name)


def test_all_committed_artifacts_are_valid_json():
    names = sorted(p.stem for p in ARTIFACTS.glob("*.json"))
    assert names, "no committed artifacts found"
    for name in names:
        json.loads((ARTIFACTS / f"{name}.json").read_text(encoding="utf-8"))
