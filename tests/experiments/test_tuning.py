"""Tests for the tuning-parameter ablation (small configuration)."""

from __future__ import annotations

import pytest

from repro.core import analysis
from repro.experiments.tuning import render_tuning, run_tuning


@pytest.fixture(scope="module")
def result():
    return run_tuning(half_life=800.0, cycles=15)


class TestTuning:
    def test_j_zero_matches_nongenerational(self, result):
        row = result.row("j=0 (non-generational)")
        expected = analysis.nongenerational_mark_cons(result.load_factor)
        assert row.mark_cons == pytest.approx(expected, rel=0.10)

    def test_fixed_fractions_match_theory(self, result):
        for g, name in [(0.125, "fixed g=1/8"), (0.25, "fixed g=1/4")]:
            row = result.row(name)
            theory = analysis.mark_cons_ratio(g, result.load_factor)
            assert row.mark_cons == pytest.approx(theory.value, rel=0.12)

    def test_paper_rule_beats_nongenerational(self, result):
        paper = result.row("half-empty (paper §8.1)")
        baseline = result.row("j=0 (non-generational)")
        assert paper.mark_cons < baseline.mark_cons

    def test_scan_protected_same_markcons_more_root_work(self, result):
        remset = result.row("half-empty (paper §8.1)")
        scan = result.row("half-empty, scan-protected (§8.6 alternative)")
        # §8.6: "much cheaper to trace only these pointers than it
        # would be to trace every live pointer in steps 1..j" — the
        # copying work is identical but root tracing balloons.
        assert scan.mark_cons == pytest.approx(remset.mark_cons, rel=0.02)
        assert scan.roots_traced > remset.roots_traced

    def test_render(self, result):
        assert "policy" in render_tuning(result)
