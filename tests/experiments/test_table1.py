"""Tests for the Table 1 experiment."""

from __future__ import annotations

import pytest

from repro.experiments.table1 import (
    PAPER_TABLE1,
    render_table1,
    run_table1,
)


@pytest.fixture(scope="module")
def result():
    return run_table1()


class TestTable1:
    def test_reproduces_paper_rows_within_jitter(self, result):
        # The triggering allocation adds at most a couple of words of
        # placement jitter per entry; the paper's idealized numbers
        # must otherwise match exactly.
        assert result.max_deviation() <= 2

    def test_all_rows_present(self, result):
        assert set(result.rows) == set(PAPER_TABLE1)

    def test_mark_cons_is_one_fifth(self, result):
        assert result.mark_cons == pytest.approx(0.2, abs=0.01)

    def test_nongenerational_is_two_fifths(self, result):
        assert result.nongenerational_mark_cons == pytest.approx(
            0.4, abs=0.02
        )

    def test_total_live_at_collection_is_heap_half(self, result):
        # Right before the collection the heap is full: 5120 words of
        # the 7168-word heap live plus garbage; live = 2048.
        final = result.rows[5120]
        assert sum(final) == pytest.approx(2048, abs=8)

    def test_render_mentions_paper_values(self, result):
        text = render_table1(result)
        assert "0.200" in text
        assert "step 7" in text
