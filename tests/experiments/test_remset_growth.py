"""Tests for the §8.3 remembered-set growth experiment."""

from __future__ import annotations

import pytest

from repro.experiments.remset_growth import (
    render_remset_growth,
    run_remset_growth,
)


@pytest.fixture(scope="module")
def result():
    return run_remset_growth()


class TestRemsetGrowth:
    def test_conventional_remset_nearly_empty(self, result):
        # "For a conventional generational collector, this implies
        # that the remembered set is nearly empty."
        assert result.conventional_peak < 10

    def test_unconstrained_hybrid_remset_grows_with_data(self, result):
        # "...the remembered set may become very large unless the
        # garbage collector acts first."
        assert result.hybrid_unconstrained_peak > 300

    def test_valve_caps_growth(self, result):
        # §8.3: "its value can be reduced before those objects are
        # promoted".
        assert result.hybrid_capped_peak <= result.cap
        assert (
            result.hybrid_capped_peak < result.hybrid_unconstrained_peak / 4
        )

    def test_render(self, result):
        text = render_remset_growth(result)
        assert "conventional" in text
        assert "valve" in text
