"""Edge-case tests for the profile/survival experiment plumbing."""

from __future__ import annotations

import pytest

from repro.experiments.storage_profiles import traced_profile
from repro.experiments.survival_tables import traced_survival
from repro.runtime.values import Fixnum


def tiny_program(machine):
    keep = []
    for index in range(300):
        keep.append(machine.cons(Fixnum(index), None))
        if len(keep) > 20:
            keep.pop(0)


class TestTracedProfile:
    def test_runs_and_reports(self):
        result = traced_profile("tiny", tiny_program, epochs_per_run=10)
        assert result.words_allocated == 600
        assert result.epoch_words == 60
        assert result.profile.peak_live_words >= 40

    def test_rejects_too_few_epochs(self):
        with pytest.raises(ValueError):
            traced_profile("tiny", tiny_program, epochs_per_run=1)

    def test_rejects_microscopic_program(self):
        def nothing(machine):
            machine.cons(None, None)

        with pytest.raises(RuntimeError):
            traced_profile("nothing", nothing, epochs_per_run=10)


class TestTracedSurvival:
    def test_window_workload_has_low_survival(self):
        # A sliding window of 60 pairs over 600 allocations: objects
        # live ~120 words, so they populate the first 120-word age
        # bracket but never survive its 120-word horizon.
        def window_program(machine):
            keep = []
            for index in range(600):
                keep.append(machine.cons(Fixnum(index), None))
                if len(keep) > 60:
                    keep.pop(0)

        result = traced_survival(
            "window", window_program, steps_per_run=10, bracket_count=3
        )
        populated = [
            row for row in result.table.rows if row.alive_words > 0
        ]
        assert populated
        assert all(row.rate == 0.0 for row in populated)

    def test_immortal_workload_has_full_survival(self):
        def hoarder(machine):
            keep = []
            for index in range(300):
                keep.append(machine.cons(Fixnum(index), None))
            hoarder.keep = keep  # outlive the recorder's final sample

        result = traced_survival(
            "hoard", hoarder, steps_per_run=10, bracket_count=3
        )
        populated = [
            row for row in result.table.rows if row.alive_words > 0
        ]
        assert populated
        assert all(row.rate == 1.0 for row in populated)
