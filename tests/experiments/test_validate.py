"""Tests for the reproduction self-check battery."""

from __future__ import annotations

from repro.experiments import validate
from repro.experiments.validate import CheckResult, run_validation


class TestValidation:
    def test_all_checks_pass(self):
        results = run_validation()
        failures = [result for result in results if not result.passed]
        assert not failures, "\n".join(
            f"{result.name}: {result.detail}" for result in failures
        )

    def test_every_check_reports_detail(self):
        for result in run_validation():
            assert result.name
            assert result.detail

    def test_crashing_check_reported_not_raised(self, monkeypatch):
        def boom() -> CheckResult:
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(validate, "VALIDATIONS", (boom,))
        (result,) = run_validation()
        assert not result.passed
        assert "synthetic failure" in result.detail
