"""Tests for the promotion-policy ablation (small configuration)."""

from __future__ import annotations

import pytest

from repro.experiments.promotion import render_promotion, run_promotion


@pytest.fixture(scope="module")
def result():
    return run_promotion(phase_words=3_000, phases=15)


class TestPromotionAblation:
    def test_all_policies_measured(self, result):
        names = [row.policy for row in result.rows]
        assert len(names) == 4
        assert "hybrid non-predictive old area" in names

    def test_tenuring_trades_promotion_for_recopying(self, result):
        # Tenuring reduces promotion traffic but re-copies under-age
        # survivors within the nursery; the net mark/cons direction
        # depends on the nursery-to-phase ratio, so only the traffic
        # reduction is asserted and the costs must stay sane.
        promote_all = result.row("generational, promote after 1")
        tenured = result.row("generational, promote after 2")
        assert tenured.words_promoted <= promote_all.words_promoted
        assert 0.0 < tenured.mark_cons < 2.0

    def test_tenuring_reduces_promotion_traffic(self, result):
        promote_all = result.row("generational, promote after 1")
        tenured = result.row("generational, promote after 2")
        assert tenured.words_promoted <= promote_all.words_promoted

    def test_hybrid_at_least_competitive(self, result):
        best_generational = min(
            row.mark_cons for row in result.rows if "generational" in row.policy
        )
        hybrid = result.row("hybrid non-predictive old area")
        assert hybrid.mark_cons <= best_generational * 1.1

    def test_render(self, result):
        assert "Promotion-policy" in render_promotion(result)
