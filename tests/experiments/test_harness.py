"""Tests for the experiment harness (collector factories, outcomes)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    GcGeometry,
    collector_factory,
    run_benchmark_under,
)
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.programs.registry import get_benchmark


class TestFactories:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("mark-sweep", MarkSweepCollector),
            ("stop-and-copy", StopAndCopyCollector),
            ("generational", GenerationalCollector),
            ("non-predictive", NonPredictiveCollector),
            ("hybrid", HybridCollector),
        ],
    )
    def test_factory_builds_right_collector(self, kind, cls):
        factory = collector_factory(kind, GcGeometry())
        collector = factory(SimulatedHeap(), RootSet())
        assert isinstance(collector, cls)

    def test_unknown_kind(self):
        factory = collector_factory("compacting")
        with pytest.raises(ValueError):
            factory(SimulatedHeap(), RootSet())


class TestRunOutcome:
    @pytest.mark.parametrize(
        "kind",
        ["mark-sweep", "stop-and-copy", "generational", "hybrid"],
    )
    def test_lattice_runs_under_collector(self, kind):
        outcome = run_benchmark_under(
            get_benchmark("lattice"), kind, scale=0
        )
        assert outcome.benchmark == "lattice"
        assert outcome.collector == kind
        assert outcome.words_allocated > 0
        assert outcome.gc_work >= 0
        assert 0 <= outcome.mark_cons

    def test_semispace_reported_for_stop_and_copy_only(self):
        sc = run_benchmark_under(
            get_benchmark("lattice"), "stop-and-copy", scale=0
        )
        ms = run_benchmark_under(get_benchmark("lattice"), "mark-sweep", scale=0)
        assert sc.semispace_words is not None
        assert ms.semispace_words is None

    def test_result_carries_program_output(self):
        outcome = run_benchmark_under(
            get_benchmark("lattice"), "stop-and-copy", scale=0
        )
        assert outcome.result.map_count > 0
