"""Tests for the §9 hazard-regime experiment (small configuration)."""

from __future__ import annotations

import pytest

from repro.experiments.hazard import render_hazard, run_hazard


@pytest.fixture(scope="module")
def result():
    return run_hazard(shapes=(0.5, 1.0, 2.0), scale=1_000.0, cycles=12)


class TestHazardRegimes:
    def test_advantage_grows_with_hazard_shape(self, result):
        # §9: uniform or decreasing survival rates (increasing hazard)
        # are favorable to non-predictive collection; the advantage
        # should be monotone in the Weibull shape.
        advantages = [
            point.nonpredictive_advantage for point in result.points
        ]
        assert advantages == sorted(advantages)
        assert advantages[-1] > 2 * advantages[0]

    def test_decay_point_matches_antiprediction(self, result):
        point = result.point(1.0)
        assert point.nonpredictive_mark_cons < point.generational_mark_cons

    def test_render(self, result):
        text = render_hazard(result)
        assert "Weibull" in text
        assert "decay" in text
