"""Tests for the anti-prediction experiment (small configuration).

The full-size run lives in benchmarks/; here a scaled-down run checks
the paper's two ordering claims hold even at modest half-lives.
"""

from __future__ import annotations

import pytest

from repro.experiments.antiprediction import (
    render_antiprediction,
    run_antiprediction,
)


@pytest.fixture(scope="module")
def result():
    return run_antiprediction(half_life=800.0, cycles=15)


class TestOrderings:
    def test_conventional_generational_loses(self, result):
        # Section 3: under radioactive decay, condemning the youngest
        # generations collects the LEAST decayed storage.
        assert result.conventional_loses

    def test_nonpredictive_wins(self, result):
        # The paper's main result.
        assert result.nonpredictive_wins

    def test_mark_sweep_near_analytic_value(self, result):
        analytic = 1.0 / (result.load_factor - 1.0)
        assert result.mark_cons["mark-sweep"] == pytest.approx(
            analytic, rel=0.10
        )

    def test_all_four_collectors_measured(self, result):
        assert set(result.mark_cons) == {
            "mark-sweep",
            "stop-and-copy",
            "generational",
            "non-predictive",
        }

    def test_render(self, result):
        text = render_antiprediction(result)
        assert "non-predictive" in text
        assert "True (paper: True)" in text
