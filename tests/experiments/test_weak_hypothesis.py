"""Tests for the weak-hypothesis crossover experiment."""

from __future__ import annotations

import pytest

from repro.experiments.weak_hypothesis import (
    render_weak_hypothesis,
    run_weak_hypothesis,
)


@pytest.fixture(scope="module")
def result():
    return run_weak_hypothesis(
        heap_sizes=(3_072, 16_384), workload_words=150_000
    )


class TestCrossover:
    def test_conventional_wins_under_heavy_load(self, result):
        # §7's youth bet: at a heavy load the conventional collector's
        # minor collections beat both whole-heap alternatives.
        heavy = result.heaviest
        assert heavy.winner() == "generational"

    def test_nonpredictive_wins_under_light_load(self, result):
        light = result.lightest
        assert light.winner() == "non-predictive"
        # And the conventional collector's survival-fraction floor is
        # the worst cost in the room at light load.
        assert light.mark_cons["generational"] == max(
            light.mark_cons.values()
        )

    def test_every_collector_cheapens_with_headroom(self, result):
        for name in ("mark-sweep", "non-predictive"):
            assert (
                result.lightest.mark_cons[name]
                < result.heaviest.mark_cons[name]
            )

    def test_render(self, result):
        text = render_weak_hypothesis(result)
        assert "winner" in text
        assert "factor of 10" in text
