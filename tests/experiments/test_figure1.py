"""Tests for the Figure 1 experiment (analysis side; the simulation
cross-check at full size lives in benchmarks/)."""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import (
    render_figure1,
    run_figure1,
    simulate_relative_overhead,
)


class TestCurves:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(simulate=False, samples=40)

    def test_all_loads_present(self, result):
        assert set(result.curves) == {1.5, 2.0, 3.5, 5.0, 8.0}

    def test_heavier_load_lower_overhead(self, result):
        # At fixed g, larger L (lighter load) gives the generational
        # collector less advantage... actually more: check ordering at
        # g = 0.25 is monotone in L.
        values = {
            load: next(
                p.relative_overhead
                for p in points
                if abs(p.g - 0.25) < 0.01
            )
            for load, points in result.curves.items()
        }
        ordered = [values[load] for load in sorted(values)]
        assert ordered == sorted(ordered, reverse=True)

    def test_every_curve_dips_below_one(self, result):
        for load, points in result.curves.items():
            assert min(p.relative_overhead for p in points) < 1.0

    def test_render(self, result):
        text = render_figure1(result)
        assert "L = 3.5" in text
        assert "overhead" in text


class TestSimulationCrossCheck:
    def test_single_point_agrees_with_theory(self):
        point = simulate_relative_overhead(
            0.25, 3.5, half_life=1_000.0, cycles=15
        )
        assert point.exact
        assert point.relative_error < 0.08

    def test_run_with_simulation(self):
        result = run_figure1(
            loads=(3.5,),
            samples=10,
            simulate=True,
            simulation_gs=(0.25,),
            simulation_loads=(3.5,),
        )
        assert len(result.simulation) == 1
        assert result.max_simulation_error() < 0.10
