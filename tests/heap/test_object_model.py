"""Tests for heap objects and the slot-value tagging discipline."""

from __future__ import annotations

import pytest

from repro.heap.object_model import HeapObject, is_ref
from repro.runtime.values import Fixnum


class TestConstruction:
    def test_basic_fields(self):
        obj = HeapObject(7, 4, 2, birth=100, kind="pair")
        assert obj.obj_id == 7
        assert obj.size == 4
        assert obj.fields == [None, None]
        assert obj.birth == 100
        assert obj.kind == "pair"
        assert obj.space is None
        assert obj.payload is None

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            HeapObject(0, 0, 0, 0)

    def test_rejects_negative_field_count(self):
        with pytest.raises(ValueError):
            HeapObject(0, 2, -1, 0)

    def test_rejects_more_fields_than_words(self):
        with pytest.raises(ValueError):
            HeapObject(0, 2, 3, 0)

    def test_repr_mentions_kind_and_space(self):
        obj = HeapObject(1, 2, 2, 0, kind="pair")
        assert "pair" in repr(obj)
        assert "detached" in repr(obj)


class TestReferences:
    def test_references_skips_nulls_and_immediates(self):
        obj = HeapObject(0, 8, 5, 0)
        obj.fields[0] = 42  # a reference
        obj.fields[1] = None
        obj.fields[2] = True  # boolean immediate
        obj.fields[3] = Fixnum(7)  # fixnum immediate
        obj.fields[4] = 99  # a reference
        assert list(obj.references()) == [42, 99]

    def test_points_to(self):
        obj = HeapObject(0, 4, 2, 0)
        obj.fields[0] = 10
        assert obj.points_to(10)
        assert not obj.points_to(11)

    def test_points_to_ignores_fixnum_collision(self):
        # A Fixnum(10) immediate must not look like a pointer to id 10.
        obj = HeapObject(0, 4, 2, 0)
        obj.fields[0] = Fixnum(10)
        assert not obj.points_to(10)


class TestIsRef:
    def test_ints_are_refs(self):
        assert is_ref(0)
        assert is_ref(12345)

    def test_non_ints_are_not(self):
        assert not is_ref(None)
        assert not is_ref(True)  # bool is excluded deliberately
        assert not is_ref(False)
        assert not is_ref("x")
        assert not is_ref(1.5)
        assert not is_ref(Fixnum(3))
