"""Tests for the root set: globals, shadow stack, providers."""

from __future__ import annotations

import pytest

from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet


def obj(obj_id: int) -> HeapObject:
    return HeapObject(obj_id, 1, 0, 0)


class TestGlobals:
    def test_set_and_enumerate(self):
        roots = RootSet()
        roots.set_global("a", obj(1))
        roots.set_global("b", obj(2))
        assert sorted(roots.ids()) == [1, 2]

    def test_none_global_not_enumerated(self):
        roots = RootSet()
        roots.set_global("a", None)
        assert list(roots.ids()) == []

    def test_overwrite(self):
        roots = RootSet()
        roots.set_global("a", obj(1))
        roots.set_global("a", obj(2))
        assert list(roots.ids()) == [2]

    def test_remove(self):
        roots = RootSet()
        roots.set_global("a", obj(1))
        roots.remove_global("a")
        assert list(roots.ids()) == []
        assert roots.get_global_id("a") is None


class TestShadowStack:
    def test_frames_enumerate_in_order(self):
        roots = RootSet()
        frame1 = roots.push_frame()
        frame1.push(obj(1))
        frame2 = roots.push_frame()
        frame2.push(obj(2))
        assert list(roots.ids()) == [1, 2]
        assert roots.frame_depth == 2

    def test_pop_requires_top_frame(self):
        roots = RootSet()
        frame1 = roots.push_frame()
        roots.push_frame()
        with pytest.raises(ValueError):
            roots.pop_frame(frame1)

    def test_pop_removes_roots(self):
        roots = RootSet()
        frame = roots.push_frame()
        frame.push(obj(1))
        roots.pop_frame(frame)
        assert list(roots.ids()) == []

    def test_slot_update(self):
        roots = RootSet()
        frame = roots.push_frame()
        slot = frame.push(obj(1))
        frame.set(slot, None)
        assert list(roots.ids()) == []
        frame.set_id(slot, 9)
        assert list(roots.ids()) == [9]
        assert frame.get_id(slot) == 9

    def test_push_id(self):
        roots = RootSet()
        frame = roots.push_frame()
        frame.push_id(5)
        frame.push_id(None)
        assert list(roots.ids()) == [5]
        assert len(frame) == 2


class TestProviders:
    def test_provider_ids_included(self):
        roots = RootSet()
        handles = {10, 20}
        roots.add_provider(lambda: list(handles))
        assert sorted(roots.ids()) == [10, 20]
        handles.add(30)
        assert sorted(roots.ids()) == [10, 20, 30]

    def test_len_counts_everything(self):
        roots = RootSet()
        roots.set_global("a", obj(1))
        frame = roots.push_frame()
        frame.push(obj(2))
        roots.add_provider(lambda: [3, 4])
        assert len(roots) == 4
