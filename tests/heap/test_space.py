"""Tests for spaces and occupancy accounting."""

from __future__ import annotations

import pytest

from repro.heap.object_model import HeapObject
from repro.heap.space import Space, SpaceFull


def make_obj(obj_id: int, size: int) -> HeapObject:
    return HeapObject(obj_id, size, 0, 0)


class TestOccupancy:
    def test_starts_empty(self):
        space = Space("s", 100)
        assert space.used == 0
        assert space.free == 100
        assert space.is_empty()
        assert space.object_count == 0

    def test_add_updates_accounting(self):
        space = Space("s", 100)
        obj = make_obj(1, 30)
        space.add(obj)
        assert space.used == 30
        assert space.free == 70
        assert obj.space is space
        assert space.contains(obj)

    def test_remove_updates_accounting(self):
        space = Space("s", 100)
        obj = make_obj(1, 30)
        space.add(obj)
        space.remove(obj)
        assert space.used == 0
        assert obj.space is None
        assert not space.contains(obj)

    def test_fits(self):
        space = Space("s", 10)
        space.add(make_obj(1, 6))
        assert space.fits(4)
        assert not space.fits(5)

    def test_overflow_raises_space_full(self):
        space = Space("s", 10)
        space.add(make_obj(1, 8))
        with pytest.raises(SpaceFull) as excinfo:
            space.add(make_obj(2, 3))
        assert excinfo.value.space is space
        assert excinfo.value.requested == 3

    def test_exact_fill_allowed(self):
        space = Space("s", 10)
        space.add(make_obj(1, 10))
        assert space.free == 0

    def test_duplicate_add_rejected(self):
        space = Space("s", 100)
        obj = make_obj(1, 5)
        space.add(obj)
        with pytest.raises(ValueError):
            space.add(obj)

    def test_remove_absent_rejected(self):
        space = Space("s", 100)
        with pytest.raises(KeyError):
            space.remove(make_obj(1, 5))

    def test_unbounded_space(self):
        space = Space("s", None)
        assert space.fits(10**12)
        space.add(make_obj(1, 10**9))
        assert space.used == 10**9

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Space("s", -1)


class TestIteration:
    def test_objects_in_insertion_order(self):
        space = Space("s", 100)
        objs = [make_obj(index, 1) for index in range(5)]
        for obj in objs:
            space.add(obj)
        assert list(space.objects()) == objs
        assert list(space.object_ids()) == [0, 1, 2, 3, 4]
