"""Seeded property tests for the flat struct-of-arrays backend.

The flat heap's lazy-deletion id tables and packed state words have
exactly the failure modes a copying collector does — stale forwarding
entries, position renumbering, interval sweeps over permuted id lists
— so each property here drives one of them with randomized workloads
against a model, with a seed to reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.harness import GcGeometry, collector_factory
from repro.heap.flat import FlatHeap
from repro.heap.heap import HeapError
from repro.heap.space import SpaceFull
from repro.verify import generate_script
from repro.verify.replay import replay


def _resident_ids(space):
    return list(space.object_ids())


class TestArenaGrowth:
    """Arenas only grow; exhaustion of a space leaves the heap sound."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_alloc_free_cycles(self, seed):
        rng = random.Random(seed)
        heap = FlatHeap()
        space = heap.add_space("pool", capacity=64)
        live: list[int] = []
        exhaustions = 0
        for _ in range(400):
            arena = len(heap._hdr)
            size = rng.randint(1, 6)
            try:
                obj = heap.allocate(size, rng.randint(0, size), space)
            except SpaceFull:
                exhaustions += 1
                rng.shuffle(live)
                for oid in live[: len(live) // 2 + 1]:
                    heap.free(heap.get(oid))
                del live[: len(live) // 2 + 1]
            else:
                live.append(obj.obj_id)
                # Ids are append-only: the arena never shrinks and the
                # new object lands at its end.
                assert len(heap._hdr) == arena + 1
                assert obj.obj_id == arena
            assert space.used <= 64
            heap.check_integrity()
        assert exhaustions > 0, "capacity never hit; workload too small"
        assert sorted(_resident_ids(space)) == sorted(live)

    def test_allocation_into_full_space_never_partially_commits(self):
        heap = FlatHeap()
        space = heap.add_space("pool", capacity=8)
        heap.allocate(8, 0, space)
        arena = len(heap._hdr)
        count = heap.object_count
        with pytest.raises(SpaceFull):
            heap.allocate(1, 0, space)
        assert len(heap._hdr) == arena
        assert heap.object_count == count
        heap.check_integrity()


class TestStateAliasing:
    """Stale id-table entries must never alias a live position."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_moves_keep_tables_consistent(self, seed):
        rng = random.Random(seed)
        heap = FlatHeap()
        spaces = [heap.add_space(f"s{i}", capacity=None) for i in range(4)]
        model: dict[int, int] = {}
        for i in range(120):
            obj = heap.allocate(1, 0, spaces[i % 4])
            model[obj.obj_id] = i % 4
        for _ in range(60):
            movers = rng.sample(sorted(model), rng.randint(1, 20))
            target = rng.randrange(4)
            heap.move_ids(movers, spaces[target])
            for oid in movers:
                model[oid] = target
            heap.check_integrity()
            for index, space in enumerate(spaces):
                expected = {oid for oid, s in model.items() if s == index}
                assert set(_resident_ids(space)) == expected

    def test_wrong_space_claim_is_detected(self):
        # The stale-forward fault injector rewires an object's claimed
        # space through the raw setter; the auditor must notice the
        # accounting mismatch on the very next integrity pass.
        heap = FlatHeap()
        home = heap.add_space("home", capacity=None)
        wrong = heap.add_space("wrong", capacity=None)
        obj = heap.allocate(2, 0, home)
        heap.allocate(1, 0, home)
        obj.space = wrong
        with pytest.raises(HeapError):
            heap.check_integrity()

    def test_detached_claim_is_detected(self):
        heap = FlatHeap()
        home = heap.add_space("home", capacity=None)
        obj = heap.allocate(1, 0, home)
        obj.space = None
        with pytest.raises(HeapError):
            heap.check_integrity()

    def test_dangling_claim_rejected_by_setter(self):
        heap = FlatHeap()
        home = heap.add_space("home", capacity=None)
        obj = heap.allocate(1, 0, home)
        heap.free(heap.get(obj.obj_id))
        with pytest.raises(HeapError):
            obj.space = home


class TestRenumberingStability:
    """Sweeps renumber positions but never reorder survivors."""

    @pytest.mark.parametrize("seed", range(8))
    def test_repeated_sweeps_preserve_survivor_order(self, seed):
        rng = random.Random(seed)
        heap = FlatHeap()
        space = heap.add_space("region", capacity=None)
        other = heap.add_space("other", capacity=None)
        for _ in range(100):
            heap.allocate(1, 0, space)
        # Shuffle some residents through another space and back so the
        # id list is a non-trivial permutation, not a sorted run.
        out = rng.sample(list(space.object_ids()), 30)
        heap.move_ids(out, other)
        heap.move_ids(out, space)
        while space.object_count > 4:
            order = _resident_ids(space)
            marked = set(rng.sample(order, int(len(order) * 0.7)))
            heap.free_unmarked(space, marked)
            assert _resident_ids(space) == [
                oid for oid in order if oid in marked
            ]
            heap.check_integrity()

    def test_interval_sweep_requires_a_true_interval(self):
        # Regression: the one-slice kill of a fully-dead id range must
        # prove the id set *is* an interval.  Judging by the first and
        # last entries alone is fooled by a list like [5, 1, 2, 3, 9]:
        # the span 5..9 equals the length, yet zeroing it kills ids
        # 6-8 (residents of another space) and misses 1-3.
        heap = FlatHeap()
        other = heap.add_space("other", capacity=None)
        region = heap.add_space("region", capacity=None)
        for _ in range(5):
            heap.allocate(1, 0, other)  # ids 0-4
        heap.allocate(1, 0, region)  # id 5
        for _ in range(3):
            heap.allocate(1, 0, other)  # ids 6-8
        heap.move_ids([1, 2, 3], region)
        heap.allocate(1, 0, region)  # id 9 -> region lists [5,1,2,3,9]
        assert _resident_ids(region) == [5, 1, 2, 3, 9]
        reclaimed = heap.free_unmarked(region, set())
        assert reclaimed == 5
        heap.check_integrity()
        assert _resident_ids(region) == []
        assert set(_resident_ids(other)) == {0, 4, 6, 7, 8}

    def test_partition_of_permuted_ids(self):
        heap = FlatHeap()
        space = heap.add_space("region", capacity=None)
        other = heap.add_space("other", capacity=None)
        ids = [heap.allocate(1, 0, space).obj_id for _ in range(12)]
        heap.move_ids([ids[1], ids[7]], other)
        heap.move_ids([ids[7], ids[1]], space)
        order = _resident_ids(space)
        marked = set(ids[::3])
        survivors, reclaimed = heap.partition_space(space, marked)
        assert survivors == [oid for oid in order if oid in marked]
        assert reclaimed == len(ids) - len(survivors)
        heap.check_integrity()


#: Tiny generations so promotions (and remset migration) happen every
#: few allocations rather than once per script.
PROMOTION_GEOMETRY = GcGeometry(
    nursery_words=24,
    semispace_words=96,
    step_words=24,
    step_count=8,
)


class TestRemsetMigrationAcrossPromotion:
    """Checked-mode replays with promotion-heavy geometry: the audit
    revalidates remembered sets after every collection, so a barrier
    entry lost or left stale across a promotion fails the replay."""

    @pytest.mark.parametrize("seed", (1, 9, 23))
    @pytest.mark.parametrize("kind", ("generational", "hybrid"))
    def test_promotion_heavy_scripts_stay_sound(self, kind, seed):
        script = generate_script(250, seed, max_live_words=40)
        factory = collector_factory(kind, PROMOTION_GEOMETRY)
        result = replay(
            script, factory, checked=True, backend="flat", name=kind
        )
        assert result.collections > 0, "no collections; geometry too big"
