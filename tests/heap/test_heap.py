"""Tests for the simulated heap: allocation, movement, tracing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heap.heap import HeapError, SimulatedHeap
from repro.heap.space import SpaceFull
from repro.runtime.values import Fixnum


@pytest.fixture
def heap():
    return SimulatedHeap()


class TestAllocation:
    def test_clock_advances_by_size(self, heap):
        space = heap.add_space("s", 100)
        heap.allocate(3, 0, space)
        heap.allocate(5, 0, space)
        assert heap.clock == 8
        assert heap.objects_allocated == 2

    def test_birth_is_preallocation_clock(self, heap):
        space = heap.add_space("s", 100)
        first = heap.allocate(4, 0, space)
        second = heap.allocate(4, 0, space)
        assert first.birth == 0
        assert second.birth == 4

    def test_ids_unique_and_increasing(self, heap):
        space = heap.add_space("s", 100)
        ids = [heap.allocate(1, 0, space).obj_id for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_static_allocation_skips_clock(self, heap):
        space = heap.add_space("static", None)
        heap.allocate(10, 0, space, advance_clock=False)
        assert heap.clock == 0
        assert heap.objects_allocated == 0

    def test_full_space_raises_without_clock_advance(self, heap):
        space = heap.add_space("s", 4)
        heap.allocate(4, 0, space)
        with pytest.raises(SpaceFull):
            heap.allocate(1, 0, space)
        assert heap.clock == 4

    def test_ids_never_reused_after_free(self, heap):
        space = heap.add_space("s", 100)
        obj = heap.allocate(1, 0, space)
        freed_id = obj.obj_id
        heap.free(obj)
        fresh = heap.allocate(1, 0, space)
        assert fresh.obj_id != freed_id


class TestSpaces:
    def test_duplicate_space_rejected(self, heap):
        heap.add_space("s", 10)
        with pytest.raises(ValueError):
            heap.add_space("s", 10)

    def test_unknown_space_lookup(self, heap):
        with pytest.raises(KeyError):
            heap.space("nope")

    def test_remove_space_requires_empty(self, heap):
        space = heap.add_space("s", 10)
        heap.allocate(1, 0, space)
        with pytest.raises(HeapError):
            heap.remove_space(space)

    def test_move_between_spaces(self, heap):
        a = heap.add_space("a", 10)
        b = heap.add_space("b", 10)
        obj = heap.allocate(4, 0, a)
        heap.move(obj, b)
        assert obj.space is b
        assert a.used == 0
        assert b.used == 4

    def test_move_to_full_space_raises(self, heap):
        a = heap.add_space("a", 10)
        b = heap.add_space("b", 3)
        obj = heap.allocate(4, 0, a)
        with pytest.raises(SpaceFull):
            heap.move(obj, b)

    def test_live_words_sums_spaces(self, heap):
        a = heap.add_space("a", 10)
        b = heap.add_space("b", 10)
        heap.allocate(4, 0, a)
        heap.allocate(5, 0, b)
        assert heap.live_words == 9


class TestFields:
    def test_write_and_read_reference(self, heap):
        space = heap.add_space("s", 10)
        a = heap.allocate(2, 2, space)
        b = heap.allocate(2, 0, space)
        heap.write_field(a, 0, b)
        assert heap.read_field(a, 0) is b
        heap.write_field(a, 0, None)
        assert heap.read_field(a, 0) is None

    def test_write_slot_immediate(self, heap):
        space = heap.add_space("s", 10)
        a = heap.allocate(2, 2, space)
        heap.write_slot(a, 0, Fixnum(5))
        assert heap.read_slot(a, 0) == Fixnum(5)
        with pytest.raises(HeapError):
            heap.read_field(a, 0)  # typed read rejects immediates

    def test_dangling_store_rejected_in_checked_mode(self, heap):
        heap.checked = True
        space = heap.add_space("s", 10)
        a = heap.allocate(2, 2, space)
        b = heap.allocate(2, 0, space)
        heap.free(b)
        with pytest.raises(HeapError):
            heap.write_slot(a, 0, b.obj_id)

    def test_dangling_store_allowed_unchecked(self, heap):
        # The per-store probe is off by default (it costs a dict lookup
        # on every pointer write); the dangling slot surfaces later via
        # check_integrity instead of at the store site.
        assert heap.checked is False
        space = heap.add_space("s", 10)
        a = heap.allocate(2, 2, space)
        b = heap.allocate(2, 0, space)
        heap.free(b)
        heap.write_slot(a, 0, b.obj_id)
        assert heap.read_slot(a, 0) == b.obj_id
        with pytest.raises(HeapError):
            heap.check_integrity()

    def test_bad_slot_rejected(self, heap):
        space = heap.add_space("s", 10)
        a = heap.allocate(2, 1, space)
        with pytest.raises(HeapError):
            heap.write_field(a, 5, None)
        with pytest.raises(HeapError):
            heap.read_slot(a, 5)

    def test_get_dangling_id(self, heap):
        with pytest.raises(HeapError):
            heap.get(123)


class TestTracing:
    def _chain(self, heap, space, length):
        objs = [heap.allocate(2, 1, space) for _ in range(length)]
        for a, b in zip(objs, objs[1:]):
            heap.write_field(a, 0, b)
        return objs

    def test_reachability_follows_chain(self, heap):
        space = heap.add_space("s", 100)
        objs = self._chain(heap, space, 5)
        reached = heap.reachable_from([objs[0].obj_id])
        assert reached == {obj.obj_id for obj in objs}

    def test_reachability_respects_cuts(self, heap):
        space = heap.add_space("s", 100)
        objs = self._chain(heap, space, 5)
        heap.write_field(objs[2], 0, None)
        reached = heap.reachable_from([objs[0].obj_id])
        assert reached == {objs[0].obj_id, objs[1].obj_id, objs[2].obj_id}

    def test_cycles_terminate(self, heap):
        space = heap.add_space("s", 100)
        a = heap.allocate(2, 1, space)
        b = heap.allocate(2, 1, space)
        heap.write_field(a, 0, b)
        heap.write_field(b, 0, a)
        assert heap.reachable_from([a.obj_id]) == {a.obj_id, b.obj_id}

    def test_visit_called_once_per_object(self, heap):
        space = heap.add_space("s", 100)
        objs = self._chain(heap, space, 4)
        heap.write_field(objs[-1], 0, objs[0])  # cycle
        visited = []
        heap.reachable_from(
            [objs[0].obj_id, objs[1].obj_id],
            visit=lambda obj: visited.append(obj.obj_id),
        )
        assert sorted(visited) == sorted(obj.obj_id for obj in objs)

    def test_empty_roots(self, heap):
        assert heap.reachable_from([]) == set()


class TestIntegrity:
    def test_clean_heap_passes(self, heap):
        space = heap.add_space("s", 100)
        a = heap.allocate(2, 1, space)
        b = heap.allocate(2, 0, space)
        heap.write_field(a, 0, b)
        heap.check_integrity()

    def test_detects_accounting_drift(self, heap):
        space = heap.add_space("s", 100)
        heap.allocate(2, 0, space)
        space.used = 1  # corrupt deliberately
        with pytest.raises(HeapError):
            heap.check_integrity()

    def test_detects_dangling_reference(self, heap):
        space = heap.add_space("s", 100)
        a = heap.allocate(2, 1, space)
        b = heap.allocate(2, 0, space)
        heap.write_field(a, 0, b)
        # Free b behind the heap's back (bypassing the field check).
        space.remove(b)
        heap._objects.pop(b.obj_id)
        with pytest.raises(HeapError):
            heap.check_integrity()


class TestPropertyBased:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=16), min_size=1, max_size=60
        ),
        free_mask=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    @settings(max_examples=80)
    def test_accounting_invariant_under_alloc_free(self, sizes, free_mask):
        heap = SimulatedHeap()
        space = heap.add_space("s", None)
        objs = [heap.allocate(size, 0, space) for size in sizes]
        for obj, do_free in zip(objs, free_mask):
            if do_free:
                heap.free(obj)
        kept = [
            obj
            for obj, do_free in zip(objs, free_mask + [False] * len(objs))
            if not do_free
        ]
        assert space.used == sum(obj.size for obj in kept)
        assert heap.clock == sum(sizes)
        heap.check_integrity()
