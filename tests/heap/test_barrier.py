"""Tests for the write barrier dispatch and accounting."""

from __future__ import annotations

from repro.heap.barrier import WriteBarrier
from repro.heap.object_model import HeapObject


def obj(obj_id: int) -> HeapObject:
    return HeapObject(obj_id, 2, 2, 0)


class TestBarrier:
    def test_counts_all_stores(self):
        barrier = WriteBarrier()
        barrier.on_store(obj(1), 0, obj(2))
        barrier.on_store(obj(1), 1, None)
        assert barrier.stores == 2
        assert barrier.pointer_stores == 1

    def test_hook_fires_for_every_store_including_none(self):
        # A snapshot-at-the-beginning collector must see the deleted
        # old value even when the new value is not a pointer, so the
        # hook fires on every store; None marks a non-pointer value.
        seen = []
        barrier = WriteBarrier(
            lambda src, slot, dst: seen.append(
                (src.obj_id, slot, dst.obj_id if dst else None)
            )
        )
        barrier.on_store(obj(1), 0, obj(2))
        barrier.on_store(obj(1), 1, None)
        assert seen == [(1, 0, 2), (1, 1, None)]

    def test_hook_can_be_swapped(self):
        first, second = [], []
        barrier = WriteBarrier(lambda *args: first.append(args))
        barrier.on_store(obj(1), 0, obj(2))
        barrier.set_hook(lambda *args: second.append(args))
        barrier.on_store(obj(1), 0, obj(3))
        assert len(first) == 1
        assert len(second) == 1

    def test_no_hook_is_fine(self):
        barrier = WriteBarrier()
        barrier.on_store(obj(1), 0, obj(2))
        assert barrier.pointer_stores == 1

    def test_reset_counters(self):
        barrier = WriteBarrier()
        barrier.on_store(obj(1), 0, obj(2))
        barrier.reset_counters()
        assert barrier.stores == 0
        assert barrier.pointer_stores == 0
