"""Tests for remembered sets (paper Sections 8.3/8.4)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.heap.remset import RememberedSet


class TestRecording:
    def test_barrier_entry(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        assert (1, 0) in remset
        assert len(remset) == 1
        assert remset.barrier_size == 1
        assert remset.promotion_size == 0

    def test_promotion_entry_kept_separate(self):
        # §8.4: promotion-entered entries are kept separate from
        # side-effect-entered entries.
        remset = RememberedSet()
        remset.record_promotion(1, 0)
        remset.record_barrier(2, 1)
        assert remset.promotion_size == 1
        assert remset.barrier_size == 1
        remset.clear_promotion_entries()
        assert (1, 0) not in remset
        assert (2, 1) in remset

    def test_duplicate_recording_idempotent(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        remset.record_barrier(1, 0)
        assert len(remset) == 1
        assert remset.barrier_records == 2  # traffic still counted

    def test_barrier_supersedes_promotion(self):
        remset = RememberedSet()
        remset.record_promotion(1, 0)
        remset.record_barrier(1, 0)
        assert len(remset) == 1
        assert remset.barrier_size == 1
        assert remset.promotion_size == 0

    def test_promotion_does_not_duplicate_barrier(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        remset.record_promotion(1, 0)
        assert len(remset) == 1
        assert remset.promotion_size == 0

    def test_peak_size_tracked(self):
        remset = RememberedSet()
        for index in range(5):
            remset.record_barrier(index, 0)
        remset.clear()
        assert remset.peak_size == 5


class TestMaintenance:
    def test_discard_object(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        remset.record_barrier(1, 1)
        remset.record_barrier(2, 0)
        remset.discard_object(1)
        assert sorted(remset.entries()) == [(2, 0)]

    def test_discard_objects_bulk(self):
        remset = RememberedSet()
        for obj_id in range(6):
            remset.record_barrier(obj_id, 0)
        remset.discard_objects({0, 2, 4})
        assert sorted(entry[0] for entry in remset.entries()) == [1, 3, 5]

    def test_prune_returns_dropped_count(self):
        remset = RememberedSet()
        for obj_id in range(4):
            remset.record_barrier(obj_id, 0)
        dropped = remset.prune(lambda entry: entry[0] % 2 == 0)
        assert dropped == 2
        assert sorted(entry[0] for entry in remset.entries()) == [0, 2]

    def test_clear(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        remset.record_promotion(2, 0)
        remset.clear()
        assert len(remset) == 0

    def test_object_ids(self):
        remset = RememberedSet()
        remset.record_barrier(1, 0)
        remset.record_barrier(1, 1)
        remset.record_promotion(3, 0)
        assert remset.object_ids() == {1, 3}


class TestProperties:
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=100,
        )
    )
    def test_len_equals_distinct_entries(self, entries):
        remset = RememberedSet()
        for obj_id, slot in entries:
            remset.record_barrier(obj_id, slot)
        assert len(remset) == len(set(entries))
        assert set(remset.entries()) == set(entries)
