"""Seed discipline: all randomness flows through explicit seeds.

Two kinds of guarantee:

* a source scan asserting no module in ``src/repro`` calls the
  module-level ``random.*`` functions (which draw from the shared,
  implicitly-seeded global generator), and
* behavioral tests that every stochastic lifetime schedule replays the
  identical stream after ``reseed(seed)``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.mutator.decay_mutator import DecaySchedule
from repro.mutator.phased import PhasedSchedule
from repro.mutator.synthetic import (
    BimodalSchedule,
    UniformLifetimeSchedule,
    WeibullSchedule,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Module-level random functions that would read the global RNG.
#: ``random.Random(...)`` instantiation is fine; ``random.random()``,
#: ``random.randint(...)`` etc. are not.
GLOBAL_RANDOM = re.compile(
    r"\brandom\.(random|randint|randrange|choice|choices|shuffle|sample|"
    r"uniform|gauss|expovariate|seed|betavariate|normalvariate|"
    r"weibullvariate|triangular)\s*\("
)


def test_no_global_random_calls_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1
        ):
            if GLOBAL_RANDOM.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "module-level random.* calls found (use random.Random(seed)):\n"
        + "\n".join(offenders)
    )


SCHEDULES = [
    pytest.param(lambda: DecaySchedule(32.0, seed=5), id="decay"),
    pytest.param(lambda: UniformLifetimeSchedule(4, 64, seed=5), id="uniform"),
    pytest.param(lambda: WeibullSchedule(40.0, 1.7, seed=5), id="weibull"),
    pytest.param(
        lambda: BimodalSchedule(0.8, 8, 200.0, seed=5), id="bimodal"
    ),
    pytest.param(
        lambda: PhasedSchedule(500, churn_fraction=0.3, seed=5), id="phased"
    ),
]


def stream(schedule, n=200):
    return [schedule.lifetime_for(clock, clock) for clock in range(n)]


@pytest.mark.parametrize("make", SCHEDULES)
def test_reseed_replays_identical_stream(make):
    schedule = make()
    first = stream(schedule)
    schedule.reseed(5)
    assert stream(schedule) == first
    assert schedule.seed == 5


@pytest.mark.parametrize("make", SCHEDULES)
def test_reseed_with_new_seed_changes_stream(make):
    schedule = make()
    first = stream(schedule)
    schedule.reseed(99)
    assert schedule.seed == 99
    assert stream(schedule) != first


@pytest.mark.parametrize("make", SCHEDULES)
def test_same_seed_means_same_schedule(make):
    assert stream(make()) == stream(make())
