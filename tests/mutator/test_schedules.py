"""Tests for the lifetime schedules."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.decay import LN2
from repro.gc.marksweep import MarkSweepCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import (
    DecaySchedule,
    HalvingSchedule,
    decay_mutator,
)
from repro.mutator.phased import PhasedSchedule
from repro.mutator.synthetic import (
    BimodalSchedule,
    FixedLifetimeSchedule,
    UniformLifetimeSchedule,
    WeibullSchedule,
)


class TestDecaySchedule:
    def test_equilibrium_population(self):
        heap = SimulatedHeap()
        roots = RootSet()
        collector = MarkSweepCollector(heap, roots, 50_000)
        mutator = decay_mutator(collector, roots, half_life=1_000, seed=3)
        mutator.run(20_000)
        expected = 1_000 / LN2
        assert mutator.live_objects == pytest.approx(expected, rel=0.10)

    def test_deterministic_given_seed(self):
        a = DecaySchedule(100.0, seed=5)
        b = DecaySchedule(100.0, seed=5)
        assert [a.lifetime_for(0, i) for i in range(50)] == [
            b.lifetime_for(0, i) for i in range(50)
        ]


class TestHalvingSchedule:
    def test_cohort_halving_counts_are_exact(self):
        cohort = 1024
        schedule = HalvingSchedule(cohort)
        # Deaths aligned to boundaries after cohort completion; count
        # how many objects of the cohort survive m boundaries.
        survive_counts = {}
        for position in range(cohort):
            lifetime = schedule.lifetime_for(position, position)
            death = position + 1 + lifetime  # mutator's death clock
            boundaries = death // cohort - 1  # boundaries survived
            survive_counts[boundaries] = (
                survive_counts.get(boundaries, 0) + 1
            )
        # Exactly half die at the first boundary after completion, a
        # quarter at the next, and so on.
        assert survive_counts[1] == 512
        assert survive_counts[2] == 256
        assert survive_counts[3] == 128
        assert survive_counts[9] == 2  # 1 with tz=9 plus the 1024th

    def test_deaths_are_boundary_aligned(self):
        cohort = 64
        schedule = HalvingSchedule(cohort)
        for clock in range(0, 5 * cohort, 7):
            lifetime = schedule.lifetime_for(clock, clock)
            assert (clock + 1 + lifetime) % cohort == 0

    def test_rejects_tiny_cohort(self):
        with pytest.raises(ValueError):
            HalvingSchedule(1)


class TestSyntheticSchedules:
    def test_fixed(self):
        schedule = FixedLifetimeSchedule(7)
        assert schedule.lifetime_for(0, 0) == 7
        with pytest.raises(ValueError):
            FixedLifetimeSchedule(0)

    def test_uniform_range(self):
        schedule = UniformLifetimeSchedule(10, 20, seed=1)
        samples = [schedule.lifetime_for(0, i) for i in range(500)]
        assert all(10 <= sample < 20 for sample in samples)
        with pytest.raises(ValueError):
            UniformLifetimeSchedule(5, 5)

    def test_weibull_shape_one_is_exponential(self):
        # k=1 Weibull == exponential with mean = scale.
        scale = 200.0
        schedule = WeibullSchedule(scale, 1.0, seed=2)
        samples = [schedule.lifetime_for(0, i) for i in range(20_000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(scale, rel=0.05)

    def test_weibull_shape_changes_tail(self):
        # Decreasing hazard (k<1) has a heavier tail than increasing
        # hazard (k>1) at the same scale.
        light = WeibullSchedule(100.0, 3.0, seed=3)
        heavy = WeibullSchedule(100.0, 0.5, seed=3)
        light_tail = sum(
            1 for i in range(5_000) if light.lifetime_for(0, i) > 300
        )
        heavy_tail = sum(
            1 for i in range(5_000) if heavy.lifetime_for(0, i) > 300
        )
        assert heavy_tail > light_tail

    def test_weibull_validation(self):
        with pytest.raises(ValueError):
            WeibullSchedule(0.0, 1.0)
        with pytest.raises(ValueError):
            WeibullSchedule(1.0, -1.0)

    def test_bimodal_mixture(self):
        schedule = BimodalSchedule(0.9, 10, 10_000.0, seed=4)
        samples = [schedule.lifetime_for(0, i) for i in range(10_000)]
        young = sum(1 for sample in samples if sample <= 10)
        assert young == pytest.approx(9_000, rel=0.05)

    def test_bimodal_validation(self):
        with pytest.raises(ValueError):
            BimodalSchedule(1.5, 10, 100.0)
        with pytest.raises(ValueError):
            BimodalSchedule(0.5, 0, 100.0)


class TestPhasedSchedule:
    def test_non_churn_objects_die_at_phase_end(self):
        schedule = PhasedSchedule(
            1_000, churn_fraction=0.0, carryover_fraction=0.0, seed=5
        )
        for clock in (0, 1, 500, 998):
            lifetime = schedule.lifetime_for(clock, clock)
            assert clock + lifetime < 1_000 + clock % 1_000 + 1_000
            # Death lands at the phase boundary minus one word.
            assert clock + lifetime == 999

    def test_carryover_extends_one_phase(self):
        no_carry = PhasedSchedule(
            1_000, churn_fraction=0.0, carryover_fraction=0.0, seed=6
        )
        carry = PhasedSchedule(
            1_000, churn_fraction=0.0, carryover_fraction=1.0, seed=6
        )
        assert (
            carry.lifetime_for(100, 0)
            == no_carry.lifetime_for(100, 0) + 1_000
        )

    def test_churn_objects_die_fast(self):
        schedule = PhasedSchedule(
            10_000, churn_fraction=1.0, churn_lifetime=50, seed=7
        )
        for index in range(100):
            assert schedule.lifetime_for(0, index) <= 50

    def test_phase_of(self):
        schedule = PhasedSchedule(100)
        assert schedule.phase_of(0) == 0
        assert schedule.phase_of(99) == 0
        assert schedule.phase_of(100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedSchedule(0)
        with pytest.raises(ValueError):
            PhasedSchedule(100, churn_fraction=2.0)
        with pytest.raises(ValueError):
            PhasedSchedule(100, carryover_fraction=-0.1)
        with pytest.raises(ValueError):
            PhasedSchedule(100, churn_lifetime=0)
