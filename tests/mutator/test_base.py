"""Tests for the lifetime-driven mutator engine."""

from __future__ import annotations

import pytest

from repro.gc.marksweep import MarkSweepCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.synthetic import FixedLifetimeSchedule


def setup(schedule, heap_words=10_000, object_words=1):
    heap = SimulatedHeap()
    roots = RootSet()
    collector = MarkSweepCollector(heap, roots, heap_words)
    mutator = LifetimeDrivenMutator(
        collector, roots, schedule, object_words=object_words
    )
    return heap, roots, collector, mutator


class TestDriving:
    def test_step_allocates_one_object(self):
        heap, _, _, mutator = setup(FixedLifetimeSchedule(5))
        mutator.step()
        assert mutator.allocations == 1
        assert heap.clock == 1

    def test_run_allocates_requested_words(self):
        heap, _, _, mutator = setup(FixedLifetimeSchedule(5), object_words=3)
        mutator.run(30)
        assert heap.clock == 30
        assert mutator.allocations == 10

    def test_run_objects(self):
        heap, _, _, mutator = setup(FixedLifetimeSchedule(5))
        mutator.run_objects(7)
        assert mutator.allocations == 7


class TestLifetimes:
    def test_fixed_lifetime_population(self):
        # With lifetime L and unit objects, the steady-state live
        # population is exactly L.
        _, _, _, mutator = setup(FixedLifetimeSchedule(20))
        mutator.run(200)
        mutator.release_due()  # deaths due exactly now
        assert mutator.live_objects == 20

    def test_deaths_release_roots(self):
        heap, roots, collector, mutator = setup(FixedLifetimeSchedule(3))
        mutator.run(50)
        mutator.release_due()
        live_ids = set(mutator.held_ids())
        assert len(live_ids) == 3
        collector.collect()
        # Only the held objects survive the collection.
        assert {obj.obj_id for obj in heap.all_objects()} == live_ids

    def test_release_due_is_idempotent(self):
        _, _, _, mutator = setup(FixedLifetimeSchedule(5))
        mutator.run(20)
        mutator.release_due()
        before = mutator.live_objects
        mutator.release_due()
        assert mutator.live_objects == before

    def test_release_all(self):
        heap, _, collector, mutator = setup(FixedLifetimeSchedule(100))
        mutator.run(50)
        mutator.release_all()
        assert mutator.live_objects == 0
        collector.collect()
        assert heap.object_count == 0

    def test_live_words_scales_with_object_size(self):
        _, _, _, mutator = setup(FixedLifetimeSchedule(10), object_words=4)
        mutator.run(100)
        assert mutator.live_words == mutator.live_objects * 4


class TestObserver:
    def test_on_step_sees_every_allocation(self):
        clocks = []
        _, _, _, mutator = setup(FixedLifetimeSchedule(5))
        mutator.on_step = clocks.append
        mutator.run_objects(5)
        assert clocks == [1, 2, 3, 4, 5]


class TestValidation:
    def test_rejects_bad_object_size(self):
        with pytest.raises(ValueError):
            setup(FixedLifetimeSchedule(5), object_words=0)

    def test_rejects_non_positive_lifetimes(self):
        class BadSchedule:
            def lifetime_for(self, clock, index):
                return 0

        _, _, _, mutator = setup(BadSchedule())
        with pytest.raises(ValueError):
            mutator.step()
