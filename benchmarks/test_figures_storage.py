"""Benchmarks ``figure2``/``figure3``/``figure4``: storage profiles.

Paper shapes:

* Figure 2 (one dynamic iteration): live storage climbs nearly
  monotonically — each epoch's survivors stack on the previous ones —
  and an old band appears once storage crosses the ten-epoch
  threshold.
* Figure 3 (nboyer): the same climb, but driven by rewritten subtrees
  becoming permanent; a substantial old band by the end.
* Figure 4 (sboyer): the same shape at a fraction of nboyer's
  allocation.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.storage_profiles import (
    render_profile,
    run_figure2,
    run_figure3,
    run_figure4,
)


def _assert_climbing(profile, *, tolerance: float) -> None:
    """Totals rise (within tolerance) until the run's final sample."""
    totals = profile.totals()
    peak = max(totals)
    drops = sum(
        1
        for a, b in zip(totals, totals[1:])
        if b < a - tolerance * peak
    )
    assert drops <= 1, f"live storage should climb; saw {drops} big drops"


def test_figure2(benchmark):
    result = run_once(benchmark, run_figure2)
    print()
    print(render_profile(result))
    profile = result.profile
    _assert_climbing(profile, tolerance=0.05)
    # Nearly everything survives to the end of the iteration.
    assert profile.peak_live_words > 0.6 * result.words_allocated
    # The old band is populated once storage outlives ten epochs.
    assert max(profile.old_band) > 0


def test_figure3(benchmark):
    result = run_once(benchmark, run_figure3)
    print()
    print(render_profile(result))
    profile = result.profile
    totals = profile.totals()
    # Storage accumulates: the second half of the run holds much more
    # live storage than the first quarter's end.
    assert totals[-1] > 2 * totals[len(totals) // 4]
    assert max(profile.old_band) > 0


def test_figure4(benchmark):
    fig4 = run_once(benchmark, run_figure4)
    fig3 = run_figure3()
    print()
    print(render_profile(fig4))
    # sboyer's allocation collapses relative to nboyer's while its
    # long-lived storage remains comparable in shape.
    assert fig4.words_allocated < fig3.words_allocated / 5
    assert max(fig4.profile.old_band) > 0
    # Most of sboyer's storage is long-lived (the paper's point that
    # tuned programs are dominated by long-lived objects).
    assert fig4.profile.peak_live_words > 0.4 * fig4.words_allocated
