"""Benchmark ``table1``: regenerate the paper's Table 1.

Paper values: the step table of Section 4's worked example, steady
mark/cons 0.2 versus 0.4 non-generational.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table1 import render_table1, run_table1


def test_table1(benchmark):
    result = run_once(benchmark, run_table1)
    print()
    print(render_table1(result))
    # Exact reproduction modulo the triggering allocation's jitter.
    assert result.max_deviation() <= 2
    assert abs(result.mark_cons - 0.2) < 0.01
    assert abs(result.nongenerational_mark_cons - 0.4) < 0.02
