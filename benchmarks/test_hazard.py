"""Benchmark ``hazard``: §9's survival-rate-regime sweep."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.hazard import render_hazard, run_hazard


def test_hazard(benchmark):
    result = run_once(benchmark, run_hazard)
    print()
    print(render_hazard(result))
    advantages = [point.nonpredictive_advantage for point in result.points]
    # Monotone in the hazard shape, spanning a wide range.
    assert advantages == sorted(advantages)
    assert advantages[0] > 1.0
    assert advantages[-1] > 5.0
