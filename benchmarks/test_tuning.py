"""Benchmark ``tuning``: the §8.1 j-selection ablation.

Paper shape: j = 0 degenerates to the non-generational ratio 1/(L-1);
fixed fractions track Theorem 4; the half-empty rule lands between the
good fixed fractions without knowing the analysis; scanning the
protected steps instead of keeping a remembered set multiplies the
root-tracing work (§8.6).
"""

from __future__ import annotations

from conftest import run_once

from repro.core import analysis
from repro.experiments.tuning import render_tuning, run_tuning


def test_tuning(benchmark):
    result = run_once(benchmark, run_tuning)
    print()
    print(render_tuning(result))

    baseline = result.row("j=0 (non-generational)")
    assert (
        abs(
            baseline.mark_cons
            - analysis.nongenerational_mark_cons(result.load_factor)
        )
        < 0.05
    )

    for g, name in [
        (0.125, "fixed g=1/8"),
        (0.25, "fixed g=1/4"),
        (0.375, "fixed g=3/8"),
    ]:
        row = result.row(name)
        theory = analysis.mark_cons_ratio(g, result.load_factor).value
        assert abs(row.mark_cons - theory) / theory < 0.10, (
            f"{name}: measured {row.mark_cons:.4f} vs theory {theory:.4f}"
        )

    paper_rule = result.row("half-empty (paper §8.1)")
    assert paper_rule.mark_cons < 0.6 * baseline.mark_cons

    scan = result.row("half-empty, scan-protected (§8.6 alternative)")
    assert scan.roots_traced > 1.5 * paper_rule.roots_traced
