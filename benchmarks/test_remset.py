"""Benchmark ``remset``: §8.3's remembered-set growth and valve."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.remset_growth import (
    render_remset_growth,
    run_remset_growth,
)


def test_remset_growth(benchmark):
    result = run_once(benchmark, run_remset_growth)
    print()
    print(render_remset_growth(result))
    assert result.conventional_peak < 10
    assert result.hybrid_unconstrained_peak > 300
    assert result.hybrid_capped_peak <= result.cap
