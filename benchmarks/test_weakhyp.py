"""Benchmark ``weakhyp``: the §7 weak-hypothesis crossover."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.weak_hypothesis import (
    render_weak_hypothesis,
    run_weak_hypothesis,
)


def test_weak_hypothesis(benchmark):
    result = run_once(benchmark, run_weak_hypothesis)
    print()
    print(render_weak_hypothesis(result))
    assert result.heaviest.winner() == "generational"
    assert result.lightest.winner() == "non-predictive"
