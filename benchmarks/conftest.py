"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md's
per-experiment index) and asserts the paper's *shape* — who wins, by
roughly what factor, where the crossovers fall — not absolute numbers.
Heavy experiments run once per benchmark (pedantic mode) since their
cost is the measurement itself.
"""

from __future__ import annotations

import sys

# Boyer's if-trees recurse deeply.
sys.setrecursionlimit(200_000)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a single execution of an expensive experiment."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
