"""Benchmark ``table3``: GC overheads across the six benchmarks.

Paper shape (Table 3's gc/mutator columns):

* the generational collector beats stop-and-copy on nbody, nucleic2,
  lattice, and sboyer;
* on 10dynamic the generational collector does WORSE — the paper's
  central empirical anomaly (13% vs 28%);
* nboyer improves only modestly (52% vs 44%).

Absolute percentages are testbed artifacts; the orderings are not.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table3 import render_table3, run_table3


def test_table3(benchmark):
    result = run_once(benchmark, run_table3, scale=1)
    print()
    print(render_table3(result))

    for name in ("nbody", "nucleic2", "sboyer"):
        row = result.row(name)
        assert row.generational_wins, (
            f"{name}: generational should win "
            f"({row.generational_ratio:.2f} vs {row.stop_and_copy_ratio:.2f})"
        )

    # lattice's overheads are negligible under both collectors (the
    # paper's 5% vs 2%, the suite's cheapest row); at simulator scale
    # the two are within noise of each other and of zero.
    lattice = result.row("lattice")
    assert lattice.generational_ratio < 0.05
    assert lattice.stop_and_copy_ratio < 0.05

    anomaly = result.row("10dynamic")
    assert not anomaly.generational_wins, (
        "10dynamic must run WORSE under the generational collector "
        f"({anomaly.generational_ratio:.2f} vs "
        f"{anomaly.stop_and_copy_ratio:.2f})"
    )

    nboyer = result.row("nboyer")
    sboyer = result.row("sboyer")
    # sboyer allocates far less than nboyer (Baker's tweak).
    assert sboyer.words_allocated < nboyer.words_allocated / 4
    # And its gc burden is much lighter, as in the paper (10% vs 52%).
    assert sboyer.stop_and_copy_ratio < nboyer.stop_and_copy_ratio

    # lattice's peak live storage is a small fraction of allocation
    # ("allocates almost no long-lived storage").
    assert lattice.peak_live_words < lattice.words_allocated / 10
