"""Benchmark ``figure1``: regenerate Figure 1's overhead curves.

Paper shape: every curve dips below 1 (the non-predictive collector
beats non-generational GC even under radioactive decay); the exact
Theorem 4 region is a prefix in g; the simulation agrees with the
closed forms.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figure1 import render_figure1, run_figure1


def test_figure1(benchmark):
    result = run_once(benchmark, run_figure1)
    print()
    print(render_figure1(result))
    for load, points in result.curves.items():
        best = min(point.relative_overhead for point in points)
        assert best < 1.0, f"curve L={load} never beats non-generational"
    # The simulation cross-check must agree with the analysis.
    assert result.simulation, "expected simulation points"
    assert result.max_simulation_error() < 0.10
