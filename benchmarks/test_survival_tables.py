"""Benchmarks ``table4``..``table7``: survival rates by age.

Paper shapes:

* Table 4 (one dynamic iteration): flat and very high (91-99%).
* Table 5 (10dynamic): decreasing with age (59% -> 23% -> 1%) — the
  anti-strong-generational signature of iterated processes.
* Table 6 (nboyer): high (79-98%), weakly increasing — the suite's
  only support for the strong generational hypothesis.
* Table 7 (sboyer): essentially flat at 95-100%.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.survival_tables import (
    render_survival,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)


def populated_rates(result) -> list[float]:
    return [
        row.rate
        for row in result.table.rows
        if row.rate is not None and row.alive_words > 0
    ]


def test_table4(benchmark):
    result = run_once(benchmark, run_table4)
    print()
    print(render_survival(result))
    rates = populated_rates(result)
    assert rates, "expected populated brackets"
    # Flat and very high, as in the paper's 91-99%.
    assert min(rates) > 0.85
    assert sum(rates) / len(rates) > 0.93


def test_table5(benchmark):
    result = run_once(benchmark, run_table5)
    print()
    print(render_survival(result))
    rows = result.table.rows
    first, second, third = rows[0].rate, rows[1].rate, rows[2].rate
    assert first is not None and second is not None and third is not None
    # The paper's decreasing staircase: 59% -> 23% -> 1%.
    assert first > second > third
    assert first > 0.4
    assert second < 0.45
    assert third < 0.25


def test_table6(benchmark):
    result = run_once(benchmark, run_table6)
    print()
    print(render_survival(result))
    rates = populated_rates(result)
    assert min(rates) > 0.7  # the paper's floor is 79%
    # Older brackets survive at least as well as the youngest — the
    # weakly-increasing pattern of Table 6.
    assert sum(rates[-3:]) / 3 >= sum(rates[:3]) / 3 - 0.02


def test_table7(benchmark):
    result = run_once(benchmark, run_table7)
    print()
    print(render_survival(result))
    rates = populated_rates(result)
    # Essentially flat at 95-100%.
    assert min(rates) > 0.9
    assert max(rates) - min(rates) < 0.1
