"""Benchmark ``table2``: the benchmark inventory."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table2 import render_table2, run_table2


def test_table2(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(render_table2(result))
    names = [row.name for row in result.rows]
    assert names == [
        "nbody", "nucleic2", "lattice", "10dynamic", "nboyer", "sboyer",
    ]
    assert all(row.lines_of_code > 50 for row in result.rows)
