"""Benchmark ``equilibrium``: Equation 1 and memorylessness.

Paper values: live storage converges to h/ln2 ≈ 1.4427h; cohort
survival over one half-life is 1/2 at every age.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.equilibrium import render_equilibrium, run_equilibrium


def test_equilibrium(benchmark):
    result = run_once(benchmark, run_equilibrium)
    print()
    print(render_equilibrium(result))
    assert result.relative_error < 0.05
    for rate in result.cohort_survival[:4]:
        assert abs(rate - 0.5) < 0.08, "memorylessness violated"
