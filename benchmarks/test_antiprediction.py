"""Benchmark ``antiprediction``: Section 3's claims at full size.

Paper shape: under radioactive decay, conventional generational GC is
WORSE than non-generational GC, and the non-predictive collector is
substantially better than both.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.antiprediction import (
    render_antiprediction,
    run_antiprediction,
)


def test_antiprediction(benchmark):
    result = run_once(benchmark, run_antiprediction)
    print()
    print(render_antiprediction(result))
    assert result.conventional_loses
    assert result.nonpredictive_wins
    # The advantage is substantial, not marginal: the non-predictive
    # collector should cut mark/cons by at least a third at L = 3.5
    # (Figure 1 predicts ~0.45x at the half-empty policy's operating
    # points).
    ratio = (
        result.mark_cons["non-predictive"] / result.mark_cons["mark-sweep"]
    )
    assert ratio < 0.67
    # And the conventional collector's penalty is real (>= 1.2x).
    penalty = (
        result.mark_cons["generational"] / result.mark_cons["mark-sweep"]
    )
    assert penalty > 1.2
