"""The tenant-isolation oracle: service runs equal serial replays.

The property: take N tenants with independent seeded mutator scripts,
interleave their ops arbitrarily through the sharded service, and every
tenant's observable history — each explicit checkpoint, the final live
graph, the cumulative :class:`~repro.gc.stats.GcStats` snapshot, and
the full pause log — must be byte-identical to replaying that tenant's
script alone through :func:`repro.verify.replay.replay` on a standalone
heap.  Nothing a tenant observes may depend on who else is on the
server, how the traffic was batched, how many worker processes ran the
shards, or whether a worker died and was respawned mid-run.

:func:`run_isolation_suite` drives the whole property: generate
per-tenant scripts (seeds derived via
:func:`repro.perf.parallel.derive_seed`, so any tenant's script can be
regenerated in isolation), interleave with a seeded scheduler, execute
through a :class:`~repro.service.shard.ShardExecutor`, and compare
against the per-tenant references.  On divergence it minimizes the
offending tenant's script with the ddmin shrinker
(:func:`repro.verify.shrink.shrink_script`), holding every other
tenant's traffic and the interleave schedule constant — the shrunk
script is the smallest mutator history that still tells the two worlds
apart.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry, collector_factory
from repro.perf.parallel import derive_seed
from repro.service.loadgen import tenant_geometry
from repro.service.protocol import PROTOCOL_VERSION
from repro.service.shard import ShardExecutor
from repro.service.session import graph_digest, pauses_digest
from repro.verify.replay import MutatorScript, generate_script, replay
from repro.verify.shrink import shrink_script

__all__ = [
    "Divergence",
    "IsolationReport",
    "TenantCase",
    "compare_fingerprints",
    "drive_interleaved",
    "replay_fingerprint",
    "run_isolation_suite",
    "script_to_requests",
    "service_fingerprint",
]


@dataclass(frozen=True)
class TenantCase:
    """One tenant's half of the experiment: who they are, what they run."""

    tenant: str
    kind: str
    backend: str
    script: MutatorScript
    geometry: GcGeometry


@dataclass
class Divergence:
    """One tenant whose service history disagreed with its replay."""

    tenant: str
    kind: str
    backend: str
    detail: str
    script_ops: int
    shrunk_ops: int | None = None
    shrunk_script: str | None = None


@dataclass
class IsolationReport:
    """The suite verdict: every case, every divergence."""

    tenants: int
    shards: int
    jobs: int
    seed: int
    interleave_seed: int
    ops_per_tenant: int
    cases: list[TenantCase] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "OK" if self.ok else "DIVERGED"
        lines = [
            f"isolation suite: {verdict} — {self.tenants} tenant(s), "
            f"{self.shards} shard(s), jobs={self.jobs}, "
            f"{self.ops_per_tenant} ops/tenant, seed={self.seed}, "
            f"interleave={self.interleave_seed}"
        ]
        for divergence in self.divergences:
            lines.append(
                f"  {divergence.tenant} ({divergence.kind}/"
                f"{divergence.backend}): {divergence.detail} "
                f"[script {divergence.script_ops} ops"
                + (
                    f", shrunk to {divergence.shrunk_ops}"
                    if divergence.shrunk_ops is not None
                    else ""
                )
                + "]"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Script ↔ protocol translation
# ----------------------------------------------------------------------


def script_to_requests(
    script: MutatorScript,
    tenant: str,
    *,
    kind: str,
    backend: str | None = None,
    geometry: GcGeometry | None = None,
) -> list[dict]:
    """A script as the service request stream that replays it.

    ``open`` first, ``close`` last, and in between a one-to-one op
    mapping (``store`` → ``write``, ``check`` → ``checkpoint``), so the
    tenant's service-side history is directly comparable to
    :func:`repro.verify.replay.replay` of the same script.
    """
    requests: list[dict] = []

    def emit(op: str, **payload) -> None:
        request = {
            "v": PROTOCOL_VERSION,
            "id": f"{tenant}#{len(requests)}",
            "op": op,
            "tenant": tenant,
        }
        request.update(payload)
        requests.append(request)

    open_payload: dict = {"kind": kind}
    if backend is not None:
        open_payload["backend"] = backend
    if geometry is not None:
        open_payload["geometry"] = asdict(geometry)
    emit("open", **open_payload)
    for op in script.ops:
        op_kind = op[0]
        if op_kind == "alloc":
            emit("alloc", uid=op[1], size=op[2], fields=op[3])
        elif op_kind == "store":
            emit("write", src=op[1], slot=op[2], dst=op[3])
        elif op_kind == "drop":
            emit("drop", uid=op[1])
        elif op_kind == "collect":
            emit("collect")
        elif op_kind == "check":
            emit("checkpoint")
        else:
            raise ValueError(f"unknown script op kind {op_kind!r}")
    emit("close")
    return requests


# ----------------------------------------------------------------------
# Fingerprints (both worlds rendered into one comparable form)
# ----------------------------------------------------------------------


def _checkpoint_entry(payload: dict) -> list:
    return [
        int(payload["clock"]),
        int(payload["live_words"]),
        int(payload["objects"]),
        str(payload["digest"]),
    ]


def replay_fingerprint(case: TenantCase) -> dict:
    """The serial-replay reference history for one tenant case."""
    result = replay(
        case.script,
        collector_factory(case.kind, case.geometry),
        backend=case.backend,
    )
    checks = [
        [
            checkpoint.clock,
            checkpoint.live_words,
            len(checkpoint.graph),
            graph_digest(checkpoint.graph),
        ]
        # The last checkpoint is replay's implicit final fingerprint;
        # it corresponds to the close response, not a checkpoint op.
        for checkpoint in result.checkpoints[:-1]
    ]
    final = result.checkpoints[-1]
    return {
        "checks": checks,
        "final": [
            final.clock,
            final.live_words,
            len(final.graph),
            graph_digest(final.graph),
        ],
        "stats": [[str(k), int(v)] for k, v in result.stats],
        "pauses": len(result.pauses),
        "pauses_digest": pauses_digest(result.pauses),
        "collections": result.collections,
        "words_allocated": result.words_allocated,
    }


def service_fingerprint(
    requests: list[dict], responses: list[dict]
) -> dict:
    """One tenant's observed service history, in reference form.

    Any error response is itself part of the history: the reference
    replay never fails, so an ``errors`` entry guarantees a divergence
    with a readable cause instead of a bare digest mismatch.
    """
    checks: list[list] = []
    final = None
    close: dict = {}
    errors: list[str] = []
    for request, response in zip(requests, responses):
        if not response.get("ok"):
            error = response.get("error", {})
            errors.append(
                f"{request['op']}#{request['id']}: "
                f"{error.get('kind')}: {error.get('detail')}"
            )
            continue
        if request["op"] == "checkpoint":
            checks.append(_checkpoint_entry(response))
        elif request["op"] == "close":
            close = response
            final = _checkpoint_entry(response["final"])
    return {
        "checks": checks,
        "final": final,
        "stats": [[str(k), int(v)] for k, v in close.get("stats", [])],
        "pauses": close.get("pauses"),
        "pauses_digest": close.get("pauses_digest"),
        "collections": close.get("collections"),
        "words_allocated": close.get("words_allocated"),
        "errors": errors,
    }


def compare_fingerprints(reference: dict, observed: dict) -> str | None:
    """First difference between the two histories, or None if identical."""
    if observed.get("errors"):
        return f"service errors: {'; '.join(observed['errors'][:3])}"
    if len(observed["checks"]) != len(reference["checks"]):
        return (
            f"checkpoint count: service {len(observed['checks'])} "
            f"vs replay {len(reference['checks'])}"
        )
    for index, (want, got) in enumerate(
        zip(reference["checks"], observed["checks"])
    ):
        if want != got:
            return (
                f"checkpoint {index}: service {got} vs replay {want}"
            )
    for key in (
        "final",
        "stats",
        "pauses",
        "pauses_digest",
        "collections",
        "words_allocated",
    ):
        if observed.get(key) != reference[key]:
            return (
                f"{key}: service {observed.get(key)!r} "
                f"vs replay {reference[key]!r}"
            )
    return None


# ----------------------------------------------------------------------
# Interleaved execution
# ----------------------------------------------------------------------


def drive_interleaved(
    streams: dict[str, list[dict]],
    executor: ShardExecutor,
    *,
    interleave_seed: int = 0,
    batch_ops: int = 32,
) -> dict[str, list[dict]]:
    """Run per-tenant request streams through the executor, shuffled.

    A seeded scheduler repeatedly picks a random tenant with traffic
    left and schedules its next request (per-tenant order is sacred;
    cross-tenant order is adversarial), then chunks the merged stream
    into multi-tenant batches of ``batch_ops`` and executes each —
    so one shard batch genuinely interleaves many tenants' ops.
    Returns the responses per tenant, in each tenant's request order.
    """
    rng = random.Random(interleave_seed)
    cursors = {tenant: 0 for tenant in streams}
    merged: list[tuple[str, dict]] = []
    active = sorted(streams)
    while active:
        tenant = rng.choice(active)
        merged.append((tenant, streams[tenant][cursors[tenant]]))
        cursors[tenant] += 1
        if cursors[tenant] >= len(streams[tenant]):
            active.remove(tenant)
    responses: dict[str, list[dict]] = {tenant: [] for tenant in streams}
    for start in range(0, len(merged), batch_ops):
        chunk = merged[start : start + batch_ops]
        batches: dict[int, list[dict]] = {}
        order: dict[int, list[str]] = {}
        for tenant, request in chunk:
            shard = executor.shard_of(tenant)
            batches.setdefault(shard, []).append(request)
            order.setdefault(shard, []).append(tenant)
        results = executor.execute(batches)
        for shard, tenants in order.items():
            shard_responses = results.get(shard, [])
            for position, tenant in enumerate(tenants):
                responses[tenant].append(
                    shard_responses[position]
                    if position < len(shard_responses)
                    else {
                        "ok": False,
                        "error": {
                            "kind": "shard-failed",
                            "detail": "missing response",
                        },
                    }
                )
    return responses


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------


def build_cases(
    tenants: int,
    *,
    seed: int = 0,
    ops_per_tenant: int = 160,
    kinds: tuple[str, ...] = COLLECTOR_KINDS,
    backends: tuple[str, ...] = ("flat",),
    geometry: GcGeometry | None = None,
) -> list[TenantCase]:
    """Seeded tenant cases cycling through kinds and backends."""
    geometry = geometry if geometry is not None else tenant_geometry()
    cases = []
    for index in range(tenants):
        cases.append(
            TenantCase(
                tenant=f"iso{index:03d}",
                kind=kinds[index % len(kinds)],
                backend=backends[(index // len(kinds)) % len(backends)],
                script=generate_script(
                    ops_per_tenant, derive_seed(seed, index)
                ),
                geometry=geometry,
            )
        )
    return cases


def run_isolation_suite(
    tenants: int = 8,
    *,
    seed: int = 0,
    ops_per_tenant: int = 160,
    shards: int = 2,
    jobs: int = 0,
    kinds: tuple[str, ...] = COLLECTOR_KINDS,
    backends: tuple[str, ...] = ("flat",),
    interleave_seed: int | None = None,
    batch_ops: int = 32,
    shrink: bool = True,
    shrink_attempts: int = 120,
    executor_factory=None,
) -> IsolationReport:
    """Run the isolation property end to end (see module docstring).

    ``executor_factory`` (``(shards, jobs) -> ShardExecutor``) exists
    so the oracle can be pointed at a deliberately broken executor —
    the suite's own tests inject one to prove a real isolation bug is
    caught and shrunk, not silently absorbed.
    """
    if executor_factory is None:
        executor_factory = lambda shards, jobs: ShardExecutor(
            shards, jobs=jobs
        )
    interleave_seed = (
        derive_seed(seed, tenants) if interleave_seed is None else interleave_seed
    )
    cases = build_cases(
        tenants,
        seed=seed,
        ops_per_tenant=ops_per_tenant,
        kinds=kinds,
        backends=backends,
    )
    report = IsolationReport(
        tenants=tenants,
        shards=shards,
        jobs=jobs,
        seed=seed,
        interleave_seed=interleave_seed,
        ops_per_tenant=ops_per_tenant,
        cases=cases,
    )

    def run_once(
        current: list[TenantCase],
    ) -> dict[str, tuple[list[dict], list[dict]]]:
        streams = {
            case.tenant: script_to_requests(
                case.script,
                case.tenant,
                kind=case.kind,
                backend=case.backend,
                geometry=case.geometry,
            )
            for case in current
        }
        executor = executor_factory(shards, jobs)
        responses = drive_interleaved(
            streams,
            executor,
            interleave_seed=interleave_seed,
            batch_ops=batch_ops,
        )
        return {
            tenant: (streams[tenant], responses[tenant])
            for tenant in streams
        }

    observed = run_once(cases)
    for case in cases:
        reference = replay_fingerprint(case)
        requests, responses = observed[case.tenant]
        detail = compare_fingerprints(
            reference, service_fingerprint(requests, responses)
        )
        if detail is None:
            continue
        divergence = Divergence(
            tenant=case.tenant,
            kind=case.kind,
            backend=case.backend,
            detail=detail,
            script_ops=len(case.script.ops),
        )
        if shrink:
            divergence = _shrink_divergence(
                divergence, case, cases, run_once, shrink_attempts
            )
        report.divergences.append(divergence)
    return report


def _shrink_divergence(
    divergence: Divergence,
    case: TenantCase,
    cases: list[TenantCase],
    run_once,
    shrink_attempts: int,
) -> Divergence:
    """ddmin the diverging tenant's script, everything else held fixed."""
    others = [c for c in cases if c.tenant != case.tenant]

    def still_diverges(candidate: MutatorScript) -> bool:
        trial = TenantCase(
            tenant=case.tenant,
            kind=case.kind,
            backend=case.backend,
            script=candidate,
            geometry=case.geometry,
        )
        observed = run_once(others + [trial])
        requests, responses = observed[case.tenant]
        return (
            compare_fingerprints(
                replay_fingerprint(trial),
                service_fingerprint(requests, responses),
            )
            is not None
        )

    shrunk = shrink_script(
        case.script, still_diverges, max_attempts=shrink_attempts
    )
    divergence.shrunk_ops = len(shrunk.ops)
    divergence.shrunk_script = shrunk.to_text()
    return divergence
