"""One tenant's heap session: the mutator surface behind the service.

A :class:`TenantSession` owns a private ``(heap, roots, collector,
barrier)`` context built from the tenant's chosen collector kind,
:class:`~repro.gc.registry.GcGeometry`, and heap backend — nothing is
shared between tenants, which is the whole point: the isolation oracle
(:mod:`repro.service.isolation`) proves that a tenant's checkpoints and
:class:`~repro.gc.stats.GcStats` through the service are byte-identical
to replaying its ops serially through a standalone heap
(:func:`repro.verify.replay.replay`).

Op semantics deliberately mirror :mod:`repro.verify.replay` — same
root naming (``u{uid}``), same write-barrier-then-write store order,
same live-graph fingerprint — so the two sides are comparable without
translation.

Sessions are *migratable*: :meth:`capture` freezes the session into a
JSON-able state blob built on the PR 9 snapshot machinery
(:func:`repro.resilience.snapshot.checkpoint`, checksummed envelope
included), and :meth:`TenantSession.from_state` revives it in another
process.  Resume equivalence (proven per collector and backend by
:mod:`repro.verify.resume`) is what lets the sharded executor replay a
batch on a respawned worker without any tenant noticing.

Metric accounting is *cadence-independent by construction*: instead of
observing collections as they happen (whose batching would make
telemetry depend on how the service chunked the traffic),
:meth:`drain_metrics` walks the pause log and stats counters forward
from high-water marks stored **in the session state**.  Draining after
every batch, or once at close, or at any mixture, yields byte-identical
registries — which is what makes per-shard metrics merge exactly across
inline and worker-process execution at any jobs level.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

from repro.gc.collector import HeapExhausted
from repro.gc.registry import GcGeometry, make_collector
from repro.heap.backend import make_heap, resolve_backend_name
from repro.heap.barrier import WriteBarrier
from repro.heap.roots import RootSet
from repro.metrics.registry import MetricRegistry
from repro.resilience.snapshot import checkpoint as snapshot_checkpoint
from repro.resilience.snapshot import restore as snapshot_restore
from repro.service.protocol import ProtocolError, geometry_from_payload

__all__ = [
    "OpRejected",
    "TenantSession",
    "graph_digest",
    "pauses_digest",
    "pause_family",
]


class OpRejected(Exception):
    """An op was refused by policy, not by a malformed request.

    The session survives; the shard turns this into a structured error
    response (``heap-exhausted`` with the occupancy snapshot attached,
    for the only current producer).
    """

    def __init__(self, kind: str, detail: str, **extra: Any) -> None:
        super().__init__(detail)
        self.kind = kind
        self.detail = detail
        self.extra = extra


def graph_digest(graph: tuple) -> str:
    """SHA-256 over the canonical live-graph fingerprint.

    ``graph`` is the sorted ``(obj_id, size, fields)`` tuple built by
    both :func:`repro.verify.replay.replay` checkpoints and
    :meth:`TenantSession.checkpoint_payload`; hashing the canonical
    JSON of the same structure makes the two directly comparable.
    """
    blob = json.dumps(
        [[obj_id, size, list(fields)] for obj_id, size, fields in graph],
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def pauses_digest(pauses) -> str:
    """SHA-256 over a pause log (any iterable of PauseRecord)."""
    blob = json.dumps(
        [[p.clock, p.kind, p.work, p.reclaimed, p.live] for p in pauses],
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def pause_family(kind: str) -> str:
    """Collapse per-generation pause kinds ("minor-3") to a family."""
    return "minor" if kind.startswith("minor") else kind


class TenantSession:
    """A live tenant context plus its uid↔object-id bookkeeping."""

    def __init__(
        self,
        tenant: str,
        *,
        kind: str,
        backend: str | None = None,
        geometry: GcGeometry | None = None,
    ) -> None:
        self.tenant = tenant
        self.kind = kind
        self.backend = resolve_backend_name(backend)
        self.geometry = geometry if geometry is not None else GcGeometry()
        self.heap = make_heap(self.backend)
        self.roots = RootSet()
        self.collector = make_collector(
            kind, self.heap, self.roots, self.geometry
        )
        self.barrier = WriteBarrier(self.collector.remember_store)
        self.uid_to_id: dict[int, int] = {}
        self.id_to_uid: dict[int, int] = {}
        self.checkpoints = 0
        # Metric drain high-water marks (carried in the state blob so
        # draining never double-counts across capture/restore).
        self._pauses_drained = 0
        self._last_pause_clock = 0
        self._stats_drained: dict[str, int] = {
            key: 0 for key in self.collector.stats.snapshot()
        }

    # ------------------------------------------------------------------
    # Op surface
    # ------------------------------------------------------------------

    def _resolve(self, uid: int) -> int:
        try:
            return self.uid_to_id[uid]
        except KeyError:
            raise ProtocolError(
                f"tenant {self.tenant!r} has no object under uid {uid}",
                kind="unknown-uid",
            ) from None

    def apply(self, request: dict) -> dict:
        """Apply one validated tenant op; returns the response payload.

        Raises:
            ProtocolError: uid-level state errors (``unknown-uid``).
            OpRejected: policy refusals (``heap-exhausted``).
        """
        op = request["op"]
        if op == "alloc":
            return self._op_alloc(request)
        if op == "write":
            return self._op_write(request)
        if op == "drop":
            return self._op_drop(request)
        if op == "read":
            return self._op_read(request)
        if op == "checkpoint":
            self.checkpoints += 1
            return self.checkpoint_payload()
        if op == "collect":
            return self._op_collect()
        raise ProtocolError(f"op {op!r} is not a session op")

    def _op_alloc(self, request: dict) -> dict:
        uid = request["uid"]
        if uid in self.uid_to_id:
            raise ProtocolError(
                f"uid {uid} already allocated for tenant {self.tenant!r}",
                kind="bad-request",
            )
        try:
            obj = self.collector.allocate(
                request["size"], request.get("fields", 0)
            )
        except HeapExhausted as exc:
            raise OpRejected(
                "heap-exhausted",
                str(exc),
                requested=exc.requested,
                phase=exc.phase,
                occupancy=exc.snapshot,
            ) from exc
        self.uid_to_id[uid] = obj.obj_id
        self.id_to_uid[obj.obj_id] = uid
        self.roots.set_global(f"u{uid}", obj)
        return {"uid": uid, "clock": self.heap.clock}

    def _op_write(self, request: dict) -> dict:
        src = self.heap.get(self._resolve(request["src"]))
        slot = request["slot"]
        if slot >= len(src.fields):
            raise ProtocolError(
                f"slot {slot} out of range for uid {request['src']} "
                f"({len(src.fields)} fields)",
                kind="bad-request",
            )
        dst_uid = request.get("dst")
        if dst_uid is None:
            self.barrier.on_store(src, slot, None)
            self.heap.write_field(src, slot, None)
        else:
            target = self.heap.get(self._resolve(dst_uid))
            self.barrier.on_store(src, slot, target)
            self.heap.write_field(src, slot, target)
        return {}

    def _op_drop(self, request: dict) -> dict:
        uid = request["uid"]
        self._resolve(uid)  # unknown-uid check, same error surface
        self.roots.remove_global(f"u{uid}")
        return {}

    def _op_read(self, request: dict) -> dict:
        obj = self.heap.get(self._resolve(request["uid"]))
        fields = [
            None if ref is None else self.id_to_uid.get(ref)
            for ref in obj.fields
        ]
        return {"size": obj.size, "fields": fields}

    def _op_collect(self) -> dict:
        try:
            self.collector.collect()
        except HeapExhausted as exc:
            raise OpRejected(
                "heap-exhausted",
                str(exc),
                requested=exc.requested,
                phase=exc.phase,
                occupancy=exc.snapshot,
            ) from exc
        return {"collections": self.collector.stats.collections}

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------

    def live_graph(self) -> tuple:
        """The canonical live-graph tuple (replay checkpoint form)."""
        reached = self.heap.reachable_from(list(self.roots.ids()))
        return tuple(
            sorted(
                (
                    obj_id,
                    self.heap.get(obj_id).size,
                    tuple(self.heap.get(obj_id).fields),
                )
                for obj_id in reached
            )
        )

    def checkpoint_payload(self) -> dict:
        graph = self.live_graph()
        live = sum(entry[1] for entry in graph)
        return {
            "clock": self.heap.clock,
            "live_words": live,
            "objects": len(graph),
            "digest": graph_digest(graph),
        }

    def close_payload(self) -> dict:
        """The final fingerprint bundle returned by a ``close`` op."""
        stats = self.collector.stats
        return {
            "final": self.checkpoint_payload(),
            "checkpoints": self.checkpoints,
            "stats": sorted(stats.snapshot().items()),
            "pauses": len(stats.pauses),
            "pauses_digest": pauses_digest(stats.pauses),
            "collections": stats.collections,
            "words_allocated": stats.words_allocated,
        }

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def metrics_label(self) -> str:
        return f"{self.kind}/{self.backend}"

    def drain_metrics(self, registry: MetricRegistry) -> None:
        """Fold everything since the last drain into ``registry``.

        Pure function of the session state: each pause is recorded
        exactly once (the high-water index rides in the state blob),
        and counter deltas telescope, so any drain cadence produces
        the same merged registry.
        """
        stats = self.collector.stats
        pauses = stats.pauses
        for pause in pauses[self._pauses_drained :]:
            registry.histogram("pause_words").record(pause.work)
            registry.histogram(
                f"pause_words.{pause_family(pause.kind)}"
            ).record(pause.work)
            registry.histogram("reclaimed_per_collection").record(
                pause.reclaimed
            )
            registry.histogram("live_at_collection").record(pause.live)
            registry.histogram("alloc_between_collections").record(
                max(0, pause.clock - self._last_pause_clock)
            )
            self._last_pause_clock = pause.clock
            registry.gauge("live_words_peak").set_max(pause.live)
        self._pauses_drained = len(pauses)

        snap = stats.snapshot()
        drained = self._stats_drained
        for key, value in snap.items():
            delta = value - drained[key]
            if delta:
                registry.counter(key).inc(delta)
        self._stats_drained = snap

    # ------------------------------------------------------------------
    # Capture / restore (the shard migration unit)
    # ------------------------------------------------------------------

    def capture(self) -> dict:
        """Freeze the session into a JSON-able, checksummed state blob."""
        return {
            "tenant": self.tenant,
            "kind": self.kind,
            "backend": self.backend,
            "geometry": asdict(self.geometry),
            "snapshot": snapshot_checkpoint(
                self.collector, self.kind, self.geometry
            ),
            "uid_to_id": sorted(self.uid_to_id.items()),
            "checkpoints": self.checkpoints,
            "pauses_drained": self._pauses_drained,
            "last_pause_clock": self._last_pause_clock,
            "stats_drained": self._stats_drained,
        }

    @classmethod
    def from_state(cls, state: dict) -> "TenantSession":
        """Revive a captured session (possibly in another process)."""
        session = cls.__new__(cls)
        session.tenant = state["tenant"]
        session.kind = state["kind"]
        session.backend = state["backend"]
        session.geometry = geometry_from_payload(dict(state["geometry"]))
        heap, roots, collector = snapshot_restore(state["snapshot"])
        session.heap = heap
        session.roots = roots
        session.collector = collector
        session.barrier = WriteBarrier(collector.remember_store)
        session.uid_to_id = {
            int(uid): int(obj_id) for uid, obj_id in state["uid_to_id"]
        }
        session.id_to_uid = {
            obj_id: uid for uid, obj_id in session.uid_to_id.items()
        }
        session.checkpoints = int(state["checkpoints"])
        session._pauses_drained = int(state["pauses_drained"])
        session._last_pause_clock = int(state["last_pause_clock"])
        session._stats_drained = {
            key: int(value) for key, value in state["stats_drained"].items()
        }
        return session
