"""The GC-as-a-service wire protocol: versioned JSON ops over lines.

One request per line, one response per line, UTF-8 JSON.  Every
request carries the protocol version, a client-chosen correlation id
(echoed verbatim in the response, so one connection can interleave
many tenants), an op kind, and — for tenant ops — the tenant name:

``{"v": 1, "id": 7, "op": "alloc", "tenant": "t12", "uid": 3,
   "size": 2, "fields": 1}``

Responses are ``{"v": 1, "id": 7, "ok": true, ...payload}`` on
success and ``{"v": 1, "id": 7, "ok": false, "error": {"kind": ...,
"detail": ...}}`` on failure.  Failure is *structured and terminal
for the request only*: no op can crash a tenant session, and no
tenant can observe another tenant's failure.

Tenant ops (the mutator surface, mirroring
:mod:`repro.verify.replay` scripts so the isolation oracle can compare
service runs against standalone replays byte for byte):

``open``
    Create a tenant session: pick a collector ``kind`` (any
    :data:`repro.gc.registry.COLLECTOR_KINDS` entry), a heap
    ``backend`` (``"flat"``/``"object"``), and optionally override
    :class:`~repro.gc.registry.GcGeometry` fields via ``geometry``.
``alloc``
    Allocate ``size`` words with ``fields`` reference slots and root
    the object under the tenant-scoped handle ``uid``.
``write``
    Store ``dst`` (a uid, or ``null`` to clear) into slot ``slot`` of
    object ``src``, through the write barrier.
``drop``
    Unroot ``uid`` (the object may stay reachable through fields).
``read``
    Return ``uid``'s size and field contents (as uids) — the only
    pure read in the mutator surface.
``checkpoint``
    Fingerprint the live graph: clock, live words, object count, and
    a SHA-256 digest of the canonical graph.
``collect``
    Request an explicit full collection.
``close``
    Tear the session down; returns the final checkpoint digest, the
    cumulative :class:`~repro.gc.stats.GcStats` snapshot, and a
    digest of the full pause log.

Server ops (handled by the parent process, never routed to a shard):
``ping``, ``stats`` (occupancy of the service itself: shards, open
tenants, counters), ``metrics`` (merged per-shard registries, JSON or
Prometheus text), and ``shutdown``.

The error kinds a client must be prepared for:

* ``bad-request`` — malformed JSON, wrong version, unknown op,
  missing or mistyped fields;
* ``tenant-exists`` / ``unknown-tenant`` / ``unknown-uid`` — state
  errors, scoped to the offending request;
* ``backpressure`` — admission control refused an ``open`` (the
  owning shard is at its tenant cap); the error carries the shard's
  occupancy so clients can back off intelligently;
* ``heap-exhausted`` — an ``alloc`` failed after the collector's full
  degradation ladder; the error carries the per-space occupancy
  snapshot from :class:`~repro.gc.collector.HeapExhausted` and the
  session *stays open* (subsequent ops, including ``drop`` and
  ``collect``, proceed normally);
* ``shard-failed`` — the owning shard worker was lost and could not
  be revived for this batch; the tenant's last committed state is
  intact and the request may be retried;
* ``internal`` — an op raised unexpectedly inside the session.  The
  blast radius is exactly one tenant: its session is evicted (its
  state can no longer be trusted), every other tenant in the batch is
  untouched, and the shard keeps serving.
"""

from __future__ import annotations

import json
from typing import Any

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry
from repro.heap.backend import HEAP_BACKENDS

__all__ = [
    "ERROR_KINDS",
    "PROTOCOL_VERSION",
    "SERVER_OPS",
    "TENANT_OPS",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "error_response",
    "geometry_from_payload",
    "ok_response",
    "validate_request",
]

#: Wire protocol version; requests with any other ``v`` are rejected.
PROTOCOL_VERSION = 1

#: Ops routed to the tenant's owning shard, in documentation order.
TENANT_OPS: tuple[str, ...] = (
    "open",
    "alloc",
    "write",
    "drop",
    "read",
    "checkpoint",
    "collect",
    "close",
)

#: Ops answered by the server parent itself.
SERVER_OPS: tuple[str, ...] = ("ping", "stats", "metrics", "shutdown")

#: Every structured error kind a response can carry.
ERROR_KINDS: tuple[str, ...] = (
    "bad-request",
    "tenant-exists",
    "unknown-tenant",
    "unknown-uid",
    "backpressure",
    "heap-exhausted",
    "shard-failed",
    "internal",
)

#: GcGeometry fields a tenant may override at ``open``.
_GEOMETRY_FIELDS = frozenset(GcGeometry.__dataclass_fields__)


class ProtocolError(Exception):
    """A request failed validation.

    Carries the structured ``error`` payload the server should send
    back; raising it never tears down a connection or a session.
    """

    def __init__(self, detail: str, *, kind: str = "bad-request") -> None:
        super().__init__(detail)
        self.kind = kind
        self.detail = detail


def _require(payload: dict, field: str, types: tuple[type, ...], what: str):
    value = payload.get(field)
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            f"field {field!r} must be {what}, got {value!r}"
        )
    return value


def _require_uid(payload: dict, field: str) -> int:
    uid = _require(payload, field, (int,), "a non-negative integer uid")
    if uid < 0:
        raise ProtocolError(f"field {field!r} must be >= 0, got {uid}")
    return uid


def geometry_from_payload(overrides: dict | None) -> GcGeometry:
    """Build a :class:`GcGeometry` from an ``open`` op's overrides.

    Unknown fields and non-integer values are rejected rather than
    ignored — a tenant that asks for a geometry it is not getting is
    a debugging nightmare at scale.
    """
    if overrides is None:
        return GcGeometry()
    if not isinstance(overrides, dict):
        raise ProtocolError(
            f"geometry must be an object, got {overrides!r}"
        )
    unknown = sorted(set(overrides) - _GEOMETRY_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown geometry fields: {', '.join(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in overrides.items():
        if name == "auto_expand":
            if not isinstance(value, bool):
                raise ProtocolError(
                    f"geometry field {name!r} must be a boolean, "
                    f"got {value!r}"
                )
            kwargs[name] = value
        elif name == "load_factor" or name == "gen_oldest_load_factor":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ProtocolError(
                    f"geometry field {name!r} must be a number, got {value!r}"
                )
            kwargs[name] = float(value)
        elif name == "slice_budget" and value is None:
            kwargs[name] = None
        else:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(
                    f"geometry field {name!r} must be an integer, "
                    f"got {value!r}"
                )
            kwargs[name] = value
    return GcGeometry(**kwargs)


def validate_request(payload: object) -> dict:
    """Validate one decoded request; returns it with defaults filled.

    Raises:
        ProtocolError: any structural problem — the caller turns this
            into a ``bad-request`` response without touching a shard.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})"
        )
    op = payload.get("op")
    if op not in TENANT_OPS and op not in SERVER_OPS:
        raise ProtocolError(f"unknown op {op!r}")
    request_id = payload.get("id")
    if not isinstance(request_id, (int, str)) or isinstance(request_id, bool):
        raise ProtocolError("field 'id' must be an integer or string")
    if op in SERVER_OPS:
        return dict(payload)

    tenant = _require(payload, "tenant", (str,), "a string")
    if not tenant:
        raise ProtocolError("field 'tenant' must be non-empty")

    if op == "open":
        kind = payload.get("kind", COLLECTOR_KINDS[0])
        if kind not in COLLECTOR_KINDS:
            raise ProtocolError(
                f"unknown collector kind {kind!r} "
                f"(known: {', '.join(COLLECTOR_KINDS)})"
            )
        backend = payload.get("backend")
        if backend is not None and backend not in HEAP_BACKENDS:
            raise ProtocolError(
                f"unknown heap backend {backend!r} "
                f"(known: {', '.join(HEAP_BACKENDS)})"
            )
        geometry_from_payload(payload.get("geometry"))  # validate now
    elif op == "alloc":
        uid = _require_uid(payload, "uid")
        size = _require(payload, "size", (int,), "a positive integer")
        if size < 1:
            raise ProtocolError(f"field 'size' must be >= 1, got {size}")
        fields = payload.get("fields", 0)
        if not isinstance(fields, int) or isinstance(fields, bool):
            raise ProtocolError(
                f"field 'fields' must be an integer, got {fields!r}"
            )
        if not 0 <= fields <= size:
            raise ProtocolError(
                f"field 'fields' must be in [0, size={size}], got {fields}"
            )
        del uid
    elif op == "write":
        _require_uid(payload, "src")
        slot = _require(payload, "slot", (int,), "a non-negative integer")
        if slot < 0:
            raise ProtocolError(f"field 'slot' must be >= 0, got {slot}")
        dst = payload.get("dst")
        if dst is not None:
            if not isinstance(dst, int) or isinstance(dst, bool) or dst < 0:
                raise ProtocolError(
                    f"field 'dst' must be a uid or null, got {dst!r}"
                )
    elif op in ("drop", "read"):
        _require_uid(payload, "uid")
    # checkpoint / collect / close need nothing beyond tenant.
    return dict(payload)


def ok_response(request_id: int | str, **payload: Any) -> dict:
    response = {"v": PROTOCOL_VERSION, "id": request_id, "ok": True}
    response.update(payload)
    return response


def error_response(
    request_id: int | str | None,
    kind: str,
    detail: str,
    **extra: Any,
) -> dict:
    """A structured failure response; ``extra`` lands inside ``error``."""
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    error: dict[str, Any] = {"kind": kind, "detail": detail}
    error.update(extra)
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
    }


def encode_line(message: dict) -> bytes:
    """One message as a canonical JSON line (sorted keys, compact)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a message dict.

    Raises:
        ProtocolError: not valid JSON, or not a JSON object.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload
