"""Sharded tenant execution over the hardened parallel engine.

A *shard* owns a disjoint set of tenants (assignment is a stable
content hash of the tenant name, so every process that can see the
shard count routes identically).  The execution unit is a **batch**:
the ordered list of validated requests a shard has pending.  A batch
is applied by :func:`run_shard_batch` — a pure, picklable,
module-level function from ``(state, ops)`` to ``(responses, state')``
— which is exactly the shape :func:`repro.perf.parallel.resilient_map`
hardens: per-batch timeouts, attempt-bounded retry, worker-crash
recovery with pool teardown and rebuild.

That purity is the crash story.  Shard state between batches lives in
the *parent* as a map of tenant → checksummed snapshot blob
(:meth:`repro.service.session.TenantSession.capture`, built on the
PR 9 snapshot machinery).  A worker that dies mid-batch never
acknowledged anything: ``resilient_map`` replays the identical batch
from the identical committed state on a fresh worker, and — by resume
equivalence (:mod:`repro.verify.resume`) — produces the identical
responses.  No committed tenant state can be lost, because committed
state is precisely what the parent already holds.

Two execution modes, one semantics:

``jobs == 0`` (inline)
    Persistent :class:`ShardRuntime` objects in the calling process;
    sessions stay live between batches.  The deterministic reference
    mode the isolation oracle replays.
``jobs >= 1`` (pool)
    Each batch ships through ``resilient_map`` to a worker process,
    which lazily revives only the tenants the batch touches and
    captures them back afterwards.  A batch that exhausts its retry
    budget is *drained*: every request in it gets a structured
    ``shard-failed`` response, the state stays at the last committed
    blobs, and the next batch revives the shard from them (the
    respawn).

The byte-identity of the two modes — responses and per-shard metric
registries alike — is asserted by the service test suite; it follows
from resume equivalence plus the cadence-independent metric draining
in :mod:`repro.service.session`.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Any, Iterable, Mapping

from repro.metrics.registry import MetricRegistry, merge_registries
from repro.perf.parallel import TaskFailure, resilient_map
from repro.service.protocol import (
    ProtocolError,
    error_response,
    geometry_from_payload,
    ok_response,
)
from repro.service.session import OpRejected, TenantSession

__all__ = [
    "ShardExecutor",
    "ShardRuntime",
    "run_shard_batch",
    "shard_of",
]


def shard_of(tenant: str, shards: int) -> int:
    """The owning shard: a stable content hash, PYTHONHASHSEED-proof."""
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class ShardRuntime:
    """Live sessions and metric registries for one shard.

    ``state`` seeds the runtime with captured session blobs; sessions
    are revived lazily on first touch, so a batch that addresses 3 of
    500 tenants pays for 3 restores.  The same class serves both
    execution modes — the inline executor keeps one runtime alive for
    the whole run, the pool worker builds a fresh one per batch.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        state: Mapping[str, dict] | None = None,
        tenant_cap: int | None = None,
        external_tenants: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.tenant_cap = tenant_cap
        self.sessions: dict[str, TenantSession] = {}
        self._cold: dict[str, dict] = dict(state or {})
        # Tenants the parent holds that were not shipped with this
        # batch (pool mode ships only the blobs a batch touches);
        # counted so the admission cap sees true shard occupancy.
        self.external_tenants = external_tenants
        self.closed: list[str] = []
        self.registries: dict[str, MetricRegistry] = {}

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def registry(self, label: str) -> MetricRegistry:
        registry = self.registries.get(label)
        if registry is None:
            registry = MetricRegistry(label)
            self.registries[label] = registry
        return registry

    @property
    def open_tenants(self) -> int:
        return (
            len(self.sessions) + len(self._cold) + self.external_tenants
        )

    def has_tenant(self, tenant: str) -> bool:
        return tenant in self.sessions or tenant in self._cold

    def _session(self, tenant: str) -> TenantSession | None:
        session = self.sessions.get(tenant)
        if session is None:
            blob = self._cold.pop(tenant, None)
            if blob is None:
                return None
            session = TenantSession.from_state(blob)
            self.sessions[tenant] = session
        return session

    def export_state(self) -> dict[str, dict]:
        """Capture every session back into blob form (plus cold ones)."""
        state = dict(self._cold)
        for tenant, session in self.sessions.items():
            state[tenant] = session.capture()
        return state

    # ------------------------------------------------------------------
    # Batch application
    # ------------------------------------------------------------------

    def apply_batch(self, ops: Iterable[dict]) -> list[dict]:
        """Apply validated requests in order; one response each.

        No op may raise out of this method: malformed state references,
        policy refusals, and even unexpected internal errors all become
        structured error responses scoped to their own request.
        """
        service = self.registry("service")
        responses: list[dict] = []
        touched: set[str] = set()
        for request in ops:
            service.counter(f"requests.{request['op']}").inc()
            response = self._apply_one(request, touched)
            if response.get("ok"):
                service.counter("responses_ok").inc()
            else:
                service.counter(
                    f"errors.{response['error']['kind']}"
                ).inc()
            responses.append(response)
        for tenant in touched:
            session = self.sessions.get(tenant)
            if session is not None:
                session.drain_metrics(self.registry(session.metrics_label))
        return responses

    def _apply_one(self, request: dict, touched: set[str]) -> dict:
        op = request["op"]
        tenant = request["tenant"]
        request_id = request["id"]
        try:
            if op == "open":
                return self._op_open(request)
            session = self._session(tenant)
            if session is None:
                return error_response(
                    request_id,
                    "unknown-tenant",
                    f"tenant {tenant!r} has no open session on shard "
                    f"{self.shard_id}",
                )
            if op == "close":
                touched.discard(tenant)
                session.drain_metrics(
                    self.registry(session.metrics_label)
                )
                payload = session.close_payload()
                del self.sessions[tenant]
                self.closed.append(tenant)
                self.registry("service").counter("tenants_closed").inc()
                return ok_response(request_id, **payload)
            touched.add(tenant)
            return ok_response(request_id, **session.apply(request))
        except ProtocolError as exc:
            return error_response(request_id, exc.kind, exc.detail)
        except OpRejected as exc:
            return error_response(
                request_id, exc.kind, exc.detail, **exc.extra
            )
        except Exception as exc:  # tenant blast-radius fence
            self.sessions.pop(tenant, None)
            self._cold.pop(tenant, None)
            self.closed.append(tenant)
            self.registry("service").counter("tenants_evicted").inc()
            return error_response(
                request_id,
                "internal",
                f"op {op!r} failed inside tenant {tenant!r} "
                f"(session evicted): {type(exc).__name__}: {exc}",
            )

    def _op_open(self, request: dict) -> dict:
        tenant = request["tenant"]
        if self.has_tenant(tenant):
            return error_response(
                request["id"],
                "tenant-exists",
                f"tenant {tenant!r} already has an open session",
            )
        if (
            self.tenant_cap is not None
            and self.open_tenants >= self.tenant_cap
        ):
            return error_response(
                request["id"],
                "backpressure",
                f"shard {self.shard_id} is at its tenant cap",
                shard=self.shard_id,
                open_tenants=self.open_tenants,
                tenant_cap=self.tenant_cap,
            )
        session = TenantSession(
            tenant,
            kind=request.get("kind", "mark-sweep"),
            backend=request.get("backend"),
            geometry=geometry_from_payload(request.get("geometry")),
        )
        self.sessions[tenant] = session
        self.registry("service").counter("tenants_opened").inc()
        return ok_response(
            request["id"],
            tenant=tenant,
            kind=session.kind,
            backend=session.backend,
            shard=self.shard_id,
        )


# ----------------------------------------------------------------------
# The picklable batch task (pool mode)
# ----------------------------------------------------------------------


def run_shard_batch(item: dict, attempt: int = 0) -> dict:
    """One shard batch as a pure function — the ``resilient_map`` task.

    ``item`` carries the shard id, the committed state blobs, the
    ordered validated requests, and the executor config.  The result
    carries the responses, the new committed state, and the batch's
    metric-registry deltas in JSON form.  ``attempt`` is the engine's
    retry counter; the batch itself is deterministic, so a retry
    recomputes identical results — ``attempt`` is consulted only by
    the chaos pseudo-ops below.

    Chaos pseudo-ops (honoured only when the executor was built with
    ``chaos=True``; the server never emits them) make the fault drills
    real instead of simulated: ``_chaos-exit`` kills the worker
    process mid-batch with ``os._exit`` (a genuine
    ``BrokenProcessPool``), ``_chaos-spin`` wedges it past the task
    timeout.  Both stand down once ``attempt`` reaches their
    ``attempts`` count, so the drill exercises the full
    die → respawn → replay path.
    """
    config = item.get("config", {})
    chaos = bool(config.get("chaos"))
    ops: list[dict] = []
    for request in item["ops"]:
        kind = request.get("op")
        if kind in ("_chaos-exit", "_chaos-spin"):
            if chaos and attempt < int(request.get("attempts", 1)):
                if kind == "_chaos-exit":
                    os._exit(3)
                time.sleep(float(request.get("seconds", 30.0)))
            continue
        ops.append(request)
    runtime = ShardRuntime(
        item["shard"],
        state=item["state"],
        tenant_cap=config.get("tenant_cap"),
        external_tenants=int(config.get("external_tenants", 0)),
    )
    responses = runtime.apply_batch(ops)
    return {
        "shard": item["shard"],
        "responses": responses,
        "state": runtime.export_state(),
        "closed": runtime.closed,
        "metrics": {
            label: registry.to_jsonable()
            for label, registry in runtime.registries.items()
        },
    }


# ----------------------------------------------------------------------
# The executor: state ownership, fan-out, drain/respawn
# ----------------------------------------------------------------------


class ShardExecutor:
    """Owns the shards' committed state and routes batches to them.

    The parent-side half of the service: :meth:`execute` takes one
    batch per shard and returns responses per shard, fanning the
    non-empty shards across worker processes with ``resilient_map``
    (``jobs >= 1``) or applying them to persistent in-process runtimes
    (``jobs == 0``).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        jobs: int = 0,
        tenant_cap: int | None = None,
        chaos: bool = False,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.jobs = jobs
        self.tenant_cap = tenant_cap
        self.chaos = chaos
        self.timeout = timeout
        self.retries = retries
        self.batches = 0
        self.respawns = [0] * shards
        if jobs == 0:
            self._runtimes: list[ShardRuntime] | None = [
                ShardRuntime(index, tenant_cap=tenant_cap)
                for index in range(shards)
            ]
            self._state: list[dict[str, dict]] | None = None
            self._metrics: list[dict[str, MetricRegistry]] | None = None
        else:
            self._runtimes = None
            self._state = [dict() for _ in range(shards)]
            self._metrics = [dict() for _ in range(shards)]

    # ------------------------------------------------------------------

    def shard_of(self, tenant: str) -> int:
        return shard_of(tenant, self.shards)

    def open_tenants(self, shard: int) -> int:
        if self._runtimes is not None:
            return self._runtimes[shard].open_tenants
        return len(self._state[shard])

    def shard_metrics(self, shard: int) -> dict[str, MetricRegistry]:
        """The shard's merged metric registries (label → registry)."""
        if self._runtimes is not None:
            return self._runtimes[shard].registries
        return self._metrics[shard]

    def merged_metrics(self) -> list[MetricRegistry]:
        """Service-wide registries: shard registries merged per label."""
        by_label: dict[str, list[MetricRegistry]] = {}
        for shard in range(self.shards):
            for label, registry in self.shard_metrics(shard).items():
                by_label.setdefault(label, []).append(registry)
        return [
            merge_registries(group, label)
            for label, group in sorted(by_label.items())
        ]

    def shard_state(self, shard: int) -> dict[str, dict]:
        """The shard's committed state blobs (captured live if inline)."""
        if self._runtimes is not None:
            return self._runtimes[shard].export_state()
        return self._state[shard]

    # ------------------------------------------------------------------

    def execute(
        self, batches: Mapping[int, list[dict]]
    ) -> dict[int, list[dict]]:
        """Apply one ordered batch per shard; responses per shard.

        Batches for distinct shards are independent by construction
        (tenants are partitioned), so fan-out order cannot change any
        response — results are keyed by shard, never by completion
        order.
        """
        work = {
            shard: ops for shard, ops in sorted(batches.items()) if ops
        }
        if not work:
            return {}
        self.batches += 1
        if self._runtimes is not None:
            return {
                shard: self._runtimes[shard].apply_batch(
                    self._strip_chaos(ops)
                )
                for shard, ops in work.items()
            }

        # Ship only the blobs this batch can touch: per-batch cost
        # scales with batch size, not with how many tenants the shard
        # hosts.  The worker learns the unshipped count so the
        # admission cap still measures true occupancy.
        items = []
        for shard, ops in work.items():
            state = self._state[shard]
            touched = {
                request["tenant"]
                for request in ops
                if "tenant" in request
            }
            shipped = {
                tenant: state[tenant]
                for tenant in touched
                if tenant in state
            }
            items.append(
                {
                    "shard": shard,
                    "state": shipped,
                    "ops": ops,
                    "config": {
                        "tenant_cap": self.tenant_cap,
                        "chaos": self.chaos,
                        "external_tenants": len(state) - len(shipped),
                    },
                }
            )
        # resilient_map degrades to a serial in-process path when
        # jobs <= 1 or there is a single item.  Pool mode exists for
        # crash isolation — tenant heaps must never run inside the
        # server process — so force the process-pool path: at least
        # two workers, and a no-op pad item when one shard has all
        # the traffic.
        if len(items) == 1:
            items.append(
                {"shard": -1, "state": {}, "ops": [], "config": {}}
            )
        outcomes = resilient_map(
            run_shard_batch,
            items,
            jobs=max(2, min(self.jobs, len(items))),
            timeout=self.timeout,
            retries=self.retries,
        )
        responses: dict[int, list[dict]] = {}
        for (shard, ops), outcome in zip(work.items(), outcomes):
            if isinstance(outcome, TaskFailure):
                # Drained: state unchanged, every request answered
                # with a structured failure, shard revives next batch.
                self.respawns[shard] += 1
                responses[shard] = [
                    error_response(
                        request.get("id"),
                        "shard-failed",
                        f"shard {shard} lost its worker "
                        f"({outcome.kind} after {outcome.attempts} "
                        f"attempt(s)); committed state preserved",
                        shard=shard,
                    )
                    for request in ops
                    if not str(request.get("op", "")).startswith("_chaos")
                ]
                continue
            state = self._state[shard]
            for tenant in outcome["closed"]:
                state.pop(tenant, None)
            state.update(outcome["state"])
            merged = self._metrics[shard]
            for label, payload in outcome["metrics"].items():
                delta = MetricRegistry.from_jsonable(payload)
                if label in merged:
                    merged[label].merge(delta)
                else:
                    merged[label] = delta
            responses[shard] = outcome["responses"]
        return responses

    @staticmethod
    def _strip_chaos(ops: list[dict]) -> list[dict]:
        """Inline mode has no worker to kill; chaos ops are dropped
        (matching pool mode's response stream, which skips them too)."""
        return [
            request
            for request in ops
            if not str(request.get("op", "")).startswith("_chaos")
        ]

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """JSON-able occupancy snapshot of the whole executor."""
        return {
            "shards": self.shards,
            "jobs": self.jobs,
            "tenant_cap": self.tenant_cap,
            "batches": self.batches,
            "respawns": list(self.respawns),
            "open_tenants": [
                self.open_tenants(shard) for shard in range(self.shards)
            ],
        }
