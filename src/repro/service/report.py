"""The scale report: what the service delivered, per collector kind.

A scale report is the committed artifact of a load run
(``artifacts/scale_report.json``): one row per ``(collector kind,
heap backend)`` cohort with tenant counts, request outcomes, GC work
counters, and the mutator-visible pause distribution (p50/p95/p99/max,
in heap words) drawn from the merged per-shard metric registries.

Two classes of field, deliberately separated:

* **Deterministic fields** are pure functions of the load plan seed:
  request counts, error counts, collections, pause percentiles.  The
  CI gate regenerates them and compares against the committed report —
  a collector change that moves the p99 mutator-visible pause shows up
  as a diff here.
* **Wall-clock fields** (``elapsed_s``, ``throughput_rps``) describe
  the machine that ran the load.  They are reported for humans and
  excluded from :func:`deterministic_rows` and the gate.

"Mutator-visible" follows :mod:`repro.perf.slo`: for the concurrent
collector it is the handoff + reconcile histograms merged (off-thread
marking is invisible to the mutator by construction); for every other
kind it is the full ``pause_words`` histogram.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.metrics.registry import Histogram, MetricRegistry

__all__ = [
    "SCALE_REPORT_VERSION",
    "build_scale_report",
    "check_pause_regression",
    "deterministic_rows",
    "mutator_visible_histogram",
    "render_scale_report",
    "validate_scale_report",
]

SCALE_REPORT_VERSION = 1

#: Every field a row must carry, with its required type.
_ROW_FIELDS: dict[str, type | tuple[type, ...]] = {
    "kind": str,
    "backend": str,
    "profile": str,
    "tenants": int,
    "requests": int,
    "ok": int,
    "errors": dict,
    "checkpoints": int,
    "collections": int,
    "words_allocated": int,
    "pauses": int,
    "p50_pause_words": int,
    "p95_pause_words": int,
    "p99_pause_words": int,
    "max_pause_words": int,
    "elapsed_s": (int, float),
    "throughput_rps": (int, float),
}

#: Row fields that depend on the machine, not the seed.
_WALL_CLOCK_FIELDS = ("elapsed_s", "throughput_rps")


def mutator_visible_histogram(
    registry: MetricRegistry, kind: str
) -> Histogram:
    """The pauses the mutator actually observes, per slo.py semantics."""
    visible = Histogram("pause_words.mutator_visible")
    if kind == "concurrent":
        for name in ("pause_words.handoff", "pause_words.reconcile"):
            metric = registry.get(name)
            if isinstance(metric, Histogram):
                visible.merge(metric)
    else:
        metric = registry.get("pause_words")
        if isinstance(metric, Histogram):
            visible.merge(metric)
    return visible


def _counter_value(registry: MetricRegistry | None, name: str) -> int:
    if registry is None:
        return 0
    metric = registry.get(name)
    value = getattr(metric, "value", 0)
    return int(value)


def _as_registries(
    metrics: Iterable[MetricRegistry] | Mapping[str, Any] | None,
) -> dict[str, MetricRegistry]:
    """Accept live registries or their JSON form (the wire shape)."""
    if metrics is None:
        return {}
    if isinstance(metrics, Mapping):
        return {
            label: MetricRegistry.from_jsonable(payload)
            for label, payload in metrics.items()
        }
    return {registry.label: registry for registry in metrics}


def build_scale_report(
    plan,
    result,
    metrics: Iterable[MetricRegistry] | Mapping[str, Any] | None = None,
    *,
    mode: str = "server",
    generated: str | None = None,
) -> dict:
    """One load run rendered as the committed report document.

    Args:
        plan: the :class:`~repro.service.loadgen.LoadPlan` that ran.
        result: the :class:`~repro.service.loadgen.LoadResult` observed.
        metrics: merged registries, live or JSON (defaults to
            ``result.metrics``, the shape ``run_load`` fetched).
        mode: free-form provenance tag (``server``/``inline``/CI name).
        generated: optional ISO timestamp; omitted (None) in gated
            runs so committed and regenerated documents are comparable.
    """
    registries = _as_registries(
        metrics if metrics is not None else result.metrics
    )
    cohorts: dict[tuple[str, str], dict] = {}
    profiles: dict[tuple[str, str], set[str]] = {}
    for outcome in result.outcomes:
        key = (outcome.kind, outcome.backend)
        row = cohorts.get(key)
        if row is None:
            row = cohorts[key] = {
                "kind": outcome.kind,
                "backend": outcome.backend,
                "tenants": 0,
                "requests": 0,
                "ok": 0,
                "errors": {},
                "checkpoints": 0,
            }
            profiles[key] = set()
        profiles[key].add(outcome.profile)
        row["tenants"] += 1
        row["ok"] += outcome.ok
        row["requests"] += outcome.ok + sum(outcome.errors.values())
        row["checkpoints"] += len(outcome.checkpoints)
        for error_kind, count in outcome.errors.items():
            row["errors"][error_kind] = (
                row["errors"].get(error_kind, 0) + count
            )

    rows = []
    elapsed = max(result.elapsed, 1e-9)
    for key in sorted(cohorts):
        row = cohorts[key]
        label = f"{key[0]}/{key[1]}"
        registry = registries.get(label)
        visible = (
            mutator_visible_histogram(registry, key[0])
            if registry is not None
            else Histogram("empty")
        )
        row["profile"] = "+".join(sorted(profiles[key]))
        row["collections"] = _counter_value(registry, "collections")
        row["words_allocated"] = _counter_value(
            registry, "words_allocated"
        )
        row["pauses"] = visible.count
        row["p50_pause_words"] = visible.quantile(0.50)
        row["p95_pause_words"] = visible.quantile(0.95)
        row["p99_pause_words"] = visible.quantile(0.99)
        row["max_pause_words"] = visible.max
        # Wall-clock attribution: cohorts share the run, so each gets
        # the run's elapsed time and its own request rate within it.
        row["elapsed_s"] = round(result.elapsed, 6)
        row["throughput_rps"] = round(row["requests"] / elapsed, 3)
        rows.append(row)

    report = {
        "version": SCALE_REPORT_VERSION,
        "mode": mode,
        "config": {
            "seed": plan.seed,
            "profile": plan.profile,
            "tenants": len(plan.plans),
            "ops_per_tenant": plan.ops_per_tenant,
            "geometry": plan.geometry,
        },
        "totals": {
            "requests": result.requests_sent,
            "errors": result.error_total,
            "elapsed_s": round(result.elapsed, 6),
            "throughput_rps": round(result.requests_sent / elapsed, 3),
        },
        "rows": rows,
    }
    if generated is not None:
        report["generated"] = generated
    if result.server_stats is not None:
        report["service"] = result.server_stats
    return report


def validate_scale_report(report: object) -> list[str]:
    """Schema problems in a report document; empty means valid."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("version") != SCALE_REPORT_VERSION:
        problems.append(
            f"version must be {SCALE_REPORT_VERSION}, "
            f"got {report.get('version')!r}"
        )
    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
        return problems
    seen: set[tuple[str, str]] = set()
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"row {index} must be an object")
            continue
        for name, types in _ROW_FIELDS.items():
            value = row.get(name)
            if not isinstance(value, types) or isinstance(value, bool):
                problems.append(
                    f"row {index} field {name!r}: expected "
                    f"{types}, got {value!r}"
                )
        key = (row.get("kind"), row.get("backend"))
        if key in seen:
            problems.append(f"row {index}: duplicate cohort {key}")
        seen.add(key)
        if isinstance(row.get("p99_pause_words"), int) and isinstance(
            row.get("max_pause_words"), int
        ):
            if row["p99_pause_words"] > row["max_pause_words"]:
                problems.append(
                    f"row {index}: p99 {row['p99_pause_words']} exceeds "
                    f"max {row['max_pause_words']}"
                )
    return problems


def deterministic_rows(report: dict) -> list[dict]:
    """The rows with machine-dependent fields removed, sorted."""
    rows = []
    for row in report.get("rows", []):
        rows.append(
            {
                name: value
                for name, value in sorted(row.items())
                if name not in _WALL_CLOCK_FIELDS
            }
        )
    rows.sort(key=lambda row: (row.get("kind", ""), row.get("backend", "")))
    return rows


def check_pause_regression(
    current: dict,
    committed: dict,
    *,
    tolerance: float = 1.25,
) -> list[str]:
    """p99 regressions of ``current`` against the ``committed`` report.

    A cohort regresses when its p99 mutator-visible pause exceeds the
    committed p99 by more than ``tolerance``× (with a 16-word absolute
    floor so tiny-pause cohorts are not gated on bucket noise).
    Cohorts present on only one side are reported too — a silently
    vanished collector kind must not pass the gate.
    """
    problems: list[str] = []
    current_rows = {
        (row["kind"], row["backend"]): row
        for row in current.get("rows", [])
    }
    committed_rows = {
        (row["kind"], row["backend"]): row
        for row in committed.get("rows", [])
    }
    for key in sorted(set(committed_rows) - set(current_rows)):
        problems.append(f"cohort {key[0]}/{key[1]} missing from current run")
    for key in sorted(set(current_rows) - set(committed_rows)):
        problems.append(
            f"cohort {key[0]}/{key[1]} has no committed baseline"
        )
    for key in sorted(set(current_rows) & set(committed_rows)):
        observed = current_rows[key]["p99_pause_words"]
        baseline = committed_rows[key]["p99_pause_words"]
        allowed = max(baseline * tolerance, baseline + 16)
        if observed > allowed:
            problems.append(
                f"cohort {key[0]}/{key[1]}: p99 mutator-visible pause "
                f"{observed}w exceeds committed {baseline}w "
                f"(tolerance {tolerance}x)"
            )
    return problems


def render_scale_report(report: dict) -> str:
    """A fixed-width human rendering of the report rows."""
    header = (
        f"{'kind':<15} {'backend':<8} {'tenants':>7} {'requests':>9} "
        f"{'errors':>6} {'colls':>7} {'pauses':>7} {'p50':>6} "
        f"{'p95':>6} {'p99':>6} {'max':>6} {'req/s':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in report.get("rows", []):
        errors = sum(row.get("errors", {}).values())
        lines.append(
            f"{row['kind']:<15} {row['backend']:<8} "
            f"{row['tenants']:>7} {row['requests']:>9} {errors:>6} "
            f"{row['collections']:>7} {row['pauses']:>7} "
            f"{row['p50_pause_words']:>6} {row['p95_pause_words']:>6} "
            f"{row['p99_pause_words']:>6} {row['max_pause_words']:>6} "
            f"{row['throughput_rps']:>9.1f}"
        )
    totals = report.get("totals", {})
    lines.append(
        f"total: {totals.get('requests', 0)} requests, "
        f"{totals.get('errors', 0)} errors, "
        f"{totals.get('elapsed_s', 0.0):.2f}s, "
        f"{totals.get('throughput_rps', 0.0):.1f} req/s"
    )
    return "\n".join(lines)
