"""Closed-loop load generator for the multi-tenant heap service.

The generator is split into two halves on purpose:

* **Plan building is offline-pure.**  :func:`build_plan` turns
  ``(tenants, seed, profile, kinds, backends, ops)`` into the complete
  per-tenant request streams — every op, every payload, every
  correlation id — without talking to any server.  The stream is a
  function of the seed alone, never of responses, so
  :func:`plan_fingerprint` can pin the byte-exact traffic in a golden
  test and the same plan can be replayed against a socket server, an
  in-process :class:`~repro.service.shard.ShardExecutor`, or a serial
  reference run.
* **Execution is closed-loop.**  Each tenant keeps exactly one request
  in flight and awaits the response before sending the next, so
  per-tenant ordering is the serial ordering the isolation oracle
  assumes, and measured latency is mutator-visible latency rather than
  queue depth.

Traffic profiles model the lifetime structures the paper cares about:

``decay``
    Radioactive decay: every rooted object faces the same per-op
    death hazard regardless of age, so lifetimes are exponential —
    the paper's null hypothesis against generational assumptions.
``burst``
    Request-cluster lifetimes: allocate a cluster, link and read it,
    checkpoint, then drop it wholesale — the young-die-fast extreme
    that generational collectors are built for.
``session-tail``
    A small set of session-lifetime objects survives from ``open`` to
    ``close`` and pins a trickle of cluster survivors into a long
    tail — the mixed distribution that stresses promotion policy.
``mixed``
    Tenant *i* uses profile ``PROFILES[i % 3]`` — a heterogeneous
    fleet on one server.

Plans avoid heap exhaustion by construction (a live-word budget far
under the smallest per-kind capacity at the service's tenant-scale
geometry); exhaustion and admission-control behaviour are exercised by
dedicated drills in the test suite, not by ambient load.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import asdict, dataclass, field

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry
from repro.perf.parallel import derive_seed
from repro.service.protocol import PROTOCOL_VERSION, encode_line
from repro.service.shard import ShardExecutor

__all__ = [
    "PROFILES",
    "LoadPlan",
    "LoadResult",
    "TenantOutcome",
    "TenantPlan",
    "build_plan",
    "plan_fingerprint",
    "run_load",
    "run_load_inline",
    "tenant_geometry",
]

#: The seeded traffic shapes (``mixed`` cycles through these).
PROFILES: tuple[str, ...] = ("decay", "burst", "session-tail")

#: Per-tenant live-word ceiling.  The tenant-scale geometry's tightest
#: capacity is the stop-and-copy semispace (256 words at the default
#: 1/64 scale); staying well below it keeps ambient load on the happy
#: allocation path for every collector kind.
_LIVE_BUDGET_WORDS = 120


def tenant_geometry(scale_denominator: int = 64) -> GcGeometry:
    """The per-tenant heap shape: the paper's geometry, shrunk.

    Thousands of tenants share one process, so each gets the default
    geometry at 1/64 scale — small enough to pack, tight enough that
    every collector kind (including mark-sweep's 512-word whole-heap
    budget) runs real collection cycles under an ordinary load plan.
    """
    return GcGeometry().scaled(1, scale_denominator)


@dataclass(frozen=True)
class TenantPlan:
    """One tenant's complete, self-contained request stream."""

    tenant: str
    kind: str
    backend: str
    profile: str
    requests: tuple[dict, ...]


@dataclass(frozen=True)
class LoadPlan:
    """A full load run: every tenant's stream plus the knobs that built it."""

    seed: int
    profile: str
    ops_per_tenant: int
    geometry: dict
    plans: tuple[TenantPlan, ...]

    @property
    def request_count(self) -> int:
        return sum(len(plan.requests) for plan in self.plans)


class _TenantScripter:
    """Builds one tenant's request stream while tracking rooted state.

    Every ``write``/``read``/``drop`` references only *currently
    rooted* uids, which are live by definition — so the stream is
    valid against any collector without simulating reachability.
    """

    def __init__(
        self,
        tenant: str,
        kind: str,
        backend: str,
        geometry: dict,
        rng: random.Random,
    ) -> None:
        self.tenant = tenant
        self.rng = rng
        self.requests: list[dict] = []
        self.rooted: dict[int, tuple[int, int]] = {}  # uid -> (size, fields)
        self.live_words = 0
        self.next_uid = 0
        self._seq = 0
        self._emit("open", kind=kind, backend=backend, geometry=geometry)

    def _emit(self, op: str, **payload) -> None:
        request = {
            "v": PROTOCOL_VERSION,
            "id": f"{self.tenant}#{self._seq}",
            "op": op,
            "tenant": self.tenant,
        }
        request.update(payload)
        self.requests.append(request)
        self._seq += 1

    # -- mutator ops ---------------------------------------------------

    def alloc(self, size: int, fields: int) -> int:
        uid = self.next_uid
        self.next_uid += 1
        self._emit("alloc", uid=uid, size=size, fields=fields)
        self.rooted[uid] = (size, fields)
        self.live_words += size
        return uid

    def drop(self, uid: int) -> None:
        size, _ = self.rooted.pop(uid)
        self.live_words -= size
        self._emit("drop", uid=uid)

    def write(self, src: int, slot: int, dst: int | None) -> None:
        self._emit("write", src=src, slot=slot, dst=dst)

    def read(self, uid: int) -> None:
        self._emit("read", uid=uid)

    def checkpoint(self) -> None:
        self._emit("checkpoint")

    def collect(self) -> None:
        self._emit("collect")

    def close(self) -> None:
        self._emit("close")

    # -- helpers -------------------------------------------------------

    def random_rooted(self) -> int | None:
        if not self.rooted:
            return None
        return self.rng.choice(sorted(self.rooted))

    def random_writable(self) -> tuple[int, int] | None:
        """A rooted ``(uid, slot)`` with at least one reference slot."""
        sources = sorted(
            uid for uid, (_, fields) in self.rooted.items() if fields
        )
        if not sources:
            return None
        src = self.rng.choice(sources)
        return src, self.rng.randrange(self.rooted[src][1])

    def shed_to_budget(self) -> None:
        while self.live_words > _LIVE_BUDGET_WORDS and self.rooted:
            self.drop(self.random_rooted())


def _script_decay(scripter: _TenantScripter, ops: int) -> None:
    """Uniform per-op death hazard: exponential lifetimes."""
    rng = scripter.rng
    hazard = 0.08  # per rooted object, per mutator op
    while len(scripter.requests) < ops:
        roll = rng.random()
        if roll < 0.50:
            size = rng.randint(1, 6)
            fields = rng.randint(0, min(2, size))
            uid = scripter.alloc(size, fields)
            if fields and rng.random() < 0.5:
                dst = scripter.random_rooted()
                scripter.write(uid, rng.randrange(fields), dst)
        elif roll < 0.62:
            writable = scripter.random_writable()
            if writable is not None:
                src, slot = writable
                dst = scripter.random_rooted() if rng.random() < 0.8 else None
                scripter.write(src, slot, dst)
        elif roll < 0.72:
            uid = scripter.random_rooted()
            if uid is not None:
                scripter.read(uid)
        elif roll < 0.97:
            # The decay step: every rooted object faces the same hazard.
            for uid in sorted(scripter.rooted):
                if rng.random() < hazard:
                    scripter.drop(uid)
        else:
            scripter.collect()
        if len(scripter.requests) % 24 == 0:
            scripter.checkpoint()
        scripter.shed_to_budget()


def _script_burst(scripter: _TenantScripter, ops: int) -> None:
    """Allocate a cluster, use it, checkpoint, drop it wholesale."""
    rng = scripter.rng
    while len(scripter.requests) < ops:
        cluster: list[int] = []
        for _ in range(rng.randint(6, 12)):
            size = rng.randint(1, 4)
            fields = rng.randint(0, min(2, size))
            cluster.append(scripter.alloc(size, fields))
            scripter.shed_to_budget()
        linked = [u for u in cluster if u in scripter.rooted]
        for _ in range(rng.randint(2, 4)):
            sources = [u for u in linked if scripter.rooted[u][1]]
            if not sources:
                break
            src = rng.choice(sources)
            scripter.write(
                src,
                rng.randrange(scripter.rooted[src][1]),
                rng.choice(linked),
            )
        if linked:
            scripter.read(rng.choice(linked))
        scripter.checkpoint()
        if rng.random() < 0.15:
            scripter.collect()
        for uid in cluster:
            if uid in scripter.rooted:
                scripter.drop(uid)


def _script_session_tail(scripter: _TenantScripter, ops: int) -> None:
    """Session-lifetime pins plus a tail of cluster survivors."""
    rng = scripter.rng
    session = [scripter.alloc(3, 2) for _ in range(4)]
    while len(scripter.requests) < ops:
        cluster: list[int] = []
        for _ in range(rng.randint(4, 8)):
            size = rng.randint(1, 4)
            fields = rng.randint(0, min(2, size))
            cluster.append(scripter.alloc(size, fields))
            scripter.shed_to_budget()
        linked = [u for u in cluster if u in scripter.rooted]
        # Pin a survivor into a session slot while it is still rooted;
        # it outlives the cluster drop through the session reference.
        if linked:
            holder = rng.choice(session)
            scripter.write(holder, rng.randrange(2), rng.choice(linked))
        # ... and occasionally cut an old tail loose.
        if rng.random() < 0.3:
            scripter.write(rng.choice(session), rng.randrange(2), None)
        if linked and rng.random() < 0.5:
            scripter.read(rng.choice(linked))
        scripter.checkpoint()
        if rng.random() < 0.1:
            scripter.collect()
        for uid in cluster:
            if uid in scripter.rooted:
                scripter.drop(uid)


_SCRIPTERS = {
    "decay": _script_decay,
    "burst": _script_burst,
    "session-tail": _script_session_tail,
}


def build_plan(
    tenants: int,
    *,
    seed: int = 0,
    profile: str = "mixed",
    kinds: tuple[str, ...] = COLLECTOR_KINDS,
    backends: tuple[str, ...] = ("flat",),
    ops_per_tenant: int = 120,
    geometry: GcGeometry | None = None,
) -> LoadPlan:
    """Build the complete request streams for ``tenants`` tenants.

    Tenant *i* gets collector ``kinds[i % len(kinds)]``, backend
    ``backends[(i // len(kinds)) % len(backends)]``, and the RNG
    seeded with ``derive_seed(seed, i)`` — so every (kind, backend)
    pair sees every profile, and any single tenant's stream can be
    regenerated in isolation.
    """
    if profile != "mixed" and profile not in _SCRIPTERS:
        raise ValueError(
            f"unknown profile {profile!r} "
            f"(known: {', '.join(PROFILES)}, mixed)"
        )
    geometry = geometry if geometry is not None else tenant_geometry()
    geometry_overrides = asdict(geometry)
    plans: list[TenantPlan] = []
    for index in range(tenants):
        tenant = f"t{index:05d}"
        kind = kinds[index % len(kinds)]
        backend = backends[(index // len(kinds)) % len(backends)]
        tenant_profile = (
            PROFILES[index % len(PROFILES)] if profile == "mixed" else profile
        )
        rng = random.Random(derive_seed(seed, index))
        scripter = _TenantScripter(
            tenant, kind, backend, geometry_overrides, rng
        )
        _SCRIPTERS[tenant_profile](scripter, ops_per_tenant)
        scripter.checkpoint()
        scripter.close()
        plans.append(
            TenantPlan(
                tenant=tenant,
                kind=kind,
                backend=backend,
                profile=tenant_profile,
                requests=tuple(scripter.requests),
            )
        )
    return LoadPlan(
        seed=seed,
        profile=profile,
        ops_per_tenant=ops_per_tenant,
        geometry=geometry_overrides,
        plans=tuple(plans),
    )


def plan_fingerprint(plan: LoadPlan) -> str:
    """SHA-256 over the canonical JSON of every request, in plan order.

    Two plans with the same fingerprint put byte-identical traffic on
    the wire; the golden test pins this so a generator change that
    silently alters traffic fails loudly.
    """
    digest = hashlib.sha256()
    for tenant_plan in plan.plans:
        for request in tenant_plan.requests:
            digest.update(
                json.dumps(
                    request, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
            )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class TenantOutcome:
    """One tenant's observed run: counts, digests, final payload."""

    tenant: str
    kind: str
    backend: str
    profile: str
    ok: int = 0
    errors: dict = field(default_factory=dict)
    checkpoints: list = field(default_factory=list)
    close: dict | None = None

    def record(self, request: dict, response: dict) -> None:
        if response.get("ok"):
            self.ok += 1
            if request["op"] == "checkpoint":
                self.checkpoints.append(response.get("digest"))
            elif request["op"] == "close":
                self.close = response
        else:
            kind = response.get("error", {}).get("kind", "internal")
            self.errors[kind] = self.errors.get(kind, 0) + 1


@dataclass
class LoadResult:
    """Everything a load run observed, ready for the scale report."""

    outcomes: list[TenantOutcome]
    elapsed: float
    requests_sent: int
    server_stats: dict | None = None
    metrics: dict | None = None

    @property
    def error_total(self) -> int:
        return sum(
            count
            for outcome in self.outcomes
            for count in outcome.errors.values()
        )


def run_load_inline(
    plan: LoadPlan, executor: ShardExecutor
) -> LoadResult:
    """Drive a plan against an in-process executor, closed-loop.

    Each round sends every still-active tenant's next request (one in
    flight per tenant — the same discipline as the socket client), so
    shard batches carry genuinely interleaved multi-tenant traffic.
    """
    outcomes = {
        plan_.tenant: TenantOutcome(
            plan_.tenant, plan_.kind, plan_.backend, plan_.profile
        )
        for plan_ in plan.plans
    }
    cursors = {plan_.tenant: 0 for plan_ in plan.plans}
    streams = {plan_.tenant: plan_.requests for plan_ in plan.plans}
    sent = 0
    started = time.perf_counter()
    while True:
        batches: dict[int, list[dict]] = {}
        order: dict[int, list[str]] = {}
        for tenant, cursor in cursors.items():
            if cursor >= len(streams[tenant]):
                continue
            shard = executor.shard_of(tenant)
            batches.setdefault(shard, []).append(streams[tenant][cursor])
            order.setdefault(shard, []).append(tenant)
            cursors[tenant] += 1
        if not batches:
            break
        responses = executor.execute(batches)
        for shard, tenants in order.items():
            shard_responses = responses.get(shard, [])
            for position, tenant in enumerate(tenants):
                request = streams[tenant][cursors[tenant] - 1]
                response = (
                    shard_responses[position]
                    if position < len(shard_responses)
                    else {"ok": False, "error": {"kind": "shard-failed"}}
                )
                outcomes[tenant].record(request, response)
                sent += 1
    return LoadResult(
        outcomes=[outcomes[plan_.tenant] for plan_ in plan.plans],
        elapsed=time.perf_counter() - started,
        requests_sent=sent,
    )


class _Connection:
    """One multiplexed client socket: ids in flight, futures resolved."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: dict[object, asyncio.Future] = {}
        self._lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self.reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue
                future = self.pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        finally:
            for future in self.pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self.pending.clear()

    async def request(self, payload: dict) -> dict:
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.pending[payload["id"]] = future
        async with self._lock:
            self.writer.write(encode_line(payload))
            await self.writer.drain()
        return await future

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_load(
    plan: LoadPlan,
    host: str,
    port: int,
    *,
    connections: int = 8,
    fetch_metrics: bool = True,
) -> LoadResult:
    """Drive a plan against a live server, closed-loop per tenant.

    Tenants share a small pool of multiplexed connections (tenant *i*
    on connection ``i % connections``); each tenant awaits every
    response before sending its next op.
    """
    connections = max(1, min(connections, len(plan.plans) or 1))
    pool: list[_Connection] = []
    for _ in range(connections):
        reader, writer = await asyncio.open_connection(host, port)
        pool.append(_Connection(reader, writer))

    async def drive(index: int, tenant_plan: TenantPlan) -> TenantOutcome:
        outcome = TenantOutcome(
            tenant_plan.tenant,
            tenant_plan.kind,
            tenant_plan.backend,
            tenant_plan.profile,
        )
        connection = pool[index % len(pool)]
        for request in tenant_plan.requests:
            response = await connection.request(request)
            outcome.record(request, response)
        return outcome

    started = time.perf_counter()
    try:
        outcomes = list(
            await asyncio.gather(
                *(
                    drive(index, tenant_plan)
                    for index, tenant_plan in enumerate(plan.plans)
                )
            )
        )
        elapsed = time.perf_counter() - started
        server_stats = metrics = None
        if fetch_metrics:
            stats_response = await pool[0].request(
                {"v": PROTOCOL_VERSION, "id": "load:stats", "op": "stats"}
            )
            if stats_response.get("ok"):
                server_stats = {
                    key: value
                    for key, value in stats_response.items()
                    if key not in ("v", "id", "ok")
                }
            metrics_response = await pool[0].request(
                {"v": PROTOCOL_VERSION, "id": "load:metrics", "op": "metrics"}
            )
            if metrics_response.get("ok"):
                metrics = metrics_response.get("registries")
    finally:
        for connection in pool:
            await connection.close()
    return LoadResult(
        outcomes=outcomes,
        elapsed=elapsed,
        requests_sent=plan.request_count,
        server_stats=server_stats,
        metrics=metrics,
    )
