"""The asyncio front door: GC-as-a-service over line-delimited JSON.

One :class:`HeapServer` hosts every tenant heap behind a TCP listener.
Connections are cheap multiplexers: any connection may carry requests
for any number of tenants (the per-request ``id`` correlates
responses), so a load generator can drive thousands of tenants over a
handful of sockets.

The data path is queue → batch → shard:

1. a connection handler decodes and validates each line; malformed
   requests are answered immediately with ``bad-request`` and never
   reach a shard;
2. valid tenant ops are appended to the owning shard's queue (stable
   hash routing via :func:`repro.service.shard.shard_of`) with a
   future for the response;
3. a single dispatcher task drains all queues into one batch per
   shard and hands them to the :class:`~repro.service.shard.ShardExecutor`
   in a worker thread (the executor blocks on process-pool fan-out;
   the event loop keeps accepting traffic meanwhile), then resolves
   the futures.

Because the dispatcher swaps whole queues, per-tenant request order is
preserved end to end: a closed-loop client that awaits each response
before sending the next op observes exactly the serial semantics the
isolation oracle demands.

Server ops (``ping``/``stats``/``metrics``/``shutdown``) are answered
by the parent directly.  Backpressure and heap exhaustion are ordinary
*responses* on this path — a shard at its tenant cap refuses ``open``
with its occupancy attached, an exhausted heap refuses ``alloc`` with
the per-space snapshot attached, and in neither case does any session
or connection die.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.metrics.export import to_prometheus
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    validate_request,
)
from repro.service.shard import ShardExecutor

__all__ = ["HeapServer"]

#: Largest accepted request line, in bytes.  Far above any legitimate
#: op, far below a memory-pressure vector.
MAX_LINE_BYTES = 1 << 20


class HeapServer:
    """The multi-tenant heap service (see module docstring)."""

    def __init__(
        self,
        *,
        shards: int = 2,
        jobs: int = 0,
        tenant_cap: int | None = None,
        timeout: float | None = None,
        retries: int | None = None,
    ) -> None:
        self.executor = ShardExecutor(
            shards,
            jobs=jobs,
            tenant_cap=tenant_cap,
            timeout=timeout,
            retries=retries,
        )
        self._queues: list[list[tuple[dict, asyncio.Future]]] = [
            [] for _ in range(shards)
        ]
        self._kick = asyncio.Event()
        self._closing = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_closed(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`close`) lands."""
        await self._closing.wait()
        await self.close()

    async def close(self) -> None:
        self._closing.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._kick.set()
            await self._dispatcher
            self._dispatcher = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closing.is_set():
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionResetError,
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                writer.write(encode_line(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            payload = decode_line(line)
        except ProtocolError as exc:
            return error_response(None, exc.kind, exc.detail)
        request_id = payload.get("id")
        if isinstance(request_id, bool) or not isinstance(
            request_id, (int, str)
        ):
            request_id = None
        try:
            request = validate_request(payload)
        except ProtocolError as exc:
            return error_response(request_id, exc.kind, exc.detail)
        op = request["op"]
        if op == "ping":
            return ok_response(request["id"], pong=True)
        if op == "stats":
            return ok_response(request["id"], **self.stats())
        if op == "metrics":
            return self._metrics_response(request)
        if op == "shutdown":
            self._closing.set()
            self._kick.set()
            return ok_response(request["id"], closing=True)
        shard = self.executor.shard_of(request["tenant"])
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._queues[shard].append((request, future))
        self._kick.set()
        return await future

    def _metrics_response(self, request: dict) -> dict:
        registries = self.executor.merged_metrics()
        if request.get("format") == "prometheus":
            return ok_response(
                request["id"], prometheus=to_prometheus(registries)
            )
        return ok_response(
            request["id"],
            registries={
                registry.label: registry.to_jsonable()
                for registry in registries
            },
        )

    def stats(self) -> dict[str, Any]:
        snapshot = self.executor.stats()
        snapshot["requests_served"] = self.requests_served
        return snapshot

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._kick.wait()
            self._kick.clear()
            if any(self._queues):
                pending = [queue for queue in self._queues if queue]
                batches: dict[int, list[dict]] = {}
                futures: dict[int, list[asyncio.Future]] = {}
                for shard, queue in enumerate(self._queues):
                    if not queue:
                        continue
                    self._queues[shard] = []
                    batches[shard] = [request for request, _ in queue]
                    futures[shard] = [future for _, future in queue]
                del pending
                try:
                    responses = await loop.run_in_executor(
                        None, self.executor.execute, batches
                    )
                except Exception as exc:  # keep the dispatcher alive
                    responses = {
                        shard: [
                            error_response(
                                request.get("id"),
                                "internal",
                                f"dispatch failed: "
                                f"{type(exc).__name__}: {exc}",
                            )
                            for request in ops
                        ]
                        for shard, ops in batches.items()
                    }
                for shard, shard_futures in futures.items():
                    shard_responses = responses.get(shard, [])
                    for future, response in zip(
                        shard_futures, shard_responses
                    ):
                        if not future.done():
                            future.set_result(response)
                    # Chaos pseudo-ops produce no response; a real
                    # request can only be left behind by a bug, and a
                    # hung client is worse than a structured error.
                    for future in shard_futures[len(shard_responses):]:
                        if not future.done():
                            future.set_result(
                                error_response(
                                    None,
                                    "shard-failed",
                                    "batch returned no response",
                                    shard=shard,
                                )
                            )
            elif self._closing.is_set():
                return
            if self._closing.is_set() and not any(self._queues):
                return
