"""GC-as-a-service: thousands of tenant heaps behind one server.

The service stack, bottom to top:

* :mod:`repro.service.protocol` — the versioned line-JSON wire format
  and its validation;
* :mod:`repro.service.session` — one tenant's heap/roots/collector
  context, migratable via checksummed snapshots;
* :mod:`repro.service.shard` — sharded batch execution over the
  hardened parallel engine, with drain/respawn on worker loss;
* :mod:`repro.service.server` — the asyncio TCP front door;
* :mod:`repro.service.loadgen` — offline-pure seeded load plans and
  the closed-loop client that drives them;
* :mod:`repro.service.isolation` — the oracle proving service runs
  byte-identical to per-tenant serial replays;
* :mod:`repro.service.report` — the committed scale report and its
  CI gates.
"""

from repro.service.protocol import PROTOCOL_VERSION
from repro.service.server import HeapServer
from repro.service.shard import ShardExecutor

__all__ = ["PROTOCOL_VERSION", "HeapServer", "ShardExecutor"]
