"""The perm benchmark: Zorn's permutation generator.

Another classic storage benchmark of the paper's era (Zorn used it to
study conservative collection [41]; Larceny's own suite carries a
version).  ``perm`` generates all permutations of an n-element list
with the Zaks/Shen recursive algorithm, keeping every permutation in
an accumulator.  Its storage pattern complements the paper's six: the
accumulated permutations form a *queue of the ages* — storage survives
from its creation until the whole accumulator is dropped, so survival
rates are high and flat at every age, like the decay model's late
tail but deterministic.

``mpermNKL``-style batching (keep K batches of N! permutations,
dropping the oldest) gives the bounded variant used to stress
old-generation collection: the oldest storage is always the next to
die, the iterated-process signature again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.interop import from_list
from repro.runtime.machine import Machine
from repro.runtime.values import SchemeValue

__all__ = ["PermResult", "run_mperm", "run_perm"]


def _permutations(machine: Machine, items: SchemeValue) -> SchemeValue:
    """All permutations of a list, as a list of lists (pure consing).

    The classic ``(permutations x)`` of the Scheme benchmark: for each
    rotation of the list, permute the tail and cons the head onto
    every result.
    """
    if items is None:
        return machine.cons(None, None)  # one empty permutation

    results: SchemeValue = None
    rotations = _rotations(machine, items)
    while rotations is not None:
        rotation = machine.car(rotations)
        head = machine.car(rotation)
        tail = machine.cdr(rotation)
        sub_permutations = _permutations(machine, tail)
        while sub_permutations is not None:
            permutation = machine.cons(
                head, machine.car(sub_permutations)
            )
            results = machine.cons(permutation, results)
            sub_permutations = machine.cdr(sub_permutations)
        rotations = machine.cdr(rotations)
    return results


def _rotations(machine: Machine, items: SchemeValue) -> SchemeValue:
    """All rotations of a list, each a freshly consed list."""
    length = 0
    probe = items
    while probe is not None:
        length += 1
        probe = machine.cdr(probe)
    results: SchemeValue = None
    current = items
    for _ in range(length):
        # Rebuild the rotation starting at `current`.
        rotation = _append(machine, current, _take_until(machine, items, current))
        results = machine.cons(rotation, results)
        current = machine.cdr(current)
    return results


def _take_until(
    machine: Machine, items: SchemeValue, stop: SchemeValue
) -> SchemeValue:
    """The prefix of ``items`` before the ``stop`` cell, freshly consed."""
    if items is stop or (items == stop):
        return None
    return machine.cons(
        machine.car(items), _take_until(machine, machine.cdr(items), stop)
    )


def _append(
    machine: Machine, front: SchemeValue, back: SchemeValue
) -> SchemeValue:
    if front is None:
        return back
    return machine.cons(
        machine.car(front), _append(machine, machine.cdr(front), back)
    )


def _count(machine: Machine, items: SchemeValue) -> int:
    count = 0
    while items is not None:
        count += 1
        items = machine.cdr(items)
    return count


@dataclass(frozen=True)
class PermResult:
    """Outcome of one perm run."""

    n: int
    permutation_count: int
    batches: int
    words_allocated: int


def run_perm(machine: Machine, n: int = 5) -> PermResult:
    """Generate (and hold) all n! permutations of (1 .. n)."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n!r}")
    words_before = machine.stats.words_allocated
    items = from_list(machine, list(range(1, n + 1)))
    permutations = _permutations(machine, items)
    count = _count(machine, permutations)
    expected = 1
    for factor in range(2, n + 1):
        expected *= factor
    assert count == expected, f"expected {expected} permutations, got {count}"
    return PermResult(
        n=n,
        permutation_count=count,
        batches=1,
        words_allocated=machine.stats.words_allocated - words_before,
    )


def run_mperm(
    machine: Machine, n: int = 5, *, keep: int = 3, batches: int = 8
) -> PermResult:
    """The mpermNKL variant: a sliding window of permutation batches.

    Keeps the ``keep`` most recent batches alive, dropping the oldest
    on each new batch — old storage is always the next to die.
    """
    if keep < 1 or batches < keep:
        raise ValueError(
            f"need 1 <= keep <= batches, got keep={keep!r}, "
            f"batches={batches!r}"
        )
    words_before = machine.stats.words_allocated
    window: list[SchemeValue] = []
    count = 0
    for _ in range(batches):
        items = from_list(machine, list(range(1, n + 1)))
        batch = _permutations(machine, items)
        count = _count(machine, batch)
        window.append(batch)
        if len(window) > keep:
            window.pop(0)  # the mass extinction of the oldest batch
    return PermResult(
        n=n,
        permutation_count=count,
        batches=batches,
        words_allocated=machine.stats.words_allocated - words_before,
    )
