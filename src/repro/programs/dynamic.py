"""The dynamic / 10dynamic benchmark (Table 2: "Henglein's dynamic
type inference").

The paper's 10dynamic "consists of an interprocedural static analysis
iterated 10 times on its own source code, to simulate its use on
several files in succession"; its storage signature is the *iterated
process*: "almost all of the storage it allocates during each
iteration survives until nearly the end of the iteration" (Figure 2,
Table 4), and across iterations survival *decreases* with age
(Table 5) because each iteration ends in a mass extinction.

This reproduction implements a Henglein-style tagging analysis over a
toy functional language:

* a deterministic corpus of top-level definitions is generated once,
  before the measured portion (as the paper reads the source once
  before measuring);
* each iteration infers types for the whole corpus with a union-find
  constraint solver whose type nodes are heap vectors, mutated by
  ``vector-set!`` (exercising the write barrier);
* the constraint graph, the environments, and the per-node
  annotations all stay reachable until the iteration completes —
  then everything except a small summary (the inter-iteration
  carryover visible in Table 5) is dropped at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.runtime.interop import from_list
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, Ref, SchemeValue

__all__ = ["DynamicResult", "generate_corpus", "infer_program", "run_dynamic"]


# ----------------------------------------------------------------------
# Corpus generation (the benchmark's "source code")
# ----------------------------------------------------------------------

_CONST_KINDS = ["num", "bool", "nil"]


def _generate_expression(rng: random.Random, depth: int, env: list[str]) -> list:
    """One random expression in the toy language (Python shorthand)."""
    if depth <= 0 or (env and rng.random() < 0.3):
        if env and rng.random() < 0.7:
            return ["var", rng.choice(env)]
        return ["const", rng.choice(_CONST_KINDS)]
    form = rng.random()
    if form < 0.3:
        param = f"v{rng.randrange(10_000)}"
        body = _generate_expression(rng, depth - 1, env + [param])
        return ["lambda", param, body]
    if form < 0.55:
        fn = _generate_expression(rng, depth - 1, env)
        arg = _generate_expression(rng, depth - 1, env)
        return ["app", fn, arg]
    if form < 0.75:
        return [
            "if",
            _generate_expression(rng, depth - 1, env),
            _generate_expression(rng, depth - 1, env),
            _generate_expression(rng, depth - 1, env),
        ]
    if form < 0.9:
        name = f"v{rng.randrange(10_000)}"
        value = _generate_expression(rng, depth - 1, env)
        body = _generate_expression(rng, depth - 1, env + [name])
        return ["let", name, value, body]
    return [
        "cons",
        _generate_expression(rng, depth - 1, env),
        _generate_expression(rng, depth - 1, env),
    ]


def generate_corpus(
    machine: Machine,
    *,
    definitions: int = 60,
    depth: int = 5,
    seed: int = 1997,
) -> list[SchemeValue]:
    """Generate the corpus as heap-allocated ASTs (read-once, pre-measurement)."""
    rng = random.Random(seed)
    corpus = []
    for index in range(definitions):
        body = _generate_expression(rng, depth, [])
        corpus.append(
            from_list(machine, ["define", f"def{index}", body])
        )
    return corpus


# ----------------------------------------------------------------------
# Type inference (union-find over heap vectors)
# ----------------------------------------------------------------------

# A type node is a 3-slot vector: [tag, a, b].
#   tag "var":  a = link (another node or None), b = unused
#   tag "fun":  a = domain node, b = codomain node
#   tag "num"/"bool"/"nil"/"list": leaf (a = element node for "list")


class _Inference:
    """One iteration's inference state (all storage heap-allocated)."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.var_tag = machine.intern("tyvar")
        self.fun_tag = machine.intern("tyfun")
        self.leaf_tags = {
            kind: machine.intern(f"ty{kind}")
            for kind in ("num", "bool", "nil", "list")
        }
        #: Coercions ("dynamic" tags) the analysis would insert.
        self.coercions = 0
        #: Per-node annotation records, retained to the iteration's end
        #: (the analyzer's output: a type annotation per program point).
        self.annotations: list[Ref] = []
        #: Per-definition scratch (caches, worklists) retained for a
        #: sliding window of definitions, then dropped: the few-percent
        #: mid-iteration mortality of the paper's Table 4.
        self.scratch: list[list[Ref]] = []
        self.scratch_window = 10
        #: Nodes allocated (a size measure; not a liveness root).
        self.node_count = 0

    # -- node construction -------------------------------------------

    def fresh_var(self) -> Ref:
        node = self.machine.make_vector(3)
        self.machine.vector_set(node, 0, self.var_tag)
        self.node_count += 1
        return node

    def make_fun(self, domain: Ref, codomain: Ref) -> Ref:
        node = self.machine.make_vector(3)
        self.machine.vector_set(node, 0, self.fun_tag)
        self.machine.vector_set(node, 1, domain)
        self.machine.vector_set(node, 2, codomain)
        self.node_count += 1
        return node

    def make_leaf(self, kind: str) -> Ref:
        node = self.machine.make_vector(3)
        self.machine.vector_set(node, 0, self.leaf_tags[kind])
        self.node_count += 1
        return node

    def annotate(self, node_type: Ref) -> None:
        """Record one program point's annotation (16-word vector).

        The annotations are the analyzer's per-iteration output; they
        stay live until the iteration completes, dominating the
        iteration's allocation exactly as 10dynamic's per-file results
        dominate it (Figure 2's climbing ramp).  The record is sized
        like a real analyzer's per-point result (type, flow facts,
        source span), keeping the corpus a small fraction of each
        iteration's allocation, as 10dynamic's source is of its.
        """
        record = self.machine.make_vector(15)
        self.machine.vector_set(record, 0, node_type)
        self.annotations.append(record)

    # -- union-find ----------------------------------------------------

    def find(self, node: Ref) -> Ref:
        machine = self.machine
        root = node
        while (
            machine.vector_ref(root, 0) == self.var_tag
            and machine.vector_ref(root, 1) is not None
        ):
            root = machine.vector_ref(root, 1)
        # Path compression: relink every variable on the path (each
        # relink is a mutator store through the write barrier).
        while node != root:
            parent = machine.vector_ref(node, 1)
            if parent is None:
                break
            machine.vector_set(node, 1, root)
            node = parent
        return root

    def unify(self, a: Ref, b: Ref) -> None:
        machine = self.machine
        a = self.find(a)
        b = self.find(b)
        if a == b:
            return
        a_tag = machine.vector_ref(a, 0)
        b_tag = machine.vector_ref(b, 0)
        if a_tag == self.var_tag:
            machine.vector_set(a, 1, b)
            return
        if b_tag == self.var_tag:
            machine.vector_set(b, 1, a)
            return
        if a_tag == self.fun_tag and b_tag == self.fun_tag:
            self.unify(machine.vector_ref(a, 1), machine.vector_ref(b, 1))
            self.unify(machine.vector_ref(a, 2), machine.vector_ref(b, 2))
            return
        if a_tag == b_tag:
            return
        # Constructor clash: Henglein's analysis inserts a dynamic
        # coercion here instead of failing.
        self.coercions += 1

    # -- traversal -----------------------------------------------------

    def infer(self, expr: SchemeValue, env: SchemeValue) -> Ref:
        """Infer a type for ``expr`` under environment ``env``.

        ``env`` is a Scheme association list (name symbol . type node),
        extended functionally — its spine is part of the iteration's
        live storage.  Every node's resulting type is annotated.
        """
        # A transient work item, dead as soon as this node is done:
        # the analyzer's worklist churn (the few-percent mortality
        # visible in the paper's Table 4).
        self.machine.cons(expr, None)
        node_type = self._infer(expr, env)
        self.annotate(node_type)
        return node_type

    def _infer(self, expr: SchemeValue, env: SchemeValue) -> Ref:
        machine = self.machine
        head = machine.symbol_name(machine.car(expr))
        if head == "var":
            name = machine.car(machine.cdr(expr))
            binding = self._assq(name, env)
            if binding is None:
                self.coercions += 1  # free variable: dynamically tagged
                return self.fresh_var()
            return machine.cdr(binding)
        if head == "const":
            kind = machine.symbol_name(machine.car(machine.cdr(expr)))
            return self.make_leaf(kind if kind in self.leaf_tags else "num")
        if head == "lambda":
            param = machine.car(machine.cdr(expr))
            body = machine.car(machine.cdr(machine.cdr(expr)))
            domain = self.fresh_var()
            extended = machine.cons(machine.cons(param, domain), env)
            codomain = self.infer(body, extended)
            return self.make_fun(domain, codomain)
        if head == "app":
            fn = machine.car(machine.cdr(expr))
            arg = machine.car(machine.cdr(machine.cdr(expr)))
            fn_type = self.infer(fn, env)
            arg_type = self.infer(arg, env)
            result = self.fresh_var()
            self.unify(fn_type, self.make_fun(arg_type, result))
            return result
        if head == "if":
            rest = machine.cdr(expr)
            cond_type = self.infer(machine.car(rest), env)
            self.unify(cond_type, self.make_leaf("bool"))
            then_type = self.infer(machine.car(machine.cdr(rest)), env)
            else_type = self.infer(
                machine.car(machine.cdr(machine.cdr(rest))), env
            )
            self.unify(then_type, else_type)
            return then_type
        if head == "let":
            rest = machine.cdr(expr)
            name = machine.car(rest)
            value = machine.car(machine.cdr(rest))
            body = machine.car(machine.cdr(machine.cdr(rest)))
            value_type = self.infer(value, env)
            extended = machine.cons(machine.cons(name, value_type), env)
            return self.infer(body, extended)
        if head == "cons":
            rest = machine.cdr(expr)
            head_type = self.infer(machine.car(rest), env)
            tail_type = self.infer(machine.car(machine.cdr(rest)), env)
            element = self.fresh_var()
            self.unify(head_type, element)
            node = self.make_leaf("list")
            self.machine.vector_set(node, 1, element)
            self.unify(tail_type, node)
            return node
        raise ValueError(f"unknown expression head: {head!r}")

    def _assq(self, name: SchemeValue, env: SchemeValue) -> SchemeValue:
        machine = self.machine
        while env is not None:
            binding = machine.car(env)
            if machine.car(binding) == name:
                return binding
            env = machine.cdr(env)
        return None


def infer_program(
    machine: Machine, corpus: list[SchemeValue], *, passes: int = 2
) -> tuple[int, int]:
    """One iteration: ``passes`` analysis passes over the corpus.

    Real interprocedural analyses make several passes (constraint
    generation, then propagation); every pass's results stay live
    until the iteration completes.  Returns (coercion count, node
    count).  All inference storage is dropped when this function
    returns — the iteration's mass extinction.
    """
    inference = _Inference(machine)
    for _ in range(passes):
        env: SchemeValue = None
        for definition in corpus:
            name = machine.car(machine.cdr(definition))
            body = machine.car(machine.cdr(machine.cdr(definition)))
            definition_type = inference.infer(body, env)
            env = machine.cons(machine.cons(name, definition_type), env)
            # Per-definition scratch: lives for a window of further
            # definitions, then dies mid-iteration.
            inference.scratch.append(
                [machine.make_vector(7) for _ in range(8)]
            )
            if len(inference.scratch) > inference.scratch_window:
                inference.scratch.pop(0)
    return inference.coercions, inference.node_count


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of one (10)dynamic run."""

    iterations: int
    coercions_per_iteration: tuple[int, ...]
    nodes_per_iteration: tuple[int, ...]
    words_allocated: int


def run_dynamic(
    machine: Machine,
    *,
    iterations: int = 10,
    definitions: int = 60,
    depth: int = 5,
    seed: int = 1997,
) -> DynamicResult:
    """Run the benchmark: generate the corpus once, analyze it N times.

    A one-iteration summary list (name . coercions) is kept alive into
    the following iteration, reproducing the partial carryover Table 5
    shows.
    """
    if iterations < 1:
        raise ValueError(f"need at least one iteration, got {iterations!r}")
    corpus = generate_corpus(
        machine, definitions=definitions, depth=depth, seed=seed
    )
    words_before = machine.stats.words_allocated
    coercions = []
    nodes = []
    previous_summary: SchemeValue = None  # one-iteration carryover
    for index in range(iterations):
        count, node_count = infer_program(machine, corpus)
        coercions.append(count)
        nodes.append(node_count)
        summary = machine.cons(Fixnum(index), machine.cons(Fixnum(count), None))
        previous_summary = summary  # drop the older one
    del previous_summary
    return DynamicResult(
        iterations=iterations,
        coercions_per_iteration=tuple(coercions),
        nodes_per_iteration=tuple(nodes),
        words_allocated=machine.stats.words_allocated - words_before,
    )
