"""GCBench: the classic Boehm/Ellis/Demers tree benchmark.

Not one of the paper's Table 2 programs, but the canonical GC stress
test of the same era (the paper's web site pointed at "more
benchmarks"; this is the one every collector of the period was run
on).  It exercises a storage pattern none of the six paper benchmarks
has: *bounded-lifetime* medium-sized structures — complete binary
trees that live exactly as long as it takes to build the next pair of
trees — plus a long-lived tree and array allocated up front.

The port follows the original's structure: for each depth d from
``min_depth`` to ``max_depth`` in steps of 2, build tree pairs
top-down and bottom-up such that each depth allocates roughly the
same total storage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, Ref, SchemeValue

__all__ = ["GcBenchResult", "run_gcbench"]


def _make_node(machine: Machine, left: SchemeValue, right: SchemeValue) -> Ref:
    """A tree node: a pair (left . right), as the Scheme versions use."""
    return machine.cons(left, right)


def _populate(machine: Machine, depth: int, node: Ref) -> None:
    """Build a tree of the given depth top-down, mutating ``node``."""
    if depth <= 0:
        return
    left = _make_node(machine, None, None)
    right = _make_node(machine, None, None)
    machine.set_car(node, left)
    machine.set_cdr(node, right)
    _populate(machine, depth - 1, left)
    _populate(machine, depth - 1, right)


def _make_tree(machine: Machine, depth: int) -> SchemeValue:
    """Build a tree of the given depth bottom-up."""
    if depth <= 0:
        return _make_node(machine, None, None)
    return _make_node(
        machine,
        _make_tree(machine, depth - 1),
        _make_tree(machine, depth - 1),
    )


def _tree_size(depth: int) -> int:
    """Nodes in a complete binary tree of the given depth."""
    return (1 << (depth + 1)) - 1


def _check_tree(machine: Machine, node: SchemeValue, depth: int) -> int:
    """Count nodes, verifying the expected complete-tree shape."""
    if node is None:
        return 0
    count = 1
    left = machine.car(node)
    right = machine.cdr(node)
    if depth > 0:
        assert left is not None and right is not None, "tree truncated"
    count += _check_tree(machine, left, depth - 1) if left is not None else 0
    count += (
        _check_tree(machine, right, depth - 1) if right is not None else 0
    )
    return count


@dataclass(frozen=True)
class GcBenchResult:
    """Outcome of one GCBench run."""

    min_depth: int
    max_depth: int
    long_lived_nodes: int
    transient_trees: int
    words_allocated: int


def run_gcbench(
    machine: Machine,
    *,
    min_depth: int = 4,
    max_depth: int = 8,
    long_lived_depth: int | None = None,
    array_words: int = 500,
) -> GcBenchResult:
    """Run GCBench: transient tree pairs per depth + long-lived data."""
    if min_depth < 1 or max_depth < min_depth:
        raise ValueError(
            f"need 1 <= min_depth <= max_depth, got {min_depth}, {max_depth}"
        )
    long_lived_depth = (
        max_depth if long_lived_depth is None else long_lived_depth
    )
    words_before = machine.stats.words_allocated

    # Long-lived structures, allocated up front as in the original.
    long_lived = _make_node(machine, None, None)
    _populate(machine, long_lived_depth, long_lived)
    array = machine.make_vector(array_words)
    for slot in range(0, array_words, 2):
        machine.vector_set(array, slot, Fixnum(slot))

    transient_trees = 0
    for depth in range(min_depth, max_depth + 1, 2):
        # As in the original: iterate so each depth allocates roughly
        # the same storage as the deepest single tree.
        iterations = max(1, _tree_size(max_depth) // _tree_size(depth))
        for _ in range(iterations):
            # Top-down.
            temp = _make_node(machine, None, None)
            _populate(machine, depth, temp)
            del temp
            # Bottom-up.
            temp = _make_tree(machine, depth)
            del temp
            transient_trees += 2

    long_lived_nodes = _check_tree(machine, long_lived, long_lived_depth)
    assert long_lived_nodes == _tree_size(long_lived_depth), (
        "long-lived tree corrupted by collection"
    )
    return GcBenchResult(
        min_depth=min_depth,
        max_depth=max_depth,
        long_lived_nodes=long_lived_nodes,
        transient_trees=transient_trees,
        words_allocated=machine.stats.words_allocated - words_before,
    )
