"""The six benchmark programs of Table 2, ported to the runtime."""

from repro.programs.boyer import BoyerResult, run_nboyer, run_sboyer
from repro.programs.dynamic import DynamicResult, run_dynamic
from repro.programs.gcbench import GcBenchResult, run_gcbench
from repro.programs.lattice import LatticeResult, run_lattice
from repro.programs.nbody import NBodyResult, run_nbody
from repro.programs.nucleic import NucleicResult, run_nucleic
from repro.programs.perm import PermResult, run_mperm, run_perm
from repro.programs.registry import (
    BENCHMARKS,
    EXTRA_BENCHMARKS,
    Benchmark,
    benchmark_names,
    get_benchmark,
)

__all__ = [
    "BENCHMARKS",
    "EXTRA_BENCHMARKS",
    "Benchmark",
    "GcBenchResult",
    "PermResult",
    "BoyerResult",
    "DynamicResult",
    "LatticeResult",
    "NBodyResult",
    "NucleicResult",
    "benchmark_names",
    "get_benchmark",
    "run_dynamic",
    "run_gcbench",
    "run_lattice",
    "run_mperm",
    "run_perm",
    "run_nbody",
    "run_nboyer",
    "run_nucleic",
    "run_sboyer",
]
