"""Registry of the six benchmark programs (the paper's Table 2).

Each entry names a benchmark, describes it with the paper's own
wording, and provides a runner ``(machine, scale) -> result`` where
``scale`` selects a problem size: 0 is the test-suite size, 1 the
default experiment size, 2 a heavier size.  Runners return the
program-specific result object; the harness reads allocation and GC
work from the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.programs.boyer import run_nboyer, run_sboyer
from repro.programs.deriv import run_deriv
from repro.programs.dynamic import run_dynamic
from repro.programs.gcbench import run_gcbench
from repro.programs.lattice import run_lattice
from repro.programs.nbody import run_nbody
from repro.programs.nucleic import run_nucleic
from repro.programs.perm import run_mperm
from repro.runtime.machine import Machine

__all__ = [
    "BENCHMARKS",
    "EXTRA_BENCHMARKS",
    "Benchmark",
    "benchmark_names",
    "get_benchmark",
]


@dataclass(frozen=True)
class Benchmark:
    """One Table 2 entry.

    Attributes:
        name: the paper's benchmark name.
        description: the paper's one-line description.
        run: ``(machine, scale) -> result``.
        storage_note: the paper's characterization of its storage
            behaviour (used in docs and experiment output).
    """

    name: str
    description: str
    run: Callable[[Machine, int], object]
    storage_note: str


def _nbody_runner(machine: Machine, scale: int) -> object:
    sizes = {0: (8, 3), 1: (24, 6), 2: (40, 10)}
    bodies, steps = sizes.get(scale, sizes[1])
    return run_nbody(machine, bodies=bodies, steps=steps)


def _nucleic_runner(machine: Machine, scale: int) -> object:
    sizes = {0: (5, 3), 1: (8, 3), 2: (10, 3)}
    residues, candidates = sizes.get(scale, sizes[1])
    return run_nucleic(machine, residues=residues, candidates=candidates)


def _lattice_runner(machine: Machine, scale: int) -> object:
    sizes = {
        0: ((2, 2), (3, 3)),
        1: ((2, 2, 2), (3, 3)),
        2: ((2, 2, 2), (4, 3)),
    }
    source, target = sizes.get(scale, sizes[1])
    return run_lattice(machine, source, target)


def _dynamic_runner(machine: Machine, scale: int) -> object:
    sizes = {0: (3, 40, 5), 1: (10, 60, 5), 2: (10, 90, 6)}
    iterations, definitions, depth = sizes.get(scale, sizes[1])
    return run_dynamic(
        machine, iterations=iterations, definitions=definitions, depth=depth
    )


def _nboyer_runner(machine: Machine, scale: int) -> object:
    return run_nboyer(machine, n=min(scale, 2))


def _sboyer_runner(machine: Machine, scale: int) -> object:
    return run_sboyer(machine, n=min(scale, 2))


BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark(
        name="nbody",
        description="inverse-square law simulation",
        run=_nbody_runner,
        storage_note=(
            "enormous flonum allocation rate, tiny live set (every FP "
            "operation allocates 16 bytes)"
        ),
    ),
    Benchmark(
        name="nucleic2",
        description="determination of nucleic acids' spatial structure",
        run=_nucleic_runner,
        storage_note=(
            "float-intensive backtracking search; highest gc overhead "
            "of the suite in Table 3"
        ),
    ),
    Benchmark(
        name="lattice",
        description="enumeration of maps between lattices",
        run=_lattice_runner,
        storage_note=(
            "typical of purely functional programs: high allocation, "
            "almost no long-lived storage"
        ),
    ),
    Benchmark(
        name="10dynamic",
        description="Henglein's dynamic type inference",
        run=_dynamic_runner,
        storage_note=(
            "iterated process with per-iteration mass extinctions; "
            "satisfies neither generational hypothesis and runs WORSE "
            "under the conventional generational collector"
        ),
    ),
    Benchmark(
        name="nboyer",
        description="term rewriting and tautology checking",
        run=_nboyer_runner,
        storage_note=(
            "rewritten subtrees become nearly permanent; the suite's "
            "only weak evidence for the strong generational hypothesis"
        ),
    ),
    Benchmark(
        name="sboyer",
        description="tweaked version of nboyer (Baker's shared consing)",
        run=_sboyer_runner,
        storage_note=(
            "allocation collapses; survival rates flat near 100% "
            "(strong hypothesis not satisfied)"
        ),
    ),
)


def _gcbench_runner(machine: Machine, scale: int) -> object:
    sizes = {0: (3, 5), 1: (4, 10), 2: (4, 12)}
    min_depth, max_depth = sizes.get(scale, sizes[1])
    return run_gcbench(machine, min_depth=min_depth, max_depth=max_depth)


def _mperm_runner(machine: Machine, scale: int) -> object:
    sizes = {0: (4, 2, 5), 1: (5, 3, 10), 2: (6, 3, 10)}
    n, keep, batches = sizes.get(scale, sizes[1])
    return run_mperm(machine, n, keep=keep, batches=batches)


def _deriv_runner(machine: Machine, scale: int) -> object:
    sizes = {0: 20, 1: 150, 2: 400}
    return run_deriv(machine, iterations=sizes.get(scale, sizes[1]))


#: Era-contemporary workloads beyond the paper's Table 2 (Boehm's
#: GCBench, Zorn's perm family); runnable through the CLI and the
#: harness but not part of the Table 2/3 reproductions.
EXTRA_BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark(
        name="gcbench",
        description="Boehm/Ellis/Demers binary-tree GC stress test",
        run=_gcbench_runner,
        storage_note=(
            "bounded-lifetime transient trees over a long-lived tree "
            "and array"
        ),
    ),
    Benchmark(
        name="mperm",
        description="Zorn's mpermNKL sliding-window permutations",
        run=_mperm_runner,
        storage_note=(
            "a queue of the ages: the oldest batch is always the next "
            "to die"
        ),
    ),
    Benchmark(
        name="deriv",
        description=(
            "Gabriel's symbolic differentiation, in Scheme via the "
            "interpreter"
        ),
        run=_deriv_runner,
        storage_note=(
            "pure list churn plus the interpreter's own environment "
            "frames; almost nothing survives"
        ),
    ),
)


def benchmark_names(*, include_extras: bool = True) -> list[str]:
    names = [benchmark.name for benchmark in BENCHMARKS]
    if include_extras:
        names.extend(benchmark.name for benchmark in EXTRA_BENCHMARKS)
    return names


def get_benchmark(name: str) -> Benchmark:
    for benchmark in (*BENCHMARKS, *EXTRA_BENCHMARKS):
        if benchmark.name == name:
            return benchmark
    raise KeyError(
        f"unknown benchmark {name!r}; available: {benchmark_names()}"
    )
