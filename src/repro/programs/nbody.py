"""The nbody benchmark (Table 2: "inverse-square law simulation").

The paper's nbody is an O(N) multipole simulation; its GC-relevant
behaviour, though, is entirely due to Larceny's boxed flonums: "each
of the ... floating point operations allocates 16 bytes of heap
storage" (§7.2), producing an enormous allocation rate with a tiny
live set (Table 3: 160 MB allocated, < 1 MB peak).  This reproduction
uses a direct inverse-square integrator — the force law and the
flonum-boxing behaviour are identical, only the asymptotic complexity
differs, which is irrelevant to storage behaviour (documented in
DESIGN.md).

Bodies are heap vectors of boxed flonums; every arithmetic operation
allocates a fresh 4-word flonum through the machine, exactly like the
paper's Larceny.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.runtime.machine import Machine
from repro.runtime.values import Ref

__all__ = ["NBodyResult", "run_nbody"]

# Body vector layout: [mass, x, y, z, vx, vy, vz], all boxed flonums.
_MASS, _X, _Y, _Z, _VX, _VY, _VZ = range(7)


def _make_bodies(machine: Machine, count: int, seed: int) -> list[Ref]:
    rng = random.Random(seed)
    bodies = []
    for _ in range(count):
        body = machine.make_vector(7)
        machine.vector_set(body, _MASS, machine.make_flonum(rng.uniform(0.5, 2.0)))
        for slot in (_X, _Y, _Z):
            machine.vector_set(body, slot, machine.make_flonum(rng.uniform(-1, 1)))
        for slot in (_VX, _VY, _VZ):
            machine.vector_set(
                body, slot, machine.make_flonum(rng.uniform(-0.1, 0.1))
            )
        bodies.append(body)
    return bodies


def _advance(machine: Machine, bodies: list[Ref], dt: Ref) -> None:
    """One leapfrog step; every flonum operation allocates."""
    fl = machine
    count = len(bodies)
    for i in range(count):
        body_i = bodies[i]
        ax = fl.make_flonum(0.0)
        ay = fl.make_flonum(0.0)
        az = fl.make_flonum(0.0)
        for j in range(count):
            if i == j:
                continue
            body_j = bodies[j]
            dx = fl.fl_sub(fl.vector_ref(body_j, _X), fl.vector_ref(body_i, _X))
            dy = fl.fl_sub(fl.vector_ref(body_j, _Y), fl.vector_ref(body_i, _Y))
            dz = fl.fl_sub(fl.vector_ref(body_j, _Z), fl.vector_ref(body_i, _Z))
            d2 = fl.fl_add(
                fl.fl_add(fl.fl_mul(dx, dx), fl.fl_mul(dy, dy)),
                fl.fl_add(fl.fl_mul(dz, dz), fl.make_flonum(1e-4)),
            )
            inv_d3 = fl.fl_div(
                fl.make_flonum(1.0), fl.fl_mul(d2, fl.fl_sqrt(d2))
            )
            scale = fl.fl_mul(fl.vector_ref(body_j, _MASS), inv_d3)
            ax = fl.fl_add(ax, fl.fl_mul(dx, scale))
            ay = fl.fl_add(ay, fl.fl_mul(dy, scale))
            az = fl.fl_add(az, fl.fl_mul(dz, scale))
        fl.vector_set(
            body_i, _VX, fl.fl_add(fl.vector_ref(body_i, _VX), fl.fl_mul(ax, dt))
        )
        fl.vector_set(
            body_i, _VY, fl.fl_add(fl.vector_ref(body_i, _VY), fl.fl_mul(ay, dt))
        )
        fl.vector_set(
            body_i, _VZ, fl.fl_add(fl.vector_ref(body_i, _VZ), fl.fl_mul(az, dt))
        )
    for body in bodies:
        for pos, vel in ((_X, _VX), (_Y, _VY), (_Z, _VZ)):
            fl.vector_set(
                body,
                pos,
                fl.fl_add(
                    fl.vector_ref(body, pos),
                    fl.fl_mul(fl.vector_ref(body, vel), dt),
                ),
            )


def _energy(machine: Machine, bodies: list[Ref]) -> float:
    """Total energy (host-side floats; a correctness probe, not workload)."""
    def fv(body: Ref, slot: int) -> float:
        return machine.flonum_value(machine.vector_ref(body, slot))

    total = 0.0
    for i, body_i in enumerate(bodies):
        mass_i = fv(body_i, _MASS)
        speed2 = fv(body_i, _VX) ** 2 + fv(body_i, _VY) ** 2 + fv(body_i, _VZ) ** 2
        total += 0.5 * mass_i * speed2
        for body_j in bodies[i + 1 :]:
            dx = fv(body_i, _X) - fv(body_j, _X)
            dy = fv(body_i, _Y) - fv(body_j, _Y)
            dz = fv(body_i, _Z) - fv(body_j, _Z)
            distance = (dx * dx + dy * dy + dz * dz + 1e-4) ** 0.5
            total -= mass_i * fv(body_j, _MASS) / distance
    return total


@dataclass(frozen=True)
class NBodyResult:
    """Outcome of one nbody run."""

    bodies: int
    steps: int
    initial_energy: float
    final_energy: float
    words_allocated: int

    @property
    def energy_drift(self) -> float:
        return abs(self.final_energy - self.initial_energy)


def run_nbody(
    machine: Machine,
    *,
    bodies: int = 32,
    steps: int = 8,
    dt: float = 1e-3,
    seed: int = 20,
) -> NBodyResult:
    """Run the benchmark: integrate ``bodies`` bodies for ``steps`` steps."""
    if bodies < 2:
        raise ValueError(f"need at least 2 bodies, got {bodies!r}")
    if steps < 1:
        raise ValueError(f"need at least 1 step, got {steps!r}")
    body_list = _make_bodies(machine, bodies, seed)
    words_before = machine.stats.words_allocated
    initial = _energy(machine, body_list)
    dt_flonum = machine.make_flonum(dt)
    for _ in range(steps):
        _advance(machine, body_list, dt_flonum)
    final = _energy(machine, body_list)
    return NBodyResult(
        bodies=bodies,
        steps=steps,
        initial_energy=initial,
        final_energy=final,
        words_allocated=machine.stats.words_allocated - words_before,
    )
