"""The nboyer / sboyer benchmarks (Table 2: "term rewriting and
tautology checking").

``run_nboyer`` reproduces Clinger's updated Boyer benchmark: set up
the lemma database, instantiate the standard proof obligation under
the standard substitution, rewrite it to normal form, and check that
the result is a tautology.  ``run_sboyer`` is the same computation
with Baker's shared-consing tweak.

The problem-scaling parameter ``n`` ("suggested by Boyer") wraps the
proof obligation: the scaled theorem is ``(or T (f))`` of the previous
level.  Rewriting each wrapper re-walks (and re-copies) the entire
normalized tree and if-distributes over it, so work and allocation
grow by a roughly constant factor per increment — the growth pattern
of the paper's sboyer2/sboyer3/sboyer4 rows in Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs.boyer.rewriter import BoyerRewriter
from repro.programs.boyer.rules import build_lemma_database
from repro.programs.boyer.terms import apply_subst, term_size
from repro.runtime.interop import from_list
from repro.runtime.machine import Machine

__all__ = ["BoyerResult", "run_nboyer", "run_sboyer"]

#: The proof obligation of the original benchmark.
_THEOREM = [
    "implies",
    ["and", ["implies", "x", "y"],
     ["and", ["implies", "y", "z"],
      ["and", ["implies", "z", "u"], ["implies", "u", "w"]]]],
    ["implies", "x", "w"],
]

#: The standard substitution instantiating the obligation's atoms.
_SUBSTITUTION: dict[str, list] = {
    "x": ["f", ["plus", ["plus", "a", "b"], ["plus", "c", ["zero"]]]],
    "y": ["f", ["times", ["times", "a", "b"], ["plus", "c", "d"]]],
    "z": ["f", ["reverse", ["append", ["append", "a", "b"], ["nil"]]]],
    "u": ["equal", ["plus", "a", "b"], ["difference", "x", "y"]],
    "w": ["lessp", ["remainder", "a", "b"],
          ["member", "a", ["length", "b"]]],
}


@dataclass(frozen=True)
class BoyerResult:
    """Outcome of one Boyer run.

    Attributes:
        proved: whether the theorem was judged a tautology (must be
            True; anything else means the rewriter is broken).
        rewrites: rewrite-rule applications performed.
        rewritten_size: pairs in the rewritten (normalized) term.
        words_allocated: heap words the run allocated.
    """

    proved: bool
    rewrites: int
    rewritten_size: int
    words_allocated: int


def _run(machine: Machine, n: int, shared_consing: bool) -> BoyerResult:
    if n < 0:
        raise ValueError(f"scaling parameter must be non-negative, got {n!r}")
    words_before = machine.stats.words_allocated
    lemmas = build_lemma_database(machine)
    rewriter = BoyerRewriter(machine, lemmas, shared_consing=shared_consing)

    theorem: list = _THEOREM
    for _ in range(n):
        theorem = ["or", theorem, ["f"]]
    term = from_list(machine, theorem)
    subst = {
        name: from_list(machine, shorthand)
        for name, shorthand in _SUBSTITUTION.items()
    }
    instance = apply_subst(machine, subst, term)

    rewritten = rewriter.rewrite(instance)
    proved = rewriter.tautologyp(rewritten, None, None)
    return BoyerResult(
        proved=proved,
        rewrites=rewriter.rewrite_count,
        rewritten_size=term_size(machine, rewritten),
        words_allocated=machine.stats.words_allocated - words_before,
    )


def run_nboyer(machine: Machine, n: int = 0) -> BoyerResult:
    """The nboyer benchmark at scale ``n`` (paper's nboyer2 is n=2)."""
    return _run(machine, n, shared_consing=False)


def run_sboyer(machine: Machine, n: int = 0) -> BoyerResult:
    """The sboyer benchmark at scale ``n`` (Baker's shared consing)."""
    return _run(machine, n, shared_consing=True)
