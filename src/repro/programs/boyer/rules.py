"""The Boyer benchmark's lemma database.

This is the classic rewrite-rule list of the Boyer benchmark (Gabriel's
``boyer``, as updated in Clinger's ``nboyer``): each lemma is a term
``(equal lhs rhs)`` and is indexed under the operator symbol of its
left-hand side.  The database is built once, as Scheme list structure
in the simulated heap, and is long-lived for the whole run — it is a
significant part of the benchmark's permanent storage.

Two deliberate departures from the 1977 original, matching the paper's
description of ``nboyer`` ("We have fixed one bug in addition to those
noted by Baker, replaced property lists by a faster and more portable
data structure"):

* numeric literals in patterns are *constants* (the original's
  unifier treated every atom, numbers included, as a match variable —
  one of the classic Boyer bugs);
* the operator-to-lemma index is a host-side dictionary instead of
  symbol property lists.
"""

from __future__ import annotations

from repro.runtime.interop import from_list
from repro.runtime.machine import Machine
from repro.runtime.values import SchemeValue

__all__ = ["LEMMAS", "build_lemma_database"]

#: Each entry is ``(lhs, rhs)`` in shorthand: Python lists are compound
#: terms, strings are symbols, ints are numeric constants.
LEMMAS: list[tuple[object, object]] = [
    (["compile", "form"],
     ["reverse", ["codegen", ["optimize", "form"], ["nil"]]]),
    (["eqp", "x", "y"], ["equal", ["fix", "x"], ["fix", "y"]]),
    (["greaterp", "x", "y"], ["lessp", "y", "x"]),
    (["lesseqp", "x", "y"], ["not", ["lessp", "y", "x"]]),
    (["greatereqp", "x", "y"], ["not", ["lessp", "x", "y"]]),
    (["boolean", "x"],
     ["or", ["equal", "x", ["t"]], ["equal", "x", ["f"]]]),
    (["iff", "x", "y"],
     ["and", ["implies", "x", "y"], ["implies", "y", "x"]]),
    (["even1", "x"], ["if", ["zerop", "x"], ["t"], ["odd", ["sub1", "x"]]]),
    (["countps-", "l", "pred"], ["countps-loop", "l", "pred", ["zero"]]),
    (["fact-", "i"], ["fact-loop", "i", 1]),
    (["reverse-", "x"], ["reverse-loop", "x", ["nil"]]),
    (["divides", "x", "y"], ["zerop", ["remainder", "y", "x"]]),
    (["assume-true", "var", "alist"],
     ["cons", ["cons", "var", ["t"]], "alist"]),
    (["assume-false", "var", "alist"],
     ["cons", ["cons", "var", ["f"]], "alist"]),
    (["tautology-checker", "x"],
     ["tautologyp", ["normalize", "x"], ["nil"]]),
    (["falsify", "x"], ["falsify1", ["normalize", "x"], ["nil"]]),
    (["prime", "x"],
     ["and", ["not", ["zerop", "x"]],
      ["not", ["equal", "x", ["add1", ["zero"]]]],
      ["prime1", "x", ["sub1", "x"]]]),
    (["and", "p", "q"], ["if", "p", ["if", "q", ["t"], ["f"]], ["f"]]),
    (["or", "p", "q"], ["if", "p", ["t"], ["if", "q", ["t"], ["f"]]]),
    (["not", "p"], ["if", "p", ["f"], ["t"]]),
    (["implies", "p", "q"],
     ["if", "p", ["if", "q", ["t"], ["f"]], ["t"]]),
    (["fix", "x"], ["if", ["numberp", "x"], "x", ["zero"]]),
    (["if", ["if", "a", "b", "c"], "d", "e"],
     ["if", "a", ["if", "b", "d", "e"], ["if", "c", "d", "e"]]),
    (["zerop", "x"],
     ["or", ["equal", "x", ["zero"]], ["not", ["numberp", "x"]]]),
    (["plus", ["plus", "x", "y"], "z"], ["plus", "x", ["plus", "y", "z"]]),
    (["equal", ["plus", "a", "b"], ["zero"]],
     ["and", ["zerop", "a"], ["zerop", "b"]]),
    (["difference", "x", "x"], ["zero"]),
    (["equal", ["plus", "a", "b"], ["plus", "a", "c"]],
     ["equal", ["fix", "b"], ["fix", "c"]]),
    (["equal", ["zero"], ["difference", "x", "y"]],
     ["not", ["lessp", "y", "x"]]),
    (["equal", "x", ["difference", "x", "y"]],
     ["and", ["numberp", "x"],
      ["or", ["equal", "x", ["zero"]], ["zerop", "y"]]]),
    (["meaning", ["plus-tree", ["append", "x", "y"]], "a"],
     ["plus", ["meaning", ["plus-tree", "x"], "a"],
      ["meaning", ["plus-tree", "y"], "a"]]),
    (["meaning", ["plus-tree", ["plus-fringe", "x"]], "a"],
     ["fix", ["meaning", "x", "a"]]),
    (["append", ["append", "x", "y"], "z"],
     ["append", "x", ["append", "y", "z"]]),
    (["reverse", ["append", "a", "b"]],
     ["append", ["reverse", "b"], ["reverse", "a"]]),
    (["times", "x", ["plus", "y", "z"]],
     ["plus", ["times", "x", "y"], ["times", "x", "z"]]),
    (["times", ["times", "x", "y"], "z"],
     ["times", "x", ["times", "y", "z"]]),
    (["equal", ["times", "x", "y"], ["zero"]],
     ["or", ["zerop", "x"], ["zerop", "y"]]),
    (["exec", ["append", "x", "y"], "pds", "envrn"],
     ["exec", "y", ["exec", "x", "pds", "envrn"], "envrn"]),
    (["mc-flatten", "x", "y"], ["append", ["flatten", "x"], "y"]),
    (["member", "x", ["append", "a", "b"]],
     ["or", ["member", "x", "a"], ["member", "x", "b"]]),
    (["member", "x", ["reverse", "y"]], ["member", "x", "y"]),
    (["length", ["reverse", "x"]], ["length", "x"]),
    (["member", "a", ["intersect", "b", "c"]],
     ["and", ["member", "a", "b"], ["member", "a", "c"]]),
    (["nth", ["zero"], "i"], ["zero"]),
    (["exp", "i", ["plus", "j", "k"]],
     ["times", ["exp", "i", "j"], ["exp", "i", "k"]]),
    (["exp", "i", ["times", "j", "k"]], ["exp", ["exp", "i", "j"], "k"]),
    (["reverse-loop", "x", "y"], ["append", ["reverse", "x"], "y"]),
    (["reverse-loop", "x", ["nil"]], ["reverse", "x"]),
    (["count-list", "z", ["sort-lp", "x", "y"]],
     ["plus", ["count-list", "z", "x"], ["count-list", "z", "y"]]),
    (["equal", ["append", "a", "b"], ["append", "a", "c"]],
     ["equal", "b", "c"]),
    (["plus", ["remainder", "x", "y"],
      ["times", "y", ["quotient", "x", "y"]]],
     ["fix", "x"]),
    (["power-eval", ["big-plus1", "l", "i", "base"], "base"],
     ["plus", ["power-eval", "l", "base"], "i"]),
    (["power-eval", ["big-plus", "x", "y", "i", "base"], "base"],
     ["plus", "i", ["plus", ["power-eval", "x", "base"],
                    ["power-eval", "y", "base"]]]),
    (["remainder", "y", 1], ["zero"]),
    (["lessp", ["remainder", "x", "y"], "y"], ["not", ["zerop", "y"]]),
    (["remainder", "x", "x"], ["zero"]),
    (["lessp", ["quotient", "i", "j"], "i"],
     ["and", ["not", ["zerop", "i"]],
      ["or", ["zerop", "j"], ["not", ["equal", "j", 1]]]]),
    (["lessp", ["remainder", "x", "y"], "x"],
     ["and", ["not", ["zerop", "y"]], ["not", ["zerop", "x"]],
      ["not", ["lessp", "x", "y"]]]),
    (["power-eval", ["power-rep", "i", "base"], "base"], ["fix", "i"]),
    (["power-eval",
      ["big-plus", ["power-rep", "i", "base"],
       ["power-rep", "j", "base"], ["zero"], "base"],
      "base"],
     ["plus", "i", "j"]),
    (["gcd", "x", "y"], ["gcd", "y", "x"]),
    (["nth", ["append", "a", "b"], "i"],
     ["append", ["nth", "a", "i"],
      ["nth", "b", ["difference", "i", ["length", "a"]]]]),
    (["difference", ["plus", "x", "y"], "x"], ["fix", "y"]),
    (["difference", ["plus", "y", "x"], "x"], ["fix", "y"]),
    (["difference", ["plus", "x", "y"], ["plus", "x", "z"]],
     ["difference", "y", "z"]),
    (["times", "x", ["difference", "c", "w"]],
     ["difference", ["times", "c", "x"], ["times", "w", "x"]]),
    (["remainder", ["times", "x", "z"], "z"], ["zero"]),
    (["difference", ["plus", "b", ["plus", "a", "c"]], "a"],
     ["plus", "b", "c"]),
    (["difference", ["add1", ["plus", "y", "z"]], "z"], ["add1", "y"]),
    (["lessp", ["plus", "x", "y"], ["plus", "x", "z"]],
     ["lessp", "y", "z"]),
    (["lessp", ["times", "x", "z"], ["times", "y", "z"]],
     ["and", ["not", ["zerop", "z"]], ["lessp", "x", "y"]]),
    (["lessp", "y", ["plus", "x", "y"]], ["not", ["zerop", "x"]]),
    (["gcd", ["times", "x", "z"], ["times", "y", "z"]],
     ["times", "z", ["gcd", "x", "y"]]),
    (["value", ["normalize", "x"], "a"], ["value", "x", "a"]),
    (["equal", ["flatten", "x"], ["cons", "y", ["nil"]]],
     ["and", ["nlistp", "x"], ["equal", "x", "y"]]),
    (["listp", ["gopher", "x"]], ["listp", "x"]),
    (["samefringe", "x", "y"],
     ["equal", ["flatten", "x"], ["flatten", "y"]]),
    (["equal", ["greatest-factor", "x", "y"], ["zero"]],
     ["and", ["or", ["zerop", "y"], ["equal", "y", 1]],
      ["equal", "x", ["zero"]]]),
    (["equal", ["greatest-factor", "x", "y"], 1], ["equal", "x", 1]),
    (["numberp", ["greatest-factor", "x", "y"]],
     ["not", ["and", ["or", ["zerop", "y"], ["equal", "y", 1]],
              ["not", ["numberp", "x"]]]]),
    (["times-list", ["append", "x", "y"]],
     ["times", ["times-list", "x"], ["times-list", "y"]]),
    (["prime-list", ["append", "x", "y"]],
     ["and", ["prime-list", "x"], ["prime-list", "y"]]),
    (["equal", "z", ["times", "w", "z"]],
     ["and", ["numberp", "z"],
      ["or", ["equal", "z", ["zero"]], ["equal", "w", 1]]]),
    (["equal", "x", ["times", "x", "y"]],
     ["or", ["equal", "x", ["zero"]],
      ["and", ["numberp", "x"], ["equal", "y", 1]]]),
    (["remainder", ["times", "y", "x"], "y"], ["zero"]),
    (["equal", ["times", "a", "b"], 1],
     ["and", ["not", ["equal", "a", ["zero"]]],
      ["not", ["equal", "b", ["zero"]]],
      ["numberp", "a"], ["numberp", "b"],
      ["equal", ["sub1", "a"], ["zero"]],
      ["equal", ["sub1", "b"], ["zero"]]]),
    (["lessp", ["length", ["delete", "x", "l"]], ["length", "l"]],
     ["member", "x", "l"]),
    (["sort2", ["delete", "x", "l"]], ["delete", "x", ["sort2", "l"]]),
    (["dsort", "x"], ["sort2", "x"]),
    (["length",
      ["cons", "x1",
       ["cons", "x2",
        ["cons", "x3", ["cons", "x4", ["cons", "x5", ["cons", "x6", "x7"]]]]]]],
     ["plus", 6, ["length", "x7"]]),
    (["difference", ["add1", ["add1", "x"]], 2], ["fix", "x"]),
    (["quotient", ["plus", "x", ["plus", "x", "y"]], 2],
     ["plus", "x", ["quotient", "y", 2]]),
    (["sigma", ["zero"], "i"],
     ["quotient", ["times", "i", ["add1", "i"]], 2]),
    (["plus", "x", ["add1", "y"]],
     ["if", ["numberp", "y"], ["add1", ["plus", "x", "y"]],
      ["add1", "x"]]),
    (["equal", ["difference", "x", "y"], ["difference", "z", "y"]],
     ["if", ["lessp", "x", "y"], ["not", ["lessp", "y", "z"]],
      ["if", ["lessp", "z", "y"], ["not", ["lessp", "y", "x"]],
       ["equal", ["fix", "x"], ["fix", "z"]]]]),
    (["meaning", ["plus-tree", ["delete", "x", "y"]], "a"],
     ["if", ["member", "x", "y"],
      ["difference", ["meaning", ["plus-tree", "y"], "a"],
       ["meaning", "x", "a"]],
      ["meaning", ["plus-tree", "y"], "a"]]),
    (["times", "x", ["add1", "y"]],
     ["if", ["numberp", "y"], ["plus", "x", ["times", "x", "y"]],
      ["fix", "x"]]),
    (["nth", ["nil"], "i"], ["if", ["zerop", "i"], ["nil"], ["zero"]]),
    (["last", ["append", "a", "b"]],
     ["if", ["listp", "b"], ["last", "b"],
      ["if", ["listp", "a"], ["cons", ["car", ["last", "a"]], "b"], "b"]]),
    (["equal", ["lessp", "x", "y"], "z"],
     ["if", ["lessp", "x", "y"], ["equal", ["t"], "z"],
      ["equal", ["f"], "z"]]),
    (["assignment", "x", ["append", "a", "b"]],
     ["if", ["assignedp", "x", "a"], ["assignment", "x", "a"],
      ["assignment", "x", "b"]]),
    (["car", ["gopher", "x"]],
     ["if", ["listp", "x"], ["car", ["flatten", "x"]], ["zero"]]),
    (["flatten", ["cdr", ["gopher", "x"]]],
     ["if", ["listp", "x"], ["cdr", ["flatten", "x"]],
      ["cons", ["zero"], ["nil"]]]),
    (["quotient", ["times", "y", "x"], "y"],
     ["if", ["zerop", "y"], ["zero"], ["fix", "x"]]),
    (["get", "j", ["set", "i", "val", "mem"]],
     ["if", ["eqp", "j", "i"], "val", ["get", "j", "mem"]]),
]


def build_lemma_database(
    machine: Machine,
) -> dict[str, list[SchemeValue]]:
    """Build the lemma index: operator name -> list of (equal lhs rhs) terms.

    The lemma terms themselves are heap-allocated list structure; only
    the index is host-side (the "faster and more portable data
    structure").  Lemmas are consulted in the order added, as the
    original's ``add-lemma`` (which conses onto the property) reverses
    — we preserve the original's try-last-added-first order.
    """
    index: dict[str, list[SchemeValue]] = {}
    for lhs, rhs in LEMMAS:
        if not isinstance(lhs, list):
            raise ValueError(f"lemma lhs must be a compound term: {lhs!r}")
        lemma = from_list(machine, ["equal", lhs, rhs])
        operator = str(lhs[0])
        index.setdefault(operator, []).insert(0, lemma)
    return index
