"""Term representation for the Boyer benchmark.

Terms are ordinary Scheme data: a compound term is a proper list whose
head is the operator symbol and whose tail is the argument list; an
atomic term is a symbol.  All structure lives in the simulated heap as
cons cells, so every rewrite allocates exactly as the Scheme original
does.

The helpers here are the small term utilities the original benchmark
defines: structural equality (``term-equal?``), membership
(``member-equal``), and the substitution machinery
(``apply-subst``).  Substitution environments are Python dicts from
variable names to Scheme terms — the reproduction of the paper's note
that the authors "replaced property lists by a faster and more
portable data structure".
"""

from __future__ import annotations

from repro.runtime.machine import Machine
from repro.runtime.values import Ref, SchemeValue

__all__ = [
    "apply_subst",
    "is_compound",
    "member_equal",
    "term_equal",
    "term_operator",
    "term_size",
]


def is_compound(term: SchemeValue) -> bool:
    """Whether a term is compound (a pair), as the original's ``pair?``."""
    return isinstance(term, Ref) and term.is_pair()


def term_operator(machine: Machine, term: SchemeValue) -> SchemeValue:
    """The operator symbol of a compound term."""
    return machine.car(term)


def term_equal(machine: Machine, a: SchemeValue, b: SchemeValue) -> bool:
    """Structural term equality (the original's ``term-equal?``).

    Symbols are compared by identity (they are interned); compound
    terms recursively.
    """
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if isinstance(x, Ref) and x.is_pair():
            if not (isinstance(y, Ref) and y.is_pair()):
                return False
            if x == y:
                continue  # shared structure: trivially equal
            stack.append((machine.car(x), machine.car(y)))
            stack.append((machine.cdr(x), machine.cdr(y)))
        else:
            if x != y:
                return False
    return True


def member_equal(
    machine: Machine, term: SchemeValue, terms: SchemeValue
) -> bool:
    """Whether ``term`` occurs (by term-equal) in the list ``terms``."""
    while terms is not None:
        if term_equal(machine, term, machine.car(terms)):
            return True
        terms = machine.cdr(terms)
    return False


def apply_subst(
    machine: Machine, subst: dict[str, SchemeValue], term: SchemeValue
) -> SchemeValue:
    """Instantiate a term under a substitution (original ``apply-subst``).

    Unbound symbols stay themselves; compound terms are rebuilt (this
    is a major allocation source of the benchmark, as in the
    original).
    """
    if not is_compound(term):
        if isinstance(term, Ref) and term.is_symbol():
            bound = subst.get(machine.symbol_name(term))
            if bound is not None:
                return bound
        return term
    operator = machine.car(term)
    new_args = _apply_subst_list(machine, subst, machine.cdr(term))
    return machine.cons(operator, new_args)


def _apply_subst_list(
    machine: Machine, subst: dict[str, SchemeValue], terms: SchemeValue
) -> SchemeValue:
    if terms is None:
        return None
    head = apply_subst(machine, subst, machine.car(terms))
    tail = _apply_subst_list(machine, subst, machine.cdr(terms))
    return machine.cons(head, tail)


def term_size(machine: Machine, term: SchemeValue) -> int:
    """Number of pairs in a term (a size measure for scaling checks)."""
    if not is_compound(term):
        return 0
    count = 0
    stack = [term]
    while stack:
        t = stack.pop()
        if is_compound(t):
            count += 1
            stack.append(machine.car(t))
            stack.append(machine.cdr(t))
    return count
