"""The Boyer rewriter and tautology checker (nboyer / sboyer).

A faithful port of the benchmark's core procedures — ``rewrite``,
``rewrite-with-lemmas``, ``one-way-unify``, ``tautologyp``, ``tautp``
— operating on heap-allocated term structure.  The rewriter rebuilds
every compound term it touches, which is the benchmark's notorious
allocation behaviour ("recursive duplication and rewriting of a tree",
§7.2): once a subtree reaches canonical form its storage becomes
nearly permanent, while the rewriting of small subtrees churns
short-lived pairs.

``shared_consing=True`` applies Henry Baker's tweak (the ``sboyer``
variant): "check to see whether the subterms it has rewritten are
identical (in the sense of a pointer comparison) to the subterms of
the term it is rewriting; if they are, then the original term can be
returned instead of a copy."  The mutator becomes "a trifle slower"
(the extra comparisons) but allocation collapses.
"""

from __future__ import annotations

from repro.programs.boyer.terms import (
    apply_subst,
    is_compound,
    member_equal,
    term_equal,
)
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, Ref, SchemeValue

__all__ = ["BoyerRewriter"]


class BoyerRewriter:
    """One rewriting session over a lemma database.

    Args:
        machine: the runtime to allocate in.
        lemmas: operator name -> lemma terms ``(equal lhs rhs)``.
        shared_consing: Baker's sboyer tweak (see module docstring).
    """

    def __init__(
        self,
        machine: Machine,
        lemmas: dict[str, list[SchemeValue]],
        *,
        shared_consing: bool = False,
    ) -> None:
        self.machine = machine
        self.lemmas = lemmas
        self.shared_consing = shared_consing
        #: Rewrite-rule applications performed (a work measure).
        self.rewrite_count = 0

    # ------------------------------------------------------------------
    # Unification
    # ------------------------------------------------------------------

    def one_way_unify(
        self, term: SchemeValue, pattern: SchemeValue
    ) -> dict[object, SchemeValue] | None:
        """Match ``term`` against ``pattern``; return bindings or None.

        Symbols in the pattern are match variables; numeric literals
        are constants (the nboyer bug fix); compound patterns require
        the same operator and matching argument lists.
        """
        machine = self.machine
        subst: dict[object, SchemeValue] = {}

        def unify1(term: SchemeValue, pattern: SchemeValue) -> bool:
            if not is_compound(pattern):
                if isinstance(pattern, Fixnum):
                    return isinstance(term, Fixnum) and term == pattern
                if isinstance(pattern, Ref) and pattern.is_symbol():
                    key = machine.symbol_name(pattern)
                    bound = subst.get(key)
                    if bound is not None:
                        return term_equal(machine, term, bound)
                    subst[key] = term
                    return True
                return term == pattern
            if not is_compound(term):
                return False
            if machine.car(term) != machine.car(pattern):
                return False
            return unify_list(machine.cdr(term), machine.cdr(pattern))

        def unify_list(terms: SchemeValue, patterns: SchemeValue) -> bool:
            while patterns is not None:
                if terms is None:
                    return False
                if not unify1(machine.car(terms), machine.car(patterns)):
                    return False
                terms = machine.cdr(terms)
                patterns = machine.cdr(patterns)
            return terms is None

        return subst if unify1(term, pattern) else None

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------

    def rewrite(self, term: SchemeValue) -> SchemeValue:
        """Normalize a term under the lemma database (original ``rewrite``)."""
        machine = self.machine
        if not is_compound(term):
            return term
        operator = machine.car(term)
        old_args = machine.cdr(term)
        new_args = self._rewrite_args(old_args)
        if self.shared_consing and _same(new_args, old_args):
            candidate = term  # sboyer: reuse the original cell
        else:
            candidate = machine.cons(operator, new_args)
        return self._rewrite_with_lemmas(candidate)

    def _rewrite_args(self, args: SchemeValue) -> SchemeValue:
        machine = self.machine
        if args is None:
            return None
        old_head = machine.car(args)
        old_tail = machine.cdr(args)
        new_head = self.rewrite(old_head)
        new_tail = self._rewrite_args(old_tail)
        if (
            self.shared_consing
            and _same(new_head, old_head)
            and _same(new_tail, old_tail)
        ):
            return args  # share the whole unchanged tail
        return machine.cons(new_head, new_tail)

    def _rewrite_with_lemmas(self, term: SchemeValue) -> SchemeValue:
        machine = self.machine
        operator = machine.car(term)
        if isinstance(operator, Ref) and operator.is_symbol():
            for lemma in self.lemmas.get(machine.symbol_name(operator), ()):
                pattern = _second(machine, lemma)
                subst = self.one_way_unify(term, pattern)
                if subst is not None:
                    self.rewrite_count += 1
                    replacement = apply_subst(
                        machine, subst, _third(machine, lemma)
                    )
                    return self.rewrite(replacement)
        return term

    # ------------------------------------------------------------------
    # Tautology checking
    # ------------------------------------------------------------------

    def tautp(self, term: SchemeValue) -> bool:
        """The benchmark's top level: rewrite, then check for tautology."""
        return self.tautologyp(self.rewrite(term), None, None)

    def tautologyp(
        self,
        term: SchemeValue,
        true_lst: SchemeValue,
        false_lst: SchemeValue,
    ) -> bool:
        machine = self.machine
        while True:
            if self._truep(term, true_lst):
                return True
            if self._falsep(term, false_lst):
                return False
            if not is_compound(term):
                return False
            if not _head_is(machine, term, "if"):
                return False
            condition = _second(machine, term)
            then_branch = _third(machine, term)
            else_branch = _fourth(machine, term)
            if self._truep(condition, true_lst):
                term = then_branch
            elif self._falsep(condition, false_lst):
                term = else_branch
            else:
                return self.tautologyp(
                    then_branch, machine.cons(condition, true_lst), false_lst
                ) and self.tautologyp(
                    else_branch, true_lst, machine.cons(condition, false_lst)
                )

    def _truep(self, term: SchemeValue, lst: SchemeValue) -> bool:
        machine = self.machine
        if _head_is(machine, term, "t"):
            return True
        return member_equal(machine, term, lst)

    def _falsep(self, term: SchemeValue, lst: SchemeValue) -> bool:
        machine = self.machine
        if _head_is(machine, term, "f"):
            return True
        return member_equal(machine, term, lst)


def _head_is(machine: Machine, term: SchemeValue, name: str) -> bool:
    """Whether a term is compound with the given operator symbol."""
    if not is_compound(term):
        return False
    head = machine.car(term)
    return (
        isinstance(head, Ref)
        and head.is_symbol()
        and machine.symbol_name(head) == name
    )


def _same(a: SchemeValue, b: SchemeValue) -> bool:
    """Pointer identity on heap values, plain equality on immediates."""
    if isinstance(a, Ref) and isinstance(b, Ref):
        return a.obj_id == b.obj_id
    return a is b or a == b


def _second(machine: Machine, lst: SchemeValue) -> SchemeValue:
    return machine.car(machine.cdr(lst))


def _third(machine: Machine, lst: SchemeValue) -> SchemeValue:
    return machine.car(machine.cdr(machine.cdr(lst)))


def _fourth(machine: Machine, lst: SchemeValue) -> SchemeValue:
    return machine.car(machine.cdr(machine.cdr(machine.cdr(lst))))
