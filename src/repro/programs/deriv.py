"""The deriv benchmark, in Scheme, through the interpreter.

Gabriel's ``deriv`` — symbolic differentiation over list-structured
expressions — is the oldest of the classic Lisp storage benchmarks and
a staple of the suites Larceny shipped with.  Unlike the other ports,
this one is *actual Scheme source* evaluated by
:mod:`repro.runtime.interp`, so its storage load includes the
interpreter's own environments and argument lists — demonstrating the
source-language path end to end.

Storage signature: pure list construction with immediate abandonment;
like ``lattice``, almost nothing survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.interop import to_python
from repro.runtime.interp import Interpreter
from repro.runtime.machine import Machine

__all__ = ["DERIV_SOURCE", "DerivResult", "run_deriv"]

#: The benchmark source (Gabriel's deriv, R7RS-small subset).
DERIV_SOURCE = """
(define (deriv-aux a) (list '/ (deriv a) a))

(define (map-deriv lst)
  (if (null? lst) '() (cons (deriv (car lst)) (map-deriv (cdr lst)))))

(define (map-deriv-aux lst)
  (if (null? lst) '() (cons (deriv-aux (car lst)) (map-deriv-aux (cdr lst)))))

(define (deriv a)
  (cond
    ((not (pair? a)) (if (eq? a 'x) 1 0))
    ((eq? (car a) '+) (cons '+ (map-deriv (cdr a))))
    ((eq? (car a) '-) (cons '- (map-deriv (cdr a))))
    ((eq? (car a) '*)
     (list '* a (cons '+ (map-deriv-aux (cdr a)))))
    ((eq? (car a) '/)
     (list '-
           (list '/ (deriv (cadr a)) (caddr a))
           (list '/ (cadr a)
                 (list '* (caddr a) (caddr a) (deriv (caddr a))))))
    (else 'error)))

(define (cadr p) (car (cdr p)))
(define (caddr p) (car (cdr (cdr p))))

(define (run n)
  (let loop ((i 0) (last '()))
    (if (= i n)
        last
        (loop (+ i 1)
              (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))))))
"""


@dataclass(frozen=True)
class DerivResult:
    """Outcome of one deriv run."""

    iterations: int
    derivative: object
    expressions_evaluated: int
    words_allocated: int


def run_deriv(machine: Machine, iterations: int = 50) -> DerivResult:
    """Differentiate Gabriel's standard expression ``iterations`` times."""
    if iterations < 1:
        raise ValueError(
            f"need at least one iteration, got {iterations!r}"
        )
    interpreter = Interpreter(machine)
    interpreter.run(DERIV_SOURCE)
    words_before = machine.stats.words_allocated
    result = interpreter.run(f"(run {iterations})")
    return DerivResult(
        iterations=iterations,
        derivative=to_python(machine, result),
        expressions_evaluated=interpreter.steps,
        words_allocated=machine.stats.words_allocated - words_before,
    )
