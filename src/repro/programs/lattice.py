"""The lattice benchmark (Table 2: "enumeration of maps between
lattices").

Counts the monotone maps from one finite lattice to another.  Lattices
are products of chains; the enumeration extends a partial map one
element at a time (in a linear extension of the source order), keeping
the partial map as heap-allocated list structure and rebuilding the
candidate lists functionally at every step.

This reproduces the benchmark's storage signature ("typical of purely
functional programs"): a high allocation rate of short-lived pairs and
almost no long-lived storage — every partial map dies as soon as the
recursion backtracks past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, SchemeValue

__all__ = ["LatticeResult", "count_monotone_maps", "run_lattice"]


@dataclass(frozen=True)
class Lattice:
    """A product of chains: element ``i`` is a coordinate tuple."""

    dims: tuple[int, ...]
    elements: tuple[tuple[int, ...], ...]

    @staticmethod
    def chain_product(dims: tuple[int, ...]) -> "Lattice":
        if not dims or any(d < 1 for d in dims):
            raise ValueError(
                f"dimensions must be positive and non-empty, got {dims!r}"
            )
        elements = tuple(product(*(range(d) for d in dims)))
        return Lattice(dims=dims, elements=elements)

    def leq(self, a: int, b: int) -> bool:
        """Component-wise order on elements (by index)."""
        return all(
            x <= y for x, y in zip(self.elements[a], self.elements[b])
        )

    def __len__(self) -> int:
        return len(self.elements)


def count_monotone_maps(
    machine: Machine, source: Lattice, target: Lattice
) -> int:
    """Count monotone maps from ``source`` to ``target``.

    The partial map under construction is a Scheme list of fixnums
    (most recently assigned element first), extended functionally: each
    recursive call conses a new head, so backtracking abandons exactly
    the garbage a pure Scheme implementation would.
    """
    order = sorted(
        range(len(source)), key=lambda index: source.elements[index]
    )
    # predecessors[i] = positions (into `order`) of earlier elements
    # comparable to order[i], with the direction of the constraint.
    constraints: list[list[tuple[int, bool]]] = []
    for position, element in enumerate(order):
        entry: list[tuple[int, bool]] = []
        for earlier_position in range(position):
            earlier = order[earlier_position]
            if source.leq(earlier, element):
                entry.append((earlier_position, True))  # f(earlier) <= v
            elif source.leq(element, earlier):
                entry.append((earlier_position, False))  # v <= f(earlier)
        constraints.append(entry)

    target_size = len(target)

    def assigned_value(partial: SchemeValue, back: int) -> int:
        """The value assigned ``back`` steps ago (list is newest-first)."""
        for _ in range(back):
            partial = machine.cdr(partial)
        head = machine.car(partial)
        assert isinstance(head, Fixnum)
        return head.value

    def extend(position: int, partial: SchemeValue) -> int:
        if position == len(order):
            return 1
        count = 0
        depth = position  # length of the partial list
        for candidate in range(target_size):
            ok = True
            for earlier_position, forward in constraints[position]:
                earlier_value = assigned_value(
                    partial, depth - 1 - earlier_position
                )
                if forward:
                    if not target.leq(earlier_value, candidate):
                        ok = False
                        break
                else:
                    if not target.leq(candidate, earlier_value):
                        ok = False
                        break
            if ok:
                extended = machine.cons(Fixnum(candidate), partial)
                count += extend(position + 1, extended)
        return count

    return extend(0, None)


@dataclass(frozen=True)
class LatticeResult:
    """Outcome of one lattice run."""

    map_count: int
    source_size: int
    target_size: int
    words_allocated: int


def run_lattice(
    machine: Machine,
    source_dims: tuple[int, ...] = (2, 2, 2),
    target_dims: tuple[int, ...] = (3, 3),
) -> LatticeResult:
    """Run the lattice benchmark: count maps between two chain products."""
    words_before = machine.stats.words_allocated
    source = Lattice.chain_product(tuple(source_dims))
    target = Lattice.chain_product(tuple(target_dims))
    count = count_monotone_maps(machine, source, target)
    return LatticeResult(
        map_count=count,
        source_size=len(source),
        target_size=len(target),
        words_allocated=machine.stats.words_allocated - words_before,
    )
