"""The nucleic2 benchmark (Table 2: "determination of nucleic acids'
spatial structure").

The original is Feeley et al.'s "pseudoknot": a backtracking search
over candidate 3D placements of RNA residues, dominated by
floating-point geometry.  Its GC-relevant signature (§7.2) is extreme:
"each of the 7 million floating point operations in nucleic2 allocates
16 bytes of heap storage", with under a megabyte live at the peak
(Table 3).

This reproduction keeps the computational shape — a depth-first search
placing residues by composing rigid-body transforms, pruning on a
distance constraint — over synthetic residue geometry (the real PDB-
derived conformation tables are not available offline; DESIGN.md
records the substitution).  All geometry uses boxed flonums through
the machine, so the allocation behaviour matches the original's.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.runtime.machine import Machine
from repro.runtime.values import Ref

__all__ = ["NucleicResult", "run_nucleic"]

# A rigid transform is a heap vector of 12 boxed flonums:
# a 3x3 rotation (row-major, slots 0..8) and a translation (9..11).


def _make_transform(machine: Machine, values: list[float]) -> Ref:
    transform = machine.make_vector(12)
    for slot, value in enumerate(values):
        machine.vector_set(transform, slot, machine.make_flonum(value))
    return transform


def _identity(machine: Machine) -> Ref:
    return _make_transform(
        machine, [1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0]
    )


def _rotation(axis: int, angle: float, offset: tuple[float, float, float]) -> list[float]:
    c, s = math.cos(angle), math.sin(angle)
    if axis == 0:
        rot = [1, 0, 0, 0, c, -s, 0, s, c]
    elif axis == 1:
        rot = [c, 0, s, 0, 1, 0, -s, 0, c]
    else:
        rot = [c, -s, 0, s, c, 0, 0, 0, 1]
    return rot + list(offset)


def _compose(machine: Machine, a: Ref, b: Ref) -> Ref:
    """Transform composition a . b, every flop boxing a flonum."""
    fl = machine
    result = machine.make_vector(12)
    for row in range(3):
        for col in range(3):
            acc = fl.make_flonum(0.0)
            for k in range(3):
                acc = fl.fl_add(
                    acc,
                    fl.fl_mul(
                        fl.vector_ref(a, 3 * row + k),
                        fl.vector_ref(b, 3 * k + col),
                    ),
                )
            machine.vector_set(result, 3 * row + col, acc)
    for row in range(3):
        acc = fl.vector_ref(a, 9 + row)
        for k in range(3):
            acc = fl.fl_add(
                acc,
                fl.fl_mul(
                    fl.vector_ref(a, 3 * row + k), fl.vector_ref(b, 9 + k)
                ),
            )
        machine.vector_set(result, 9 + row, acc)
    return result


def _origin_distance2(machine: Machine, transform: Ref) -> float:
    """Squared distance of the transform's translation from the origin."""
    total = 0.0
    for slot in (9, 10, 11):
        value = machine.flonum_value(machine.vector_ref(transform, slot))
        total += value * value
    return total


@dataclass(frozen=True)
class NucleicResult:
    """Outcome of one nucleic run."""

    residues: int
    candidates: int
    solutions: int
    placements_tried: int
    words_allocated: int


def run_nucleic(
    machine: Machine,
    *,
    residues: int = 7,
    candidates: int = 3,
    max_radius: float = 4.0,
    seed: int = 14,
) -> NucleicResult:
    """Search for conformations of a synthetic residue chain.

    Each residue may attach to its predecessor through one of
    ``candidates`` rigid transforms; a partial chain is pruned when its
    end wanders more than ``max_radius`` from the origin (the stand-in
    for the original's atom-clash constraint).  Counts complete
    conformations.
    """
    if residues < 1 or candidates < 1:
        raise ValueError("need at least one residue and one candidate")
    rng = random.Random(seed)
    candidate_transforms = [
        _make_transform(
            machine,
            _rotation(
                rng.randrange(3),
                rng.uniform(-math.pi / 3, math.pi / 3),
                (rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)),
            ),
        )
        for _ in range(candidates)
    ]
    words_before = machine.stats.words_allocated
    solutions = 0
    tried = 0
    limit2 = max_radius * max_radius

    def place(depth: int, frame: Ref) -> None:
        nonlocal solutions, tried
        if depth == residues:
            solutions += 1
            return
        for transform in candidate_transforms:
            tried += 1
            placed = _compose(machine, frame, transform)
            if _origin_distance2(machine, placed) <= limit2:
                place(depth + 1, placed)

    place(0, _identity(machine))
    return NucleicResult(
        residues=residues,
        candidates=candidates,
        solutions=solutions,
        placements_tried=tried,
        words_allocated=machine.stats.words_allocated - words_before,
    )
