"""The paper's primary contribution: decay model, analysis, and policies."""

from repro.core.analysis import (
    MarkConsEstimate,
    OverheadPoint,
    expected_live,
    fixed_point_f,
    live_fraction,
    mark_cons_ratio,
    nongenerational_mark_cons,
    optimal_generation_fraction,
    overhead_curve,
    relative_overhead,
    stable_equilibrium_holds,
)
from repro.core.decay import (
    LN2,
    RadioactiveDecayModel,
    equilibrium_live_storage,
    half_life_for_live_storage,
)
from repro.core.policy import (
    AdaptiveRemsetPolicy,
    FixedFractionPolicy,
    FixedJPolicy,
    HalfEmptyPolicy,
    StepSnapshot,
    TuningPolicy,
    leading_empty_steps,
)

__all__ = [
    "LN2",
    "AdaptiveRemsetPolicy",
    "FixedFractionPolicy",
    "FixedJPolicy",
    "HalfEmptyPolicy",
    "MarkConsEstimate",
    "OverheadPoint",
    "RadioactiveDecayModel",
    "StepSnapshot",
    "TuningPolicy",
    "equilibrium_live_storage",
    "expected_live",
    "fixed_point_f",
    "half_life_for_live_storage",
    "leading_empty_steps",
    "live_fraction",
    "mark_cons_ratio",
    "nongenerational_mark_cons",
    "optimal_generation_fraction",
    "overhead_curve",
    "relative_overhead",
    "stable_equilibrium_holds",
]
