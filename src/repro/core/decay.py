"""The radioactive decay model of object lifetimes (Section 2 of the paper).

In the radioactive decay model a single exponential distribution
describes the life expectancy of every object.  The model has one
parameter, the half-life ``h``: for every object live at time ``t0``,
the probability that the object is still alive at time ``t0 + t`` is
``2**(-t/h)``, independent of the object's age.  Time is measured in
allocation units (one unit per object allocated, or per word allocated,
depending on the caller's convention).

The model is *memoryless*: the age of a live object gives no
information about its remaining lifetime.  This defeats every heuristic
that tries to predict which objects will live longer than others, which
is exactly why the paper uses it as a stress test for generational
garbage collection.

Key quantities (paper Section 2):

* survival probability     ``S(t) = 2**(-t/h) = r**t`` with
  ``r = 2**(-1/h)``
* probability density      ``P_h(t) = (ln 2 / h) * 2**(-t/h)``
* equilibrium live storage ``n = 1/(1-r) ≈ h / ln 2``  (Equation 1)
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "LN2",
    "RadioactiveDecayModel",
    "equilibrium_live_storage",
    "half_life_for_live_storage",
]

#: Natural log of 2, written once so formulas read like the paper's.
LN2 = math.log(2.0)


def equilibrium_live_storage(half_life: float, *, exact: bool = False) -> float:
    """Expected number of live objects at equilibrium (Equation 1).

    At equilibrium one object dies per allocation, so the expected
    number ``n`` of live objects satisfies ``1 = n * (1 - 2**(-1/h))``.
    For large ``h`` this is approximately ``h / ln 2 ≈ 1.4427 h``.

    Args:
        half_life: the model's half-life ``h`` in allocation units.
        exact: if true, return the exact ``1/(1 - 2**(-1/h))`` instead
            of the paper's large-``h`` approximation.

    Raises:
        ValueError: if ``half_life`` is not positive.
    """
    if half_life <= 0:
        raise ValueError(f"half-life must be positive, got {half_life!r}")
    if exact:
        return 1.0 / (1.0 - 2.0 ** (-1.0 / half_life))
    return half_life / LN2


def half_life_for_live_storage(live_storage: float) -> float:
    """Inverse of Equation 1: the half-life that sustains ``n`` live objects."""
    if live_storage <= 0:
        raise ValueError(f"live storage must be positive, got {live_storage!r}")
    return live_storage * LN2


@dataclass(frozen=True)
class RadioactiveDecayModel:
    """The exponential ("radioactive decay") object-lifetime model.

    Attributes:
        half_life: the half-life ``h`` in allocation units.  After ``h``
            units of allocation, half of any cohort of live objects is
            expected to have died.
    """

    half_life: float

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError(
                f"half-life must be positive, got {self.half_life!r}"
            )

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------

    @property
    def survival_ratio(self) -> float:
        """Per-unit-time survival probability ``r = 2**(-1/h)``.

        Each live object independently survives one unit of allocation
        time with probability ``r``; the paper approximates
        ``r ≈ 1 - ln2/h`` for large ``h``.
        """
        return 2.0 ** (-1.0 / self.half_life)

    @property
    def decay_rate(self) -> float:
        """Instantaneous decay rate ``λ = ln 2 / h``."""
        return LN2 / self.half_life

    def survival_probability(self, t: float) -> float:
        """``S(t) = 2**(-t/h)``: probability of surviving ``t`` more units.

        Defined for any ``t >= 0`` and — this is the point of the
        model — independent of how old the object already is.
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t!r}")
        return 2.0 ** (-t / self.half_life)

    def death_probability(self, t: float) -> float:
        """Probability of being dead within the next ``t`` units."""
        return 1.0 - self.survival_probability(t)

    def pdf(self, t: float) -> float:
        """The probability density function ``P_h(t) = (ln2/h) 2**(-t/h)``."""
        if t < 0:
            return 0.0
        return self.decay_rate * self.survival_probability(t)

    def expected_lifetime(self) -> float:
        """Mean lifetime ``h / ln 2`` (also the equilibrium live storage)."""
        return self.half_life / LN2

    def median_lifetime(self) -> float:
        """Median lifetime — the half-life itself, by definition."""
        return self.half_life

    def conditional_survival(self, age: float, t: float) -> float:
        """P(alive at ``age + t`` | alive at ``age``).

        Memorylessness makes this equal to ``survival_probability(t)``
        for every ``age``; the method exists so tests can state the
        property explicitly.
        """
        if age < 0:
            raise ValueError(f"age must be non-negative, got {age!r}")
        # S(age + t) / S(age) == S(t) for the exponential distribution.
        return self.survival_probability(age + t) / self.survival_probability(age)

    # ------------------------------------------------------------------
    # Equilibrium
    # ------------------------------------------------------------------

    def equilibrium_live_storage(self, *, exact: bool = False) -> float:
        """Expected live storage at equilibrium (Equation 1)."""
        return equilibrium_live_storage(self.half_life, exact=exact)

    def expected_live_after(self, cohort: float, t: float) -> float:
        """Expected survivors from a cohort of ``cohort`` objects after ``t``."""
        if cohort < 0:
            raise ValueError(f"cohort must be non-negative, got {cohort!r}")
        return cohort * self.survival_probability(t)

    def time_to_decay_to(self, fraction: float) -> float:
        """Time for a cohort to decay to the given surviving fraction."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {fraction!r}"
            )
        return -self.half_life * math.log2(fraction)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_lifetime(self, rng: random.Random) -> float:
        """Draw a continuous lifetime from ``P_h``.

        Uses inverse-transform sampling: with ``u`` uniform on (0, 1],
        ``t = -h * log2(u)`` is exponentially distributed with the
        model's half-life.
        """
        u = rng.random()
        # random() is in [0, 1); flip to (0, 1] to avoid log(0).
        return -self.half_life * math.log2(1.0 - u)

    def sample_discrete_lifetime(self, rng: random.Random) -> int:
        """Draw an integer lifetime (in whole allocation units), >= 1.

        This is the geometric distribution with success probability
        ``1 - r``: the object dies during allocation unit ``t`` with
        probability ``r**(t-1) * (1-r)``.
        """
        u = rng.random()
        r = self.survival_ratio
        # Geometric inverse transform; ceil of the continuous sample.
        lifetime = int(math.ceil(math.log(1.0 - u) / math.log(r)))
        return max(1, lifetime)
