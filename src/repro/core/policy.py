"""Tuning policies for the non-predictive collector (Section 8.1).

The non-predictive collector has one dynamic tuning parameter, ``j``:
the number of youngest steps protected from the next collection.  The
paper recommends choosing ``j`` immediately after every collection so
that steps 1..j are empty and ``j <= k/2``; given the greatest ``l``
such that steps 1..l are empty, ``j = floor(l / 2)`` "seems like a
reasonable choice".  ``j`` may also be *decreased* at any time, which
Section 8.3 uses to cap remembered-set growth before a promotion.

Policies receive a :class:`StepSnapshot` describing the step array and
return the new ``j``.  They are deliberately decoupled from the
collector so experiments can swap them (see the ``tuning`` ablation in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

__all__ = [
    "AdaptiveRemsetPolicy",
    "FixedFractionPolicy",
    "FixedJPolicy",
    "HalfEmptyPolicy",
    "StepSnapshot",
    "TuningPolicy",
    "leading_empty_steps",
]


@dataclass(frozen=True)
class StepSnapshot:
    """What a tuning policy may observe after a collection.

    Attributes:
        step_used: words used in each step, ordered youngest (step 1)
            first.  Index 0 is step 1.
        step_capacity: capacity of each step in words.
        remset_size: current number of remembered-set entries that
            record pointers from the protected steps into the
            collectable steps.
        projected_remset_growth: the ephemeral collector's estimate of
            how many entries the next promotion would add (Section 8.3
            describes counting outbound pointers during ephemeral
            collections to obtain this).
    """

    step_used: Sequence[int]
    step_capacity: Sequence[int]
    remset_size: int = 0
    projected_remset_growth: int = 0

    @property
    def step_count(self) -> int:
        return len(self.step_used)


def leading_empty_steps(snapshot: StepSnapshot) -> int:
    """The greatest ``l`` such that steps 1..l are empty."""
    count = 0
    for used in snapshot.step_used:
        if used != 0:
            break
        count += 1
    return count


class TuningPolicy(Protocol):
    """Strategy for choosing the tuning parameter ``j`` after a collection."""

    def choose_j(self, snapshot: StepSnapshot) -> int:
        """Return the new ``j`` given the post-collection step state."""
        ...


def _clamp_j(j: int, snapshot: StepSnapshot) -> int:
    """Apply the paper's hard constraints: steps 1..j empty, j <= k/2."""
    empty = leading_empty_steps(snapshot)
    return max(0, min(j, empty, snapshot.step_count // 2))


@dataclass(frozen=True)
class FixedJPolicy:
    """Always request the same ``j`` (clamped to the paper's constraints).

    Table 1's worked example uses a fixed ``j = 1``.
    """

    j: int

    def __post_init__(self) -> None:
        if self.j < 0:
            raise ValueError(f"j must be non-negative, got {self.j!r}")

    def choose_j(self, snapshot: StepSnapshot) -> int:
        return _clamp_j(self.j, snapshot)


@dataclass(frozen=True)
class FixedFractionPolicy:
    """Request ``j ≈ g * k`` for a target generation fraction ``g``.

    This is the policy the Section 5 analysis models: a constant
    fraction ``g = j/k`` of the heap devoted to the protected
    generation.
    """

    g: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.g <= 0.5:
            raise ValueError(f"g must be in [0, 1/2], got {self.g!r}")

    def choose_j(self, snapshot: StepSnapshot) -> int:
        return _clamp_j(round(self.g * snapshot.step_count), snapshot)


class HalfEmptyPolicy:
    """The paper's Section 8.1 recommendation: ``j = floor(l / 2)``.

    ``l`` is the greatest integer such that steps 1..l are empty after
    the collection and renumbering.  Protecting only half of the empty
    prefix leaves headroom so that the *next* collection is also likely
    to leave steps 1..j empty, sustaining the stable equilibrium of
    Theorem 4.
    """

    def choose_j(self, snapshot: StepSnapshot) -> int:
        return _clamp_j(leading_empty_steps(snapshot) // 2, snapshot)


@dataclass(frozen=True)
class AdaptiveRemsetPolicy:
    """HalfEmptyPolicy with the Section 8.3 remembered-set safety valve.

    The base policy picks ``j``; if the current remembered set plus the
    projected growth from the next promotion exceeds ``max_remset``,
    ``j`` is reduced (possibly to zero, which empties the protected
    generation and hence the steps-1..j remembered set entirely).

    The reduction is proportional: each step of reduction is assumed to
    shed an equal share of the projected pressure, which matches the
    uniform-step geometry of the collector.
    """

    max_remset: int
    base: TuningPolicy | None = None

    def __post_init__(self) -> None:
        if self.max_remset < 0:
            raise ValueError(
                f"max_remset must be non-negative, got {self.max_remset!r}"
            )

    def choose_j(self, snapshot: StepSnapshot) -> int:
        base = self.base if self.base is not None else HalfEmptyPolicy()
        j = base.choose_j(snapshot)
        if j == 0:
            return 0
        pressure = snapshot.remset_size + snapshot.projected_remset_growth
        if pressure <= self.max_remset:
            return j
        if self.max_remset == 0:
            return 0
        # Shrink the protected region in proportion to the overshoot.
        scale = self.max_remset / pressure
        return _clamp_j(int(j * scale), snapshot)
