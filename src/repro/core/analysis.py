"""Mathematical analysis of non-predictive collection (Section 5 of the paper).

The garbage collection problem for the radioactive decay model has two
degrees of freedom: the half-life ``h`` and the *inverse load factor*
``L`` (total heap size divided by live storage).  The non-predictive
collector adds one policy knob, ``g = j/k``, the fraction of the heap
devoted to the protected young generation.

The central function is

    ``l(f, g) = 1 - 2**(-L f / ln 2) * (1 - L (g - f))``
              ``= 1 - exp(-L f) * (1 - L (g - f))``

the fraction of live storage expected to reside in the protected steps
1..j at the beginning of the next collection, where ``N f`` is the
space available in those steps just after the previous collection
(``0 <= f <= g``).

From ``l`` the paper derives:

* **Theorem 3** — ``l(f, g)`` is the large-``h`` limit of the exact
  expectation ``live_h(f, g) / n``.
* **Theorem 4** — when ``f = g``, ``g <= 1/2`` and
  ``L (1 - 2 g) >= 1 - l(g, g)`` the collector reaches a stable
  equilibrium with mark/cons ratio
  ``(1 - l) / (L (1 - g) - (1 - l))``.
* **Corollary 5** — dividing by the non-generational mark/sweep ratio
  ``1 / (L - 1)`` gives the relative overhead plotted in Figure 1.
* **Equation 4** — outside the stable regime, a fixed point
  ``f = clamp(1 - g + (l(f, g) - 1) / L, 0, g)`` yields a lower bound
  on the mark/cons ratio (the thick lines in Figure 1).

All functions here are closed-form and deterministic; the simulation
cross-checks live in :mod:`repro.experiments.figure1`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "MarkConsEstimate",
    "OverheadPoint",
    "expected_live",
    "fixed_point_f",
    "live_fraction",
    "mark_cons_ratio",
    "nongenerational_mark_cons",
    "optimal_generation_fraction",
    "overhead_curve",
    "relative_overhead",
    "stable_equilibrium_holds",
]


def _check_parameters(f: float, g: float, load: float) -> None:
    """Validate the (f, g, L) triple shared by the analysis functions."""
    if load <= 1.0:
        raise ValueError(
            f"inverse load factor L must exceed 1 (heap larger than live "
            f"storage), got {load!r}"
        )
    if not 0.0 <= g <= 0.5:
        raise ValueError(f"generation fraction g must be in [0, 1/2], got {g!r}")
    if not 0.0 <= f <= g + 1e-12:
        raise ValueError(f"free fraction f must be in [0, g]; got f={f!r}, g={g!r}")


def live_fraction(f: float, g: float, load: float) -> float:
    """The paper's ``l(f, g)`` for inverse load factor ``load``.

    This is the expected fraction of all live storage that resides in
    the protected steps 1..j at the start of the next collection.  The
    exponent ``-L f / ln 2`` (base 2) simplifies to ``-L f`` base e.
    """
    _check_parameters(f, g, load)
    return 1.0 - math.exp(-load * f) * (1.0 - load * (g - f))


def expected_live(f: float, g: float, load: float, half_life: float) -> float:
    """Exact expectation ``live_h(f, g)``: live objects in steps 1..j.

    Computed from the finite geometric sum in Section 5,

        ``live_h(f, g) = r (1 - r**(N f)) / (1 - r) + N (g - f) r**(N f)``

    with ``r = 2**(-1/h)``, ``n = 1/(1-r)`` (exact Equation 1) and heap
    size ``N = n L``.  Theorem 3 states ``live_h(f, g)/n -> l(f, g)``
    as ``h -> ∞``; tests verify the convergence.
    """
    _check_parameters(f, g, load)
    if half_life <= 0:
        raise ValueError(f"half-life must be positive, got {half_life!r}")
    r = 2.0 ** (-1.0 / half_life)
    n = 1.0 / (1.0 - r)
    heap_size = n * load
    r_to_nf = r**(heap_size * f)
    geometric = r * (1.0 - r_to_nf) / (1.0 - r)
    return geometric + heap_size * (g - f) * r_to_nf


def stable_equilibrium_holds(g: float, load: float) -> bool:
    """Theorem 4's hypothesis: ``L (1 - 2 g) >= 1 - l(g, g)``.

    When this holds (with ``f = g``), the space reclaimed by each
    collection suffices to keep steps 1..j entirely free, so the
    collector sits at a stable equilibrium and Theorem 4's closed form
    is exact.
    """
    _check_parameters(g, g, load)
    return load * (1.0 - 2.0 * g) >= 1.0 - live_fraction(g, g, load)


def nongenerational_mark_cons(load: float) -> float:
    """Mark/cons ratio ``1 / (L - 1)`` of a non-generational mark/sweep GC.

    A non-generational collector marks ``n`` live words per collection
    and reclaims ``N - n`` words, so amortized it marks
    ``n / (N - n) = 1 / (L - 1)`` words per word allocated.
    """
    if load <= 1.0:
        raise ValueError(
            f"inverse load factor L must exceed 1, got {load!r}"
        )
    return 1.0 / (load - 1.0)


def fixed_point_f(
    g: float,
    load: float,
    *,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Solve Equation 4 for the equilibrium free fraction ``f``.

    Equation 4 is ``f = max(0, min(1 - g + (l(f, g) - 1)/L, g))``.  The
    update map is monotonically decreasing in ``f`` (more free space in
    the protected steps means fewer live objects end up there), so the
    clamped fixed point is unique.  At ``f = 0`` the unclamped update is
    ``1 - 1/L > 0``, so the root is found by bisection on [0, g]; when
    the update at ``f = g`` is still at least ``g`` — exactly Theorem
    4's hypothesis — the clamp pins ``f = g``.
    """
    _check_parameters(g, g, load)
    if g == 0.0:
        return 0.0

    def update(f: float) -> float:
        raw = 1.0 - g + (live_fraction(f, g, load) - 1.0) / load
        return max(0.0, min(raw, g))

    if update(g) >= g:
        return g

    lo, hi = 0.0, g
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        if update(mid) > mid:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance:
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class MarkConsEstimate:
    """A mark/cons estimate for the non-predictive collector.

    Attributes:
        value: the estimated mark/cons ratio.
        exact: true when Theorem 4's hypotheses hold and the value is
            the exact equilibrium expectation; false when the value is
            the Equation-4 lower bound (Figure 1's thick lines).
        free_fraction: the ``f`` at which the estimate was evaluated
            (``g`` in the stable regime, the fixed point otherwise).
    """

    value: float
    exact: bool
    free_fraction: float


def mark_cons_ratio(g: float, load: float) -> MarkConsEstimate:
    """Expected mark/cons ratio of the non-predictive collector.

    In the stable regime this is Theorem 4's

        ``(1 - l(g, g)) / (L (1 - g) - (1 - l(g, g)))``

    — the collector marks the live part of steps j+1..k and the
    allocation between collections equals the space those steps free.
    Outside the stable regime the same quotient is evaluated at the
    Equation-4 fixed point and is only a lower bound.

    A ``g`` of zero degenerates to a non-generational collector that
    sweeps the whole heap; the formula then reduces to ``1 / (L - 1)``.
    """
    _check_parameters(g, g, load)
    if stable_equilibrium_holds(g, load):
        f = g
        exact = True
    else:
        f = fixed_point_f(g, load)
        exact = False
    dead_fraction = 1.0 - live_fraction(f, g, load)
    denominator = load * (1.0 - g) - dead_fraction
    if denominator <= 0:
        raise ValueError(
            f"no allocation headroom at g={g!r}, L={load!r}: the old "
            f"generation cannot reclaim any space"
        )
    return MarkConsEstimate(
        value=dead_fraction / denominator, exact=exact, free_fraction=f
    )


def relative_overhead(g: float, load: float) -> MarkConsEstimate:
    """Corollary 5: non-predictive mark/cons relative to mark/sweep.

    Values below 1 mean the non-predictive generational collector does
    less marking work per word allocated than the non-generational
    baseline — the paper's headline result is that such values exist
    for every ``L > 1``.
    """
    estimate = mark_cons_ratio(g, load)
    baseline = nongenerational_mark_cons(load)
    return MarkConsEstimate(
        value=estimate.value / baseline,
        exact=estimate.exact,
        free_fraction=estimate.free_fraction,
    )


@dataclass(frozen=True)
class OverheadPoint:
    """One point of a Figure 1 curve."""

    g: float
    load: float
    relative_overhead: float
    exact: bool


def overhead_curve(
    load: float, gs: Sequence[float] | None = None, *, samples: int = 100
) -> list[OverheadPoint]:
    """A Figure 1 curve: relative overhead as a function of ``g``.

    Args:
        load: the inverse load factor ``L``.
        gs: explicit sample points; defaults to ``samples`` evenly
            spaced values spanning (0, 1/2].
        samples: number of points when ``gs`` is not given.
    """
    if gs is None:
        gs = [0.5 * (i + 1) / samples for i in range(samples)]
    points = []
    for g in gs:
        estimate = relative_overhead(g, load)
        points.append(
            OverheadPoint(
                g=g,
                load=load,
                relative_overhead=estimate.value,
                exact=estimate.exact,
            )
        )
    return points


def optimal_generation_fraction(
    load: float, *, tolerance: float = 1e-9
) -> OverheadPoint:
    """The ``g`` in [0, 1/2] minimizing relative overhead, by golden section.

    The overhead curve is smooth and unimodal on (0, 1/2] (it decreases
    while protecting more young storage saves marking, then rises as
    the old generation is squeezed), so golden-section search finds the
    global minimum.
    """
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    lo, hi = 1e-9, 0.5

    def objective(g: float) -> float:
        return relative_overhead(g, load).value

    x1 = hi - inv_phi * (hi - lo)
    x2 = lo + inv_phi * (hi - lo)
    f1, f2 = objective(x1), objective(x2)
    while hi - lo > tolerance:
        if f1 < f2:
            hi, x2, f2 = x2, x1, f1
            x1 = hi - inv_phi * (hi - lo)
            f1 = objective(x1)
        else:
            lo, x1, f1 = x1, x2, f2
            x2 = lo + inv_phi * (hi - lo)
            f2 = objective(x2)
    best_g = 0.5 * (lo + hi)
    estimate = relative_overhead(best_g, load)
    return OverheadPoint(
        g=best_g,
        load=load,
        relative_overhead=estimate.value,
        exact=estimate.exact,
    )
