"""Resilience: fault injection, chaos testing, and crash-safe IO.

Three concerns live here, all in service of the ROADMAP's
"production-scale" north star:

* :mod:`repro.resilience.atomic` — crash-safe artifact writes
  (write-temp, fsync, rename) shared by every module that persists
  JSON or text to disk;
* :mod:`repro.resilience.faults` — a seeded, deterministic fault
  taxonomy that perturbs live collector state (dropped remset entries,
  dangling slots, stale forwards, skipped roots, mis-renumbered
  steps);
* :mod:`repro.resilience.chaos` — the chaos harness that injects each
  fault mid-replay, then asks the verify layer (heap auditor +
  differential oracle) whether it noticed, producing the detection
  matrix behind ``repro-gc chaos``;
* :mod:`repro.resilience.journal` — the per-completion sweep journal
  behind ``repro-gc all --resume``;
* :mod:`repro.resilience.snapshot` — crash-consistent, checksummed
  checkpoint/restore of a live heap plus collector state, behind
  ``repro-gc snapshot`` and the resume-equivalence oracle.

The package mutation-tests the *auditor*: a corruption the auditor
cannot see is a hole in the verify layer, found here before a real
collector bug hides in it.
"""

from repro.resilience.atomic import atomic_write_json, atomic_write_text
from repro.resilience.chaos import (
    SNAPSHOT_FAULTS,
    ChaosOutcome,
    DetectionMatrix,
    run_chaos_matrix,
    run_snapshot_chaos,
)
from repro.resilience.faults import (
    CORRUPTION_FAULTS,
    FAULT_KINDS,
    FaultPlan,
    fault_expectation,
)
from repro.resilience.journal import SweepJournal
from repro.resilience.snapshot import (
    SnapshotError,
    capture_state,
    checkpoint,
    load_snapshot,
    restore,
    restore_into,
    restore_state,
    save_snapshot,
    verify_snapshot,
)

__all__ = [
    "CORRUPTION_FAULTS",
    "ChaosOutcome",
    "DetectionMatrix",
    "FAULT_KINDS",
    "FaultPlan",
    "SNAPSHOT_FAULTS",
    "SnapshotError",
    "SweepJournal",
    "atomic_write_json",
    "atomic_write_text",
    "capture_state",
    "checkpoint",
    "fault_expectation",
    "load_snapshot",
    "restore",
    "restore_into",
    "restore_state",
    "run_chaos_matrix",
    "run_snapshot_chaos",
    "save_snapshot",
    "verify_snapshot",
]
