"""The chaos harness: inject faults, score the safety net.

A chaos run answers one question about the verification subsystem
itself: *if a collector silently corrupted its state, would we notice?*
For every ``(fault kind, collector)`` pair it

1. replays a deterministic mutator script cleanly under the collector
   (checked mode on) to record reference checkpoints,
2. replays the same script again, injecting the fault at a seeded
   mutator-step boundary mid-script, and
3. watches three independent detection channels:

   * **audit** — :func:`repro.verify.audit.audit_collector` run
     immediately after injection (and again at script end), with the
     harness's own shadow root set as the ``expected_roots`` witness;
   * **crash** — any exception out of the collector, heap, or the
     per-collection checked-mode hook while the replay continues;
   * **divergence** — a post-injection checkpoint fingerprint that
     differs from the clean reference replay.

Corruption-class faults (:data:`repro.resilience.faults
.CORRUPTION_FAULTS`) must trip at least one channel; the benign
control (``dup-remset``) must trip none.  :func:`run_chaos_matrix`
aggregates the outcomes into a :class:`DetectionMatrix`, which the
``repro-gc chaos`` command renders and exports; the matrix is *not ok*
— and the command fails — if any injected corruption goes undetected
or the benign control fires a false positive.

Everything is seeded: the script, each injection site, and each
injector's choices derive from ``(seed, fault kind, collector kind)``,
so a failing cell replays exactly.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.events import EventStream

from repro.gc.registry import GcGeometry, collector_factory
from repro.heap.barrier import WriteBarrier
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjection,
    fault_applies,
    fault_expectation,
    inject_fault,
)
from repro.verify.audit import audit_collector, enable_checked_mode
from repro.verify.differential import DEFAULT_COLLECTORS, VERIFY_GEOMETRY
from repro.verify.replay import (
    MutatorScript,
    ReplayResult,
    generate_script,
    replay,
)

__all__ = [
    "ChaosError",
    "ChaosOutcome",
    "DetectionMatrix",
    "SNAPSHOT_FAULTS",
    "run_chaos_matrix",
    "run_snapshot_chaos",
]

#: Script length for a full chaos run / for ``--quick``.
DEFAULT_OP_COUNT = 400
QUICK_OP_COUNT = 160

#: The snapshot-corrupt fault family: ways a checkpoint file rots at
#: rest (or is torn in flight) that ``restore()`` must catch — every
#: cell's expectation is "corruption", and the only acceptable status
#: is ``detected`` via the ``restore`` channel (a
#: :class:`~repro.resilience.snapshot.SnapshotError` before any state
#: reaches a heap).
SNAPSHOT_FAULTS = (
    "bit-flip",
    "truncate",
    "stale-version",
    "checksum-mismatch",
)


class ChaosError(RuntimeError):
    """The harness itself misbehaved (clean replay crashed/diverged)."""


@dataclass(frozen=True)
class ChaosOutcome:
    """One cell of the detection matrix.

    Attributes:
        fault: the fault kind.
        collector: the collector kind name.
        expectation: ``"corruption"`` or ``"benign"``.
        status: ``"detected"`` (corruption caught), ``"missed"``
            (corruption escaped every channel), ``"benign"`` (control
            fault correctly ignored), ``"false-positive"`` (control
            fault tripped a channel), or ``"n/a"`` (fault inapplicable
            to this collector, or no injection target ever
            materialised).
        channel: which channel fired (``"audit"``, ``"crash"``,
            ``"divergence"``) or ``None``.
        op_index: mutator-step boundary where injection happened
            (``None`` when nothing was injected).
        detail: what was injected and/or what the channel reported.
    """

    fault: str
    collector: str
    expectation: str
    status: str
    channel: str | None
    op_index: int | None
    detail: str

    @property
    def injected(self) -> bool:
        return self.op_index is not None

    @property
    def ok(self) -> bool:
        return self.status in ("detected", "benign", "n/a")

    def to_json(self) -> dict:
        return {
            "fault": self.fault,
            "collector": self.collector,
            "expectation": self.expectation,
            "status": self.status,
            "channel": self.channel,
            "op_index": self.op_index,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class DetectionMatrix:
    """Fault kind x collector detection outcomes for one chaos run."""

    seed: int
    op_count: int
    collectors: tuple[str, ...]
    kinds: tuple[str, ...]
    outcomes: tuple[ChaosOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def outcome(self, fault: str, collector: str) -> ChaosOutcome:
        for outcome in self.outcomes:
            if outcome.fault == fault and outcome.collector == collector:
                return outcome
        raise KeyError(f"no outcome for ({fault!r}, {collector!r})")

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    def failures(self) -> tuple[ChaosOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "op_count": self.op_count,
            "collectors": list(self.collectors),
            "kinds": list(self.kinds),
            "ok": self.ok,
            "counts": self.counts(),
            "outcomes": [outcome.to_json() for outcome in self.outcomes],
        }

    def render(self) -> str:
        """An aligned fault-kind x collector table plus a summary line."""

        def cell(outcome: ChaosOutcome) -> str:
            if outcome.status == "detected":
                return f"det:{outcome.channel}"
            if outcome.status == "false-positive":
                return f"FALSE+:{outcome.channel}"
            if outcome.status == "missed":
                return "MISSED"
            return outcome.status

        header = ["fault \\ collector", *self.collectors]
        rows = [header]
        for fault in self.kinds:
            row = [fault]
            for collector in self.collectors:
                row.append(cell(self.outcome(fault, collector)))
            rows.append(row)
        widths = [
            max(len(row[col]) for row in rows)
            for col in range(len(header))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(
                    text.ljust(width) for text, width in zip(row, widths)
                ).rstrip()
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        tally = ", ".join(
            f"{status}={count}" for status, count in sorted(self.counts().items())
        )
        verdict = "OK" if self.ok else "FAIL"
        lines.append("")
        lines.append(
            f"{verdict}: seed={self.seed} ops={self.op_count} {tally}"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Snapshot corruption
# ----------------------------------------------------------------------


def _corrupt_snapshot(
    wire: str, fault: str, rng: random.Random
) -> tuple[str, str]:
    """Apply one snapshot fault to a serialized document.

    ``wire`` must be the compact (no-whitespace) serialization so that
    every byte is semantic — a bit flip then either breaks the JSON or
    changes the payload, never lands on cosmetic whitespace.  Returns
    the corrupted text and a human-readable description.
    """
    if fault == "bit-flip":
        # Flip one bit strictly inside the payload's serialized span,
        # so the corruption models the stored heap state rotting, not
        # the envelope.
        start = wire.index('"payload"')
        index = rng.randrange(start, len(wire) - 1)
        bit = rng.randrange(7)
        flipped = chr(ord(wire[index]) ^ (1 << bit))
        return (
            wire[:index] + flipped + wire[index + 1:],
            f"flipped bit {bit} of byte {index} "
            f"({wire[index]!r} -> {flipped!r})",
        )
    if fault == "truncate":
        cut = rng.randrange(1, len(wire))
        return (
            wire[:cut],
            f"truncated to {cut} of {len(wire)} bytes (torn write)",
        )
    if fault == "stale-version":
        import json as _json

        document = _json.loads(wire)
        document["version"] = 0
        return (
            _json.dumps(document, sort_keys=True, separators=(",", ":")),
            "rewrote version header to the retired version 0",
        )
    if fault == "checksum-mismatch":
        import json as _json

        document = _json.loads(wire)
        checksum = document["checksum"]
        first = "1" if checksum[0] == "0" else "0"
        document["checksum"] = first + checksum[1:]
        return (
            _json.dumps(document, sort_keys=True, separators=(",", ":")),
            f"rewrote checksum {checksum[:12]}... to "
            f"{document['checksum'][:12]}...",
        )
    raise ValueError(f"unknown snapshot fault {fault!r}")


def _probe_snapshot(text: str) -> tuple[str, str | None, str]:
    """Write a (corrupted) snapshot to disk and try the cold-restore
    path; returns ``(status, channel, detail)``."""
    import os
    import tempfile

    from repro.resilience.snapshot import (
        SnapshotError,
        load_snapshot,
        restore,
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snapshot.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        try:
            restore(load_snapshot(path))
        except SnapshotError as exc:
            # Scrub the throwaway temp path so cells are byte-identical
            # across runs of the same seed.
            detail = str(exc).replace(path, "snapshot.json")
            return "detected", "restore", detail
    return "missed", None, "corrupted snapshot restored without complaint"


def run_snapshot_chaos(
    *,
    seed: int = 0,
    op_count: int = DEFAULT_OP_COUNT,
    collectors: Sequence[str] = DEFAULT_COLLECTORS,
    kinds: Sequence[str] = SNAPSHOT_FAULTS,
    geometry: GcGeometry | None = None,
    quick: bool = False,
    events: "EventStream | None" = None,
) -> DetectionMatrix:
    """The snapshot-corrupt sweep: fault kind x collector.

    For every collector, replay the seeded script, take one
    checkpoint of the final live context, then hand each fault kind a
    fresh copy of the serialized document to corrupt (seeded, like
    every other chaos cell).  The corrupted file must fail the cold
    restore path (:func:`~repro.resilience.snapshot.load_snapshot`
    then :func:`~repro.resilience.snapshot.restore`) with a
    :class:`~repro.resilience.snapshot.SnapshotError` — 100% detection
    is the bar, so the only passing status is ``detected``.
    """
    import json as _json

    from repro.resilience.snapshot import checkpoint as take_snapshot

    if quick:
        op_count = min(op_count, QUICK_OP_COUNT)
    if geometry is None:
        geometry = replace(VERIFY_GEOMETRY, slice_budget=1)
    script = generate_script(op_count, seed)

    outcomes: list[ChaosOutcome] = []
    for collector_kind in collectors:
        captured: dict = {}
        factory = collector_factory(collector_kind, geometry)

        def build(heap, roots, _factory=factory, _captured=captured):
            built = _factory(heap, roots)
            _captured["collector"] = built
            return built

        try:
            replay(script, build, checked=True, name=collector_kind)
        except Exception as exc:
            raise ChaosError(
                f"clean replay failed under {collector_kind}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        document = take_snapshot(
            captured["collector"], collector_kind, geometry
        )
        wire = _json.dumps(document, sort_keys=True, separators=(",", ":"))

        for fault in kinds:
            rng = _cell_rng(seed, fault, collector_kind)
            corrupted, injected_detail = _corrupt_snapshot(wire, fault, rng)
            if events is not None:
                events.emit(
                    "fault-injected",
                    fault=fault,
                    collector=collector_kind,
                    expectation="corruption",
                    op_index=None,
                    detail=injected_detail,
                )
            status, channel, probe_detail = _probe_snapshot(corrupted)
            if events is not None and channel is not None:
                events.emit(
                    "fault-detected",
                    fault=fault,
                    collector=collector_kind,
                    expectation="corruption",
                    status=status,
                    channel=channel,
                    op_index=None,
                    detail=probe_detail,
                )
            outcomes.append(
                ChaosOutcome(
                    fault=fault,
                    collector=collector_kind,
                    expectation="corruption",
                    status=status,
                    channel=channel,
                    op_index=None,
                    detail=f"{injected_detail}; {probe_detail}",
                )
            )
    return DetectionMatrix(
        seed=seed,
        op_count=op_count,
        collectors=tuple(collectors),
        kinds=tuple(kinds),
        outcomes=tuple(outcomes),
    )


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def run_chaos_matrix(
    *,
    seed: int = 0,
    op_count: int = DEFAULT_OP_COUNT,
    collectors: Sequence[str] = DEFAULT_COLLECTORS,
    kinds: Sequence[str] = FAULT_KINDS,
    geometry: GcGeometry | None = None,
    quick: bool = False,
    events: "EventStream | None" = None,
    safepoint: bool = False,
) -> DetectionMatrix:
    """Run the full fault-kind x collector chaos sweep.

    Args:
        seed: seeds the script and every per-cell injection choice.
        op_count: mutator script length (``quick`` overrides it down).
        collectors: collector kind names to target.
        kinds: fault kinds to inject.
        geometry: heap geometry (defaults to the verify geometry).
        quick: cap the script at :data:`QUICK_OP_COUNT` ops — the CI
            smoke configuration.
        events: optional :class:`repro.metrics.EventStream`; every
            injection emits a ``fault-injected`` record and every
            fired detection channel a ``fault-detected`` record, so
            the safety net's verdicts land in the same NDJSON
            telemetry as the collectors' own spans.
        safepoint: delay every injection until the targeted collector
            is *mid-wavefront* — an incremental mark cycle open with
            gray entries outstanding, or a concurrent cycle whose
            marker still holds the snapshot — so faults land between
            slices (or mid-handoff), the windows the tri-color and
            concurrent-wavefront audits exist to defend.  Collectors
            with no such window never inject (``n/a``).
    """
    if quick:
        op_count = min(op_count, QUICK_OP_COUNT)
    if geometry is None:
        # A 1-word slice budget keeps the incremental collector's gray
        # wavefront alive across many op boundaries, so wavefront
        # faults (and safepoint mode as a whole) have a window to
        # inject into.  Budget-invariance guarantees this changes no
        # checkpoint fingerprint for any collector.
        geometry = replace(VERIFY_GEOMETRY, slice_budget=1)
    script = generate_script(op_count, seed)

    outcomes: list[ChaosOutcome] = []
    for collector_kind in collectors:
        factory = collector_factory(collector_kind, geometry)
        reference = _clean_reference(script, factory, collector_kind)
        for fault in kinds:
            outcomes.append(
                _run_cell(
                    script,
                    factory,
                    collector_kind,
                    fault,
                    seed,
                    reference,
                    events=events,
                    safepoint=safepoint,
                )
            )
    return DetectionMatrix(
        seed=seed,
        op_count=op_count,
        collectors=tuple(collectors),
        kinds=tuple(kinds),
        outcomes=tuple(outcomes),
    )


def _clean_reference(
    script: MutatorScript, factory, collector_kind: str
) -> ReplayResult:
    try:
        return replay(script, factory, checked=True, name=collector_kind)
    except Exception as exc:
        raise ChaosError(
            f"clean reference replay failed under {collector_kind}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _cell_rng(seed: int, fault: str, collector_kind: str) -> random.Random:
    blob = f"chaos:{seed}:{fault}:{collector_kind}".encode()
    return random.Random(
        int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    )


def _run_cell(
    script: MutatorScript,
    factory,
    collector_kind: str,
    fault: str,
    seed: int,
    reference: ReplayResult,
    events: "EventStream | None" = None,
    safepoint: bool = False,
) -> ChaosOutcome:
    expectation = fault_expectation(fault)

    def outcome(
        status: str,
        *,
        channel: str | None = None,
        op_index: int | None = None,
        detail: str = "",
    ) -> ChaosOutcome:
        if events is not None and channel is not None:
            events.emit(
                "fault-detected",
                fault=fault,
                collector=collector_kind,
                expectation=expectation,
                status=status,
                channel=channel,
                op_index=op_index,
                detail=detail,
            )
        return ChaosOutcome(
            fault=fault,
            collector=collector_kind,
            expectation=expectation,
            status=status,
            channel=channel,
            op_index=op_index,
            detail=detail,
        )

    # Applicability is a property of the collector family; probe a
    # fresh instance rather than special-casing kind names here.
    probe = factory(make_heap(), RootSet())
    if not fault_applies(fault, probe):
        return outcome(
            "n/a", detail=f"{fault} does not apply to {collector_kind}"
        )

    rng = _cell_rng(seed, fault, collector_kind)
    ops = script.ops
    inject_at = rng.randrange(len(ops) // 4, max(len(ops) // 4 + 1, (3 * len(ops)) // 4))

    heap = make_heap()
    roots = RootSet()
    collector = factory(heap, roots)
    enable_checked_mode(collector)
    barrier = WriteBarrier(collector.remember_store)

    uid_to_id: dict[int, int] = {}
    rooted_uids: set[int] = set()
    injection: FaultInjection | None = None
    injected_at: int | None = None
    check_cursor = 0

    def witness() -> set[int]:
        # What the *mutator* believes is rooted — independent of the
        # collector's root set, so a silently skipped root still shows.
        return {uid_to_id[uid] for uid in rooted_uids}

    def fingerprint() -> tuple[int, tuple]:
        reached = heap.reachable_from(list(roots.ids()))
        graph = tuple(
            sorted(
                (obj_id, heap.get(obj_id).size, tuple(heap.get(obj_id).fields))
                for obj_id in reached
            )
        )
        return heap.clock, graph

    def audit_now(where: str) -> ChaosOutcome | None:
        report = audit_collector(collector, expected_roots=witness())
        if report.ok:
            return None
        detected = expectation == "corruption"
        return outcome(
            "detected" if detected else "false-positive",
            channel="audit",
            op_index=injected_at,
            detail=f"{injection.detail}; {where}: {report.violations[0]}",
        )

    def compare_checkpoint(cursor: int) -> ChaosOutcome | None:
        clock, graph = fingerprint()
        expected = reference.checkpoints[cursor]
        if clock == expected.clock and graph == expected.graph:
            return None
        if injection is None:
            raise ChaosError(
                f"pre-injection checkpoint {cursor} diverged from the "
                f"clean replay under {collector_kind} — the harness "
                f"is nondeterministic"
            )
        detected = expectation == "corruption"
        return outcome(
            "detected" if detected else "false-positive",
            channel="divergence",
            op_index=injected_at,
            detail=(
                f"{injection.detail}; checkpoint {cursor} differs from "
                f"the clean replay"
            ),
        )

    def at_injection_window() -> bool:
        if not safepoint:
            return True
        # Mid-wavefront only: a mark cycle is open and there is
        # outstanding mark obligation — gray entries the next slices
        # still owe (incremental), or a marker holding the snapshot
        # whose result reconciliation has yet to trust (concurrent).
        return bool(
            getattr(collector, "cycle_open", False)
            and (
                getattr(collector, "gray_stack", None)
                or getattr(collector, "marker_inflight", False)
            )
        )

    for op_index, op in enumerate(ops):
        if injection is None and op_index >= inject_at and at_injection_window():
            injection = inject_fault(fault, collector, rng)
            if injection is not None:
                injected_at = op_index
                if events is not None:
                    events.emit(
                        "fault-injected",
                        fault=fault,
                        collector=collector_kind,
                        expectation=expectation,
                        op_index=op_index,
                        detail=injection.detail,
                    )
                verdict = audit_now("post-injection audit")
                if verdict is not None:
                    return verdict
        op_kind = op[0]
        try:
            if op_kind == "alloc":
                _, uid, size, field_count = op
                obj = collector.allocate(size, field_count)
                uid_to_id[uid] = obj.obj_id
                roots.set_global(f"u{uid}", obj)
                rooted_uids.add(uid)
            elif op_kind == "store":
                _, src_uid, slot, dst_uid = op
                src = heap.get(uid_to_id[src_uid])
                if dst_uid is None:
                    barrier.on_store(src, slot, None)
                    heap.write_field(src, slot, None)
                else:
                    target = heap.get(uid_to_id[dst_uid])
                    barrier.on_store(src, slot, target)
                    heap.write_field(src, slot, target)
            elif op_kind == "drop":
                roots.remove_global(f"u{op[1]}")
                rooted_uids.discard(op[1])
            elif op_kind == "collect":
                collector.collect()
            elif op_kind == "check":
                verdict = compare_checkpoint(check_cursor)
                check_cursor += 1
                if verdict is not None:
                    return verdict
            else:
                raise ChaosError(f"unknown op kind {op_kind!r}")
        except ChaosError:
            raise
        except Exception as exc:
            if injection is None:
                raise ChaosError(
                    f"clean prefix of the chaos replay crashed at op "
                    f"{op_index} under {collector_kind}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            detected = expectation == "corruption"
            return outcome(
                "detected" if detected else "false-positive",
                channel="crash",
                op_index=injected_at,
                detail=(
                    f"{injection.detail}; op {op_index} {op!r} raised "
                    f"{type(exc).__name__}: {exc}"
                ),
            )

    # The implicit final checkpoint, then a closing audit.
    try:
        verdict = compare_checkpoint(check_cursor)
    except ChaosError:
        raise
    except Exception as exc:
        if injection is None:
            raise ChaosError(
                f"final fingerprint crashed under {collector_kind}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        detected = expectation == "corruption"
        return outcome(
            "detected" if detected else "false-positive",
            channel="crash",
            op_index=injected_at,
            detail=(
                f"{injection.detail}; final fingerprint raised "
                f"{type(exc).__name__}: {exc}"
            ),
        )
    if verdict is not None:
        return verdict

    if injection is None:
        return outcome(
            "n/a",
            detail=(
                f"no injection target for {fault} materialised from op "
                f"{inject_at} onward"
            ),
        )

    verdict = audit_now("end-of-script audit")
    if verdict is not None:
        return verdict

    if expectation == "benign":
        return outcome(
            "benign",
            op_index=injected_at,
            detail=f"{injection.detail}; no channel fired, as expected",
        )
    return outcome(
        "missed",
        op_index=injected_at,
        detail=f"{injection.detail}; escaped every detection channel",
    )
