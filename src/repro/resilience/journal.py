"""The resumable sweep journal behind ``repro-gc all --resume``.

A sweep journal is a single JSON file (``.repro_cache/journal.json``)
recording, per experiment, either the finished artifact (rendered
text, JSON payload, wall seconds) or the quarantine report of a task
that exhausted its retries.  The resilient engine writes it through
the ``on_result`` hook — one atomic rewrite per completion — so a
sweep killed at any instant loses at most the tasks literally in
flight; ``--resume`` then serves the journalled completions without
re-running them and picks up the rest.

A journal is only valid for *the sweep it recorded*: its ``run_key``
hashes the ordered task names together with the source digest
(:func:`repro.perf.cache.source_digest`), so editing any source file
or changing the experiment selection invalidates it wholesale, exactly
like the artifact cache.  :meth:`SweepJournal.resume` silently starts
fresh on a mismatch.

Each recorded entry is stored alongside a SHA-256 checksum of its
canonical serialization (format 2).  A resume validates every entry
and *skips* — with a :class:`RuntimeWarning`, never a crash — any that
fails: a bit-rotted payload or a hand-edited record costs one re-run,
not the whole sweep.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.resilience.atomic import atomic_write_json

__all__ = ["JOURNAL_FILENAME", "SweepJournal"]

#: File name inside the cache directory (``.repro_cache/``).
JOURNAL_FILENAME = "journal.json"

#: v2 wrapped every completed/quarantined record as ``{"entry",
#: "checksum"}``; v1 journals fail the format check and resume fresh.
_FORMAT = 2


def _run_key(names: Sequence[str], digest: str) -> str:
    blob = json.dumps(
        {"names": list(names), "source": digest}, sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _entry_checksum(entry: Any) -> str:
    blob = json.dumps(entry, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def _validated_entry(name: str, item: Any, section: str) -> Any | None:
    """The wrapped record's entry if its checksum holds, else None
    (with a warning) — corrupt entries are skipped, not fatal."""
    try:
        if (
            isinstance(item, dict)
            and "entry" in item
            and _entry_checksum(item["entry"]) == item.get("checksum")
        ):
            return item["entry"]
    except (TypeError, ValueError):
        pass
    warnings.warn(
        f"sweep journal: skipping corrupt {section} entry for {name!r} "
        f"(checksum validation failed); it will be re-run",
        RuntimeWarning,
        stacklevel=3,
    )
    return None


class SweepJournal:
    """Per-completion persistent record of one sweep's progress.

    Args:
        path: the journal file (parent directories created lazily).
        run_key: identity of the sweep this journal is valid for; use
            :meth:`fresh`/:meth:`resume` rather than computing it by
            hand.
    """

    def __init__(self, path: Path | str, run_key: str) -> None:
        self.path = Path(path)
        self.run_key = run_key
        #: name -> {"text", "payload", "seconds"} for finished tasks.
        self.completed: dict[str, Mapping[str, Any]] = {}
        #: name -> {"kind", "attempts", "error"} for quarantined tasks.
        self.quarantined: dict[str, Mapping[str, Any]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def fresh(
        cls, path: Path | str, names: Sequence[str], digest: str
    ) -> "SweepJournal":
        """An empty journal for this sweep (overwrites on first record)."""
        return cls(path, _run_key(names, digest))

    @classmethod
    def resume(
        cls, path: Path | str, names: Sequence[str], digest: str
    ) -> "SweepJournal":
        """Load prior progress for this exact sweep, if any.

        A missing, corrupt, or mismatched (different task set or
        source digest) journal yields an empty one — resuming never
        fails, it just starts over.
        """
        journal = cls.fresh(path, names, digest)
        try:
            with journal.path.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return journal
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT
            or data.get("run_key") != journal.run_key
        ):
            return journal
        completed = data.get("completed")
        quarantined = data.get("quarantined")
        if isinstance(completed, dict):
            for name, item in completed.items():
                entry = _validated_entry(name, item, "completed")
                if isinstance(entry, dict) and "text" in entry:
                    journal.completed[name] = entry
        if isinstance(quarantined, dict):
            for name, item in quarantined.items():
                entry = _validated_entry(name, item, "quarantined")
                if isinstance(entry, dict):
                    journal.quarantined[name] = entry
        return journal

    # ------------------------------------------------------------------
    # Recording (each call rewrites the file atomically)
    # ------------------------------------------------------------------

    def record_success(
        self, name: str, entry: Mapping[str, Any]
    ) -> None:
        self.completed[name] = dict(entry)
        self.quarantined.pop(name, None)
        self._flush()

    def record_failure(self, name: str, info: Mapping[str, Any]) -> None:
        self.quarantined[name] = dict(info)
        self._flush()

    def discard(self) -> None:
        """Remove the journal file (a fully successful sweep needs none)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def _flush(self) -> None:
        def wrap(entries: Mapping[str, Mapping[str, Any]]) -> dict:
            return {
                name: {
                    "entry": entry,
                    "checksum": _entry_checksum(entry),
                }
                for name, entry in entries.items()
            }

        atomic_write_json(
            self.path,
            {
                "format": _FORMAT,
                "run_key": self.run_key,
                "completed": wrap(self.completed),
                "quarantined": wrap(self.quarantined),
            },
        )
