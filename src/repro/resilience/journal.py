"""The resumable sweep journal behind ``repro-gc all --resume``.

A sweep journal is a single JSON file (``.repro_cache/journal.json``)
recording, per experiment, either the finished artifact (rendered
text, JSON payload, wall seconds) or the quarantine report of a task
that exhausted its retries.  The resilient engine writes it through
the ``on_result`` hook — one atomic rewrite per completion — so a
sweep killed at any instant loses at most the tasks literally in
flight; ``--resume`` then serves the journalled completions without
re-running them and picks up the rest.

A journal is only valid for *the sweep it recorded*: its ``run_key``
hashes the ordered task names together with the source digest
(:func:`repro.perf.cache.source_digest`), so editing any source file
or changing the experiment selection invalidates it wholesale, exactly
like the artifact cache.  :meth:`SweepJournal.resume` silently starts
fresh on a mismatch.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.resilience.atomic import atomic_write_json

__all__ = ["JOURNAL_FILENAME", "SweepJournal"]

#: File name inside the cache directory (``.repro_cache/``).
JOURNAL_FILENAME = "journal.json"

_FORMAT = 1


def _run_key(names: Sequence[str], digest: str) -> str:
    blob = json.dumps(
        {"names": list(names), "source": digest}, sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class SweepJournal:
    """Per-completion persistent record of one sweep's progress.

    Args:
        path: the journal file (parent directories created lazily).
        run_key: identity of the sweep this journal is valid for; use
            :meth:`fresh`/:meth:`resume` rather than computing it by
            hand.
    """

    def __init__(self, path: Path | str, run_key: str) -> None:
        self.path = Path(path)
        self.run_key = run_key
        #: name -> {"text", "payload", "seconds"} for finished tasks.
        self.completed: dict[str, Mapping[str, Any]] = {}
        #: name -> {"kind", "attempts", "error"} for quarantined tasks.
        self.quarantined: dict[str, Mapping[str, Any]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def fresh(
        cls, path: Path | str, names: Sequence[str], digest: str
    ) -> "SweepJournal":
        """An empty journal for this sweep (overwrites on first record)."""
        return cls(path, _run_key(names, digest))

    @classmethod
    def resume(
        cls, path: Path | str, names: Sequence[str], digest: str
    ) -> "SweepJournal":
        """Load prior progress for this exact sweep, if any.

        A missing, corrupt, or mismatched (different task set or
        source digest) journal yields an empty one — resuming never
        fails, it just starts over.
        """
        journal = cls.fresh(path, names, digest)
        try:
            with journal.path.open(encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return journal
        if (
            not isinstance(data, dict)
            or data.get("format") != _FORMAT
            or data.get("run_key") != journal.run_key
        ):
            return journal
        completed = data.get("completed")
        quarantined = data.get("quarantined")
        if isinstance(completed, dict):
            journal.completed = {
                name: entry
                for name, entry in completed.items()
                if isinstance(entry, dict) and "text" in entry
            }
        if isinstance(quarantined, dict):
            journal.quarantined = dict(quarantined)
        return journal

    # ------------------------------------------------------------------
    # Recording (each call rewrites the file atomically)
    # ------------------------------------------------------------------

    def record_success(
        self, name: str, entry: Mapping[str, Any]
    ) -> None:
        self.completed[name] = dict(entry)
        self.quarantined.pop(name, None)
        self._flush()

    def record_failure(self, name: str, info: Mapping[str, Any]) -> None:
        self.quarantined[name] = dict(info)
        self._flush()

    def discard(self) -> None:
        """Remove the journal file (a fully successful sweep needs none)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def _flush(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format": _FORMAT,
                "run_key": self.run_key,
                "completed": self.completed,
                "quarantined": self.quarantined,
            },
        )
