"""The fault taxonomy: seeded perturbations of live collector state.

Each fault kind models one way a collector implementation (or the
runtime around it) can silently go wrong, chosen so that together they
exercise every family of check in :mod:`repro.verify.audit` plus the
differential oracle:

========================  =============================================
kind                      models / should be caught by
========================  =============================================
``dangling-slot``         a stale interior pointer left behind by a
                          buggy copy phase — heap-integrity
``drop-remset``           a missed write barrier: a live
                          cross-boundary pointer loses its remembered
                          slot — remset-completeness; against the
                          incremental collector, a gray wavefront
                          entry is forgotten mid-mark —
                          tri-color-wavefront; against the concurrent
                          collector, a marker-marked id vanishes from
                          the snapshot result mid-handoff —
                          concurrent-wavefront
``dup-remset``           a *conservative* spurious remembered slot —
                          **benign by design**: remsets may
                          over-approximate, so nothing must fire
``stale-forward``         a forwarding/move that updated the object
                          but not the space bookkeeping (the
                          ``obj.space`` back-pointer desyncs) —
                          heap-integrity
``root-skip``             a root enumeration that silently skips an
                          entry — invisible to every check that reuses
                          the collector's own root set; caught only by
                          the ``expected_roots`` witness audit (or,
                          later, by differential divergence)
``mis-renumber``          a step renumbering that moved the spaces but
                          not the index bookkeeping — step-structure
========================  =============================================

Injection is deterministic: every choice is drawn from the
:class:`random.Random` handed in by the chaos harness, which seeds it
from ``(seed, fault kind, collector kind)``.  An injector returns
``None`` when the collector's current state offers no target for the
fault (for example ``drop-remset`` before any cross-boundary pointer
exists); the harness then retries at the next mutator-step boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.gc.collector import Collector
from repro.gc.concurrent import ConcurrentCollector
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.incremental import IncrementalCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.remset import RememberedSet

__all__ = [
    "CORRUPTION_FAULTS",
    "FAULT_KINDS",
    "FaultInjection",
    "FaultPlan",
    "fault_applies",
    "fault_expectation",
    "inject_fault",
]

#: Every fault kind, in canonical matrix order.
FAULT_KINDS: tuple[str, ...] = (
    "dangling-slot",
    "drop-remset",
    "dup-remset",
    "stale-forward",
    "root-skip",
    "mis-renumber",
)

#: The corruption-class kinds: undetected injection = harness failure.
CORRUPTION_FAULTS: frozenset[str] = frozenset(
    {
        "dangling-slot",
        "drop-remset",
        "stale-forward",
        "root-skip",
        "mis-renumber",
    }
)


def fault_expectation(kind: str) -> str:
    """``"corruption"`` (must be detected) or ``"benign"`` (must not)."""
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")
    return "corruption" if kind in CORRUPTION_FAULTS else "benign"


def fault_applies(kind: str, collector: Collector) -> bool:
    """Whether ``kind`` can ever target this collector family."""
    if kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {kind!r}")
    if kind in ("drop-remset", "dup-remset"):
        if isinstance(collector, (GenerationalCollector, HybridCollector)):
            return True
        # The incremental collector's gray stack plays the remembered
        # set's role: losing an entry loses part of the mark obligation.
        if isinstance(collector, IncrementalCollector):
            return True
        return (
            isinstance(collector, NonPredictiveCollector)
            and collector.use_remset
        )
    if kind == "mis-renumber":
        return isinstance(
            collector, (NonPredictiveCollector, HybridCollector)
        )
    return True


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled perturbation of a chaos replay.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        op_index: first mutator-step boundary at which injection is
            attempted; if the collector state offers no target there,
            the harness retries at every later boundary.
        seed: seeds the injector's deterministic choices.
    """

    kind: str
    op_index: int
    seed: int

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.op_index < 0:
            raise ValueError(
                f"op index must be non-negative, got {self.op_index!r}"
            )

    @property
    def expectation(self) -> str:
        return fault_expectation(self.kind)


@dataclass(frozen=True)
class FaultInjection:
    """What an injector actually did (for the detection matrix)."""

    kind: str
    detail: str


def inject_fault(
    kind: str, collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Perturb live collector state; ``None`` if no target exists now."""
    injector = _INJECTORS[kind]
    return injector(collector, rng)


# ----------------------------------------------------------------------
# Injectors (one per kind)
# ----------------------------------------------------------------------


def _inject_dangling_slot(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Point a live reference slot at an id that was never allocated."""
    heap = collector.heap
    candidates = [obj for obj in heap.all_objects() if obj.fields]
    if not candidates:
        return None
    obj = _pick(rng, candidates, key=lambda o: o.obj_id)
    slot = rng.randrange(len(obj.fields))
    bogus = 1_000_000_000 + rng.randrange(1_000)
    obj.fields[slot] = bogus  # behind the heap's back: no probe, no barrier
    return FaultInjection(
        kind="dangling-slot",
        detail=(
            f"slot {slot} of object {obj.obj_id} now holds dangling "
            f"id {bogus}"
        ),
    )


def _inject_stale_forward(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Desync an object's space back-pointer from the space that holds it.

    Models a forwarding step that updated the object header but not the
    space bookkeeping (or vice versa): the object still sits in space
    A's table while claiming to live in space B.
    """
    heap = collector.heap
    spaces = list(heap.spaces())
    candidates = [obj for obj in heap.all_objects() if obj.space is not None]
    if not candidates:
        return None
    obj = _pick(rng, candidates, key=lambda o: o.obj_id)
    others = [space for space in spaces if space is not obj.space]
    # Single-space collectors still have a stale-forward analogue: a
    # move that cleared the back-pointer without leaving the table.
    wrong = _pick(rng, others, key=lambda s: s.name) if others else None
    right = obj.space
    obj.space = wrong  # the holding space's table is left untouched
    claim = wrong.name if wrong is not None else None
    return FaultInjection(
        kind="stale-forward",
        detail=(
            f"object {obj.obj_id} claims space {claim!r} while "
            f"still resident in {right.name!r}"
        ),
    )


def _inject_root_skip(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Silently drop one global root the mutator still believes in."""
    roots = collector.roots
    names = [
        name
        for name in roots.global_names()
        if roots.get_global_id(name) is not None
    ]
    if not names:
        return None
    name = _pick(rng, sorted(names))
    obj_id = roots.get_global_id(name)
    roots.remove_global(name)
    return FaultInjection(
        kind="root-skip",
        detail=(
            f"global root {name!r} (object {obj_id}) silently skipped"
        ),
    )


def _inject_mis_renumber(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Swap two steps without rebuilding the renumbering bookkeeping."""
    if not isinstance(
        collector, (NonPredictiveCollector, HybridCollector)
    ):
        return None
    steps = collector.steps
    if len(steps) < 2:
        return None
    a = rng.randrange(len(steps))
    b = rng.randrange(len(steps) - 1)
    if b >= a:
        b += 1
    steps[a], steps[b] = steps[b], steps[a]
    # _step_index_of (and the protected/collectable partition) now lies.
    return FaultInjection(
        kind="mis-renumber",
        detail=(
            f"steps {a + 1} and {b + 1} swapped without renumbering "
            f"the step index"
        ),
    )


def _inject_drop_remset(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Remove a remembered slot that still covers a live pointer.

    Only entries a partial collection actually *needs* (per the same
    predicates the auditor's completeness check uses) are candidates;
    removing an already-stale entry would be a legal prune, not a
    fault.
    """
    if isinstance(collector, ConcurrentCollector):
        # The concurrent analogue: corrupt the marker's result while it
        # holds the snapshot, so one snapshot-reachable id vanishes
        # from the set reconciliation will trust as already-black.
        # Victims are chosen so reconciliation *cannot* re-find them —
        # not a current root, not SATB-shaded, and every referrer
        # itself marker-marked (reconcile treats those as black and
        # never traverses them) — so the drop is a real corruption,
        # not a legal shrink of an over-approximation.
        if not collector.marker_inflight:
            return None
        result = collector._drain_pending()
        if "error" in result:
            return None
        pending = set(result["ids"])
        heap = collector.heap
        root_ids = set(collector.roots.ids())
        satb = set(collector.gray_stack)
        referrers: dict[int, list[int]] = {}
        for obj in heap.all_objects():
            for ref in obj.fields:
                if type(ref) is int:
                    referrers.setdefault(ref, []).append(obj.obj_id)
        reachable = heap.reachable_from(sorted(root_ids))
        candidates = [
            oid
            for oid in pending & reachable
            if oid not in root_ids
            and oid not in satb
            and all(src in pending for src in referrers.get(oid, ()))
        ]
        if not candidates:
            return None
        victim = _pick(rng, sorted(candidates))
        result["ids"].remove(victim)
        return FaultInjection(
            kind="drop-remset",
            detail=(
                f"marker-marked id {victim} dropped from the snapshot "
                f"result mid-handoff (referrers all marker-black)"
            ),
        )
    if isinstance(collector, IncrementalCollector):
        # The incremental analogue: forget one gray wavefront entry.
        # The object keeps its gray color (the corruption is a *lost
        # stack entry*, not a recolor), so its subtree silently falls
        # out of the remaining mark obligation — exactly what the
        # auditor's tri-color-wavefront check must notice.
        if not (collector.cycle_open and collector.gray_stack):
            return None
        victim = _pick(rng, sorted(set(collector.gray_stack)))
        collector.gray_stack.remove(victim)
        return FaultInjection(
            kind="drop-remset",
            detail=(
                f"gray-stack entry {victim} dropped mid-wavefront "
                f"(object stays colored gray)"
            ),
        )
    required = _required_entries(collector)
    if not required:
        return None
    remset, entry, why = _pick(rng, required, key=lambda r: (r[0].name, r[1]))
    remset._barrier_entries.discard(entry)
    remset._promotion_entries.discard(entry)
    return FaultInjection(
        kind="drop-remset",
        detail=(
            f"entry {entry} dropped from {remset.name} ({why})"
        ),
    )


def _inject_dup_remset(
    collector: Collector, rng: random.Random
) -> FaultInjection | None:
    """Add a redundant/conservative remembered slot (benign control).

    Re-records an existing entry when one exists, otherwise records a
    stale-store-style entry — an arbitrary slot of an object in the
    remset's legitimate source region, exactly what the write barrier
    leaves behind when an interesting store is later overwritten.
    Remembered sets are allowed to over-approximate (§8.4), so a
    correct collector must neither crash nor diverge.
    """
    if isinstance(collector, ConcurrentCollector):
        # Benign control: duplicate one id in the marker's result.
        # Reconciliation folds the result into a set, so a
        # conservative duplicate must cost nothing and trip nothing.
        if not collector.marker_inflight:
            return None
        result = collector._drain_pending()
        if "error" in result or not result["ids"]:
            return None
        entry = _pick(rng, sorted(set(result["ids"])))
        result["ids"].append(entry)
        return FaultInjection(
            kind="dup-remset",
            detail=(
                f"marker-marked id {entry} duplicated in the snapshot "
                f"result (conservative)"
            ),
        )
    if isinstance(collector, IncrementalCollector):
        # Benign control: re-push an entry already on the gray stack.
        # The scan skips pops whose color is no longer gray, so a
        # duplicate must cost nothing and trip nothing.
        if not (collector.cycle_open and collector.gray_stack):
            return None
        entry = _pick(rng, sorted(set(collector.gray_stack)))
        collector.gray_stack.append(entry)
        return FaultInjection(
            kind="dup-remset",
            detail=f"gray-stack entry {entry} re-pushed (duplicate)",
        )
    remsets = _collector_remsets(collector)
    if remsets is None:
        return None
    populated = [remset for remset in remsets if len(remset)]
    if populated:
        remset = _pick(rng, populated, key=lambda r: r.name)
        entry = _pick(rng, sorted(remset.entries()))
        remset.record_barrier(*entry)
        return FaultInjection(
            kind="dup-remset",
            detail=f"entry {entry} re-recorded in {remset.name}",
        )
    candidates = _conservative_slots(collector)
    if not candidates:
        return None
    remset, obj_id, slot = _pick(
        rng, candidates, key=lambda c: (c[0].name, c[1], c[2])
    )
    remset.record_barrier(obj_id, slot)
    return FaultInjection(
        kind="dup-remset",
        detail=(
            f"stale-store-style entry ({obj_id}, {slot}) recorded in "
            f"{remset.name}"
        ),
    )


_INJECTORS = {
    "dangling-slot": _inject_dangling_slot,
    "drop-remset": _inject_drop_remset,
    "dup-remset": _inject_dup_remset,
    "stale-forward": _inject_stale_forward,
    "root-skip": _inject_root_skip,
    "mis-renumber": _inject_mis_renumber,
}


# ----------------------------------------------------------------------
# Remset helpers
# ----------------------------------------------------------------------


def _collector_remsets(
    collector: Collector,
) -> tuple[RememberedSet, ...] | None:
    if isinstance(collector, GenerationalCollector):
        return tuple(collector.remsets[1:])  # gen 0 has no inbound set
    if isinstance(collector, NonPredictiveCollector):
        return (collector.remset,) if collector.use_remset else None
    if isinstance(collector, HybridCollector):
        return (collector.remset_young, collector.remset_steps)
    return None


def _conservative_slots(collector: Collector) -> list:
    """``(remset, obj_id, slot)`` triples a barrier could have left stale.

    Only slots of objects residing in a remset's legitimate *source*
    region qualify: a correct collector must tolerate such entries,
    because the barrier records them eagerly and the pointed-at store
    may be overwritten before the next partial collection prunes.
    """
    candidates: list = []
    if isinstance(collector, GenerationalCollector):
        for src_gen, space in enumerate(collector.spaces):
            if src_gen == 0:
                continue
            remset = collector.remsets[src_gen]
            for obj in space.objects():
                for slot in range(len(obj.fields)):
                    candidates.append((remset, obj.obj_id, slot))
    elif isinstance(collector, NonPredictiveCollector):
        if collector.use_remset:
            for space in collector.steps[: collector.j]:
                for obj in space.objects():
                    for slot in range(len(obj.fields)):
                        candidates.append(
                            (collector.remset, obj.obj_id, slot)
                        )
    elif isinstance(collector, HybridCollector):
        for index, space in enumerate(collector.steps):
            for obj in space.objects():
                for slot in range(len(obj.fields)):
                    candidates.append(
                        (collector.remset_young, obj.obj_id, slot)
                    )
                    if index + 1 <= collector.j:
                        candidates.append(
                            (collector.remset_steps, obj.obj_id, slot)
                        )
    return candidates


def _required_entries(collector: Collector) -> list:
    """Every ``(remset, entry, why)`` a partial collection depends on.

    Mirrors the predicates of the auditor's remset-completeness check:
    an entry is *required* when its slot currently holds a live pointer
    that the corresponding partial collection would otherwise miss.
    """
    heap = collector.heap
    required: list = []
    if isinstance(collector, GenerationalCollector):
        for src_gen, space in enumerate(collector.spaces):
            if src_gen == 0:
                continue
            remset = collector.remsets[src_gen]
            for obj in space.objects():
                for slot, ref in enumerate(obj.fields):
                    if type(ref) is not int or not heap.contains_id(ref):
                        continue
                    dst_gen = collector.generation_index(heap.get(ref))
                    if dst_gen is None or dst_gen >= src_gen:
                        continue
                    entry = (obj.obj_id, slot)
                    if entry in remset:
                        required.append(
                            (
                                remset,
                                entry,
                                f"gen-{src_gen} -> gen-{dst_gen}",
                            )
                        )
    elif isinstance(collector, NonPredictiveCollector):
        if not collector.use_remset:
            return []
        j = collector.j
        for space in collector.steps[:j]:
            for obj in space.objects():
                for slot, ref in enumerate(obj.fields):
                    if type(ref) is not int or not heap.contains_id(ref):
                        continue
                    dst = collector.step_number(heap.get(ref))
                    if dst is None or dst <= j:
                        continue
                    entry = (obj.obj_id, slot)
                    if entry in collector.remset:
                        required.append(
                            (
                                collector.remset,
                                entry,
                                f"protected -> step-{dst}",
                            )
                        )
    elif isinstance(collector, HybridCollector):
        j = collector.j
        for index, space in enumerate(collector.steps):
            src_step = index + 1
            for obj in space.objects():
                for slot, ref in enumerate(obj.fields):
                    if type(ref) is not int or not heap.contains_id(ref):
                        continue
                    target = heap.get(ref)
                    if collector.in_nursery(target):
                        entry = (obj.obj_id, slot)
                        if entry in collector.remset_young:
                            required.append(
                                (
                                    collector.remset_young,
                                    entry,
                                    f"step-{src_step} -> nursery",
                                )
                            )
                        continue
                    dst_step = collector.step_number(target)
                    if dst_step is None or not src_step <= j < dst_step:
                        continue
                    entry = (obj.obj_id, slot)
                    if entry in collector.remset_steps:
                        required.append(
                            (
                                collector.remset_steps,
                                entry,
                                f"step-{src_step} -> step-{dst_step}",
                            )
                        )
    return required


def _pick(rng: random.Random, items, key=None):
    """Deterministically choose one item, order-independent via ``key``."""
    pool = sorted(items, key=key) if key is not None else list(items)
    return pool[rng.randrange(len(pool))]
