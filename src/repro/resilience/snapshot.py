"""Crash-consistent checkpoint/restore of a live heap and collector.

A *snapshot* freezes everything a process would need to resume a
tenant heap after dying: the heap contents (either backend), the root
set, the collector's private state — grown capacities, remembered
sets, step order, an open SATB mark cycle, even a concurrent marker's
in-flight result — and the cumulative :class:`~repro.gc.stats.GcStats`
ledger.  The unit of correctness is *resume equivalence*: restoring a
snapshot taken at any allocation safepoint and replaying the rest of
the script must be byte-identical to never having stopped
(:mod:`repro.verify.resume` proves this for all seven collectors on
both backends).

On disk a snapshot is one JSON document:

``{"format": "repro-heap-snapshot", "version": 1,
   "checksum": sha256(canonical payload JSON), "payload": {...}}``

The payload carries the backend tag, the collector descriptor
(``kind`` + :class:`~repro.gc.registry.GcGeometry` fields, enough for
:func:`restore` to rebuild a fresh context), and the four state
sections.  The checksum is computed over the canonical serialization
(sorted keys, compact separators) of the payload alone, so the
envelope fields can be inspected or rewritten without invalidating
it — and any corruption of the payload is detected *before* a single
byte reaches a heap.  Writes go through the atomic
write-fsync-rename-fsync helpers, so a crash mid-save leaves the
previous snapshot intact.

Restore ordering matters and is fixed here: the collector's private
state is imported *first* (it only touches content-independent
structure — capacities, step order, remset entries, cycle flags — and
must run before heap import so renamed/reordered spaces are matched by
name), then the heap contents, then roots, then stats.

:func:`capture_state`/:func:`restore_state` are the raw in-memory
halves (no envelope, no checksum); the concurrent collector's watchdog
uses them for its cycle-open rollback target.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.resilience.atomic import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gc.collector import Collector
    from repro.gc.registry import GcGeometry

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "capture_state",
    "checkpoint",
    "load_snapshot",
    "restore",
    "restore_into",
    "restore_state",
    "save_snapshot",
    "verify_snapshot",
]

#: Envelope format tag; anything else is rejected unread.
SNAPSHOT_FORMAT = "repro-heap-snapshot"
#: Current snapshot version.  Bump on any payload layout change; old
#: versions are rejected with a :class:`SnapshotError` (no migration —
#: snapshots are recovery points, not archives).
SNAPSHOT_VERSION = 1


class SnapshotError(Exception):
    """A snapshot failed validation or could not be restored."""


def _payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical payload serialization.

    Canonical = sorted keys, compact separators: any JSON value that
    survives a parse round-trip (everything the exporters emit)
    re-serializes to the same bytes, so the checksum computed at
    :func:`checkpoint` time matches the one recomputed after a load.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# In-memory state capture (no envelope)
# ----------------------------------------------------------------------


def capture_state(collector: "Collector") -> dict:
    """The four raw state sections for ``collector``'s live context.

    Synchronizes with an in-flight concurrent marker (its result is
    materialized into the collector state), so the capture is a
    self-contained resume point.
    """
    return {
        "backend": collector.heap.backend_name,
        "collector_state": collector.export_state(),
        "heap": collector.heap.export_state(),
        "roots": collector.roots.export_state(),
        "stats": collector.stats.export_state(),
    }


def restore_state(collector: "Collector", state: dict) -> None:
    """Overwrite ``collector``'s live context with a captured state.

    The collector must be of the kind and geometry the state was
    captured from (its spaces are matched by name).  Collector state
    first, then heap contents, then roots, then stats — see the module
    docstring for why this order is load-bearing.
    """
    collector.import_state(state["collector_state"])
    collector.heap.import_state(state["heap"])
    collector.roots.import_state(state["roots"])
    collector.stats.import_state(state["stats"])


# ----------------------------------------------------------------------
# Checkpoint / restore (enveloped, checksummed)
# ----------------------------------------------------------------------


def checkpoint(
    collector: "Collector", kind: str, geometry: "GcGeometry"
) -> dict:
    """A complete, checksummed snapshot document for ``collector``.

    ``kind`` and ``geometry`` must describe how the collector was
    built (:func:`repro.gc.registry.make_collector`); :func:`restore`
    replays that construction before importing the state.
    """
    payload = capture_state(collector)
    payload["collector"] = {"kind": kind, "geometry": asdict(geometry)}
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "checksum": _payload_checksum(payload),
        "payload": payload,
    }
    if collector.metrics is not None:
        collector.metrics.event(
            "checkpoint",
            clock=collector.heap.clock,
            kind=kind,
            backend=payload["backend"],
        )
    return document


def verify_snapshot(document: object) -> dict:
    """Validate a snapshot document; returns its payload.

    Raises:
        SnapshotError: wrong structure, format tag, version, or a
            checksum mismatch.
    """
    if not isinstance(document, dict):
        raise SnapshotError(
            f"snapshot document must be a JSON object, got "
            f"{type(document).__name__}"
        )
    if document.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"not a heap snapshot (format {document.get('format')!r})"
        )
    if document.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {document.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    payload = document.get("payload")
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload missing or malformed")
    checksum = _payload_checksum(payload)
    if checksum != document.get("checksum"):
        raise SnapshotError(
            f"snapshot checksum mismatch: payload hashes to "
            f"{checksum[:12]}..., envelope claims "
            f"{str(document.get('checksum'))[:12]}..."
        )
    return payload


def restore(document: dict):
    """Rebuild a fresh ``(heap, roots, collector)`` context from a
    snapshot document.

    Validates the envelope, constructs the backend heap and the
    collector exactly as the registry originally did, and imports the
    four state sections.  Any structural inconsistency the importers
    detect (a payload that passed the checksum but lies about itself
    can only come from a buggy writer) surfaces as
    :class:`SnapshotError` too.
    """
    payload = verify_snapshot(document)
    from repro.gc.registry import GcGeometry, make_collector
    from repro.heap.backend import make_heap
    from repro.heap.roots import RootSet

    descriptor = payload.get("collector")
    if not isinstance(descriptor, dict):
        raise SnapshotError("snapshot carries no collector descriptor")
    try:
        geometry = GcGeometry(**descriptor["geometry"])
        heap = make_heap(payload["backend"])
        roots = RootSet()
        collector = make_collector(descriptor["kind"], heap, roots, geometry)
        restore_state(collector, payload)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"snapshot restore failed: {exc}") from exc
    if collector.metrics is not None:
        collector.metrics.event(
            "restore",
            clock=heap.clock,
            kind=descriptor["kind"],
            backend=payload["backend"],
        )
    return heap, roots, collector


def restore_into(collector: "Collector", document: dict) -> None:
    """Validate a snapshot document and restore it onto an existing
    collector of the same kind and geometry (in-place variant)."""
    payload = verify_snapshot(document)
    try:
        restore_state(collector, payload)
    except Exception as exc:
        raise SnapshotError(f"snapshot restore failed: {exc}") from exc
    if collector.metrics is not None:
        collector.metrics.event(
            "restore",
            clock=collector.heap.clock,
            kind=collector.name,
            backend=payload["backend"],
        )


# ----------------------------------------------------------------------
# Disk IO
# ----------------------------------------------------------------------


def save_snapshot(path: Path | str, document: dict) -> Path:
    """Write a snapshot document via the atomic helpers.

    The write-fsync-rename-fsync sequence guarantees a reader (or a
    restarted process) sees either the previous complete snapshot or
    this one, never a torn hybrid.
    """
    return atomic_write_json(path, document)


def load_snapshot(path: Path | str) -> dict:
    """Read and validate a snapshot file; returns the document.

    Raises:
        SnapshotError: unreadable file, invalid JSON, or any envelope/
            checksum failure — one exception type for "do not trust
            this file", whatever went wrong first.
    """
    try:
        with Path(path).open(encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    verify_snapshot(document)
    return document
