"""Crash-safe file writes: write-temp, fsync, rename.

Every artifact this repository persists — ``BENCH_perf.json``, the
``.repro_cache/`` entries, the sweep journal, exported experiment
text/JSON — goes through :func:`atomic_write_text` (or its JSON
wrapper), so a worker killed mid-write can never leave a truncated
file behind.  The recipe is the standard one:

1. write the full content to a temporary file *in the same directory*
   (``os.replace`` is only atomic within a filesystem);
2. flush and ``fsync`` the descriptor so the bytes are durable before
   the rename makes them visible;
3. ``os.replace`` the temp file over the destination — atomic on
   POSIX and Windows alike;
4. ``fsync`` the containing directory, so the rename itself — the new
   directory entry — survives a power loss, not just the file bytes.
   Without this step a crash shortly after the rename can roll the
   directory back to the old name on some filesystems, silently
   undoing a "durable" write.

Readers therefore observe either the old complete content or the new
complete content, never a prefix.  The temp file carries a per-process
suffix so concurrent writers (parallel sweep workers updating cache
entries) cannot collide on the scratch name; the last rename wins,
which is correct for content-addressed and append-only-log artifacts
alike.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(
    path: Path | str, text: str, *, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path``'s content with ``text``.

    Creates parent directories as needed.  Returns the destination
    path.  On any failure the temp file is removed and the original
    destination (if it existed) is left untouched.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    scratch = destination.with_name(
        f"{destination.name}.{os.getpid()}.tmp"
    )
    try:
        with scratch.open("w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, destination)
        _fsync_directory(destination.parent)
    except BaseException:
        try:
            scratch.unlink()
        except OSError:
            pass
        raise
    return destination


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's entries so a completed rename is durable.

    ``O_DIRECTORY`` is POSIX-only; on platforms without it (Windows)
    directory entries cannot be fsynced and the rename's atomicity is
    all we get, which matches the pre-existing behaviour there.
    """
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - non-POSIX
        return
    fd = os.open(directory, os.O_RDONLY | os.O_DIRECTORY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_json(
    path: Path | str,
    value: Any,
    *,
    indent: int | None = 2,
    sort_keys: bool = True,
) -> Path:
    """Atomically write ``value`` as JSON (trailing newline included)."""
    return atomic_write_text(
        path,
        json.dumps(value, indent=indent, sort_keys=sort_keys) + "\n",
    )
