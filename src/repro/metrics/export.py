"""Rendering the metric surface: summary table, JSON, Prometheus text.

Three consumers, three formats:

* :func:`render_summary` — the human-facing ``repro-gc metrics``
  table: per-collector pause percentiles (p50/p95/max, in words of
  work) and the mark/copy/sweep/root mark-cons decomposition;
* :func:`registries_to_jsonable` — the artifact form, deterministic
  and exact, suitable for committing next to experiment JSON;
* :func:`to_prometheus` — the Prometheus text exposition format
  (version 0.0.4), with cumulative ``le`` buckets, ``_sum`` and
  ``_count`` series, and a ``collector`` label per registry.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_bounds,
)

__all__ = [
    "registries_to_jsonable",
    "render_summary",
    "to_prometheus",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PROM_PREFIX = "repro_gc_"


def registries_to_jsonable(
    registries: Iterable[MetricRegistry],
) -> dict[str, Any]:
    """The JSON artifact form: label → registry dump, sorted."""
    dumped = {reg.label: reg.to_jsonable() for reg in registries}
    return {name: dumped[name] for name in sorted(dumped)}


# ----------------------------------------------------------------------
# Summary table
# ----------------------------------------------------------------------


def _ratio(numerator: int, denominator: int) -> str:
    return f"{numerator / denominator:.3f}" if denominator else "-"


def _counter_value(registry: MetricRegistry, name: str) -> int:
    metric = registry.get(name)
    return metric.value if isinstance(metric, (Counter, Gauge)) else 0


def render_summary(registries: Sequence[MetricRegistry]) -> str:
    """Pause percentiles and the mark/cons decomposition, per registry."""
    lines = [
        "pause cost per collection (words of work)",
        f"{'collector':<22} {'colls':>6} {'p50':>8} {'p95':>8} {'max':>8}",
    ]
    for registry in registries:
        pauses = registry.get("pause_words")
        if isinstance(pauses, Histogram) and pauses.count:
            lines.append(
                f"{registry.label:<22} {pauses.count:>6} "
                f"{pauses.quantile(0.5):>8} {pauses.quantile(0.95):>8} "
                f"{pauses.max:>8}"
            )
        else:
            lines.append(
                f"{registry.label:<22} {0:>6} {'-':>8} {'-':>8} {'-':>8}"
            )
    lines.append("")
    lines.append("mark/cons decomposition (per word allocated)")
    lines.append(
        f"{'collector':<22} {'mark':>7} {'copy':>7} {'sweep':>7} "
        f"{'root':>7} {'mark/cons':>10}"
    )
    for registry in registries:
        alloc = _counter_value(registry, "alloc_words")
        mark = _counter_value(registry, "mark_words")
        copy = _counter_value(registry, "copy_words")
        sweep = _counter_value(registry, "sweep_words")
        root = _counter_value(registry, "root_refs")
        lines.append(
            f"{registry.label:<22} {_ratio(mark, alloc):>7} "
            f"{_ratio(copy, alloc):>7} {_ratio(sweep, alloc):>7} "
            f"{_ratio(root, alloc):>7} {_ratio(mark + copy, alloc):>10}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _prom_name(name: str) -> tuple[str, str | None]:
    """Split ``family.sub`` metric names into (family, sub label)."""
    family, _, sub = name.partition(".")
    return _NAME_RE.sub("_", family), (sub or None)


def _labels(collector: str, sub: str | None, extra: str = "") -> str:
    parts = [f'collector="{collector}"']
    if sub is not None:
        parts.append(f'sub="{sub}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}"


def to_prometheus(registries: Sequence[MetricRegistry]) -> str:
    """Prometheus text format over every registry.

    Dotted metric names (``pause_words.minor``,
    ``space_peak_words.gen-0``) become a base family with a ``sub``
    label, so per-space and per-pause-kind series aggregate cleanly.
    """
    typed: dict[str, str] = {}
    samples: dict[str, list[str]] = {}

    def add(family: str, prom_type: str, line: str) -> None:
        typed.setdefault(family, prom_type)
        samples.setdefault(family, []).append(line)

    for registry in registries:
        collector = registry.label
        for metric in registry:
            family, sub = _prom_name(metric.name)
            if isinstance(metric, Counter):
                name = _PROM_PREFIX + family + "_total"
                add(name, "counter", f"{name}{_labels(collector, sub)} {metric.value}")
            elif isinstance(metric, Gauge):
                name = _PROM_PREFIX + family
                add(name, "gauge", f"{name}{_labels(collector, sub)} {metric.value}")
            elif isinstance(metric, Histogram):
                name = _PROM_PREFIX + family
                cumulative = 0
                for lower in sorted(metric.buckets):
                    cumulative += metric.buckets[lower]
                    _, upper = bucket_bounds(lower)
                    le = 'le="%d"' % (upper - 1)
                    add(
                        name,
                        "histogram",
                        f"{name}_bucket{_labels(collector, sub, le)}"
                        f" {cumulative}",
                    )
                inf = 'le="+Inf"'
                add(
                    name,
                    "histogram",
                    f"{name}_bucket{_labels(collector, sub, inf)}"
                    f" {metric.count}",
                )
                add(
                    name,
                    "histogram",
                    f"{name}_sum{_labels(collector, sub)} {metric.total}",
                )
                add(
                    name,
                    "histogram",
                    f"{name}_count{_labels(collector, sub)} {metric.count}",
                )

    lines: list[str] = []
    for family in sorted(samples):
        lines.append(f"# TYPE {family} {typed[family]}")
        lines.extend(samples[family])
    return "\n".join(lines) + "\n"
