"""Attaching the metrics plane to collectors: zero overhead when off.

A collector's ``metrics`` attribute is ``None`` by default; every
instrumentation site in the collectors is guarded by a single ``is not
None`` check on a cold path (per collection, never per allocation), so
a metrics-off run executes the same allocation-path bytecode as the
seed tree.  Instrumentation only *reads* collector state — it never
mutates the heap, the spaces, the stats, or any RNG — so a metrics-on
run produces byte-identical collector behaviour (asserted by the
metrics-off invariance tests).

Two ways to attach:

* :func:`instrument_collector` — wire one collector explicitly (used
  by the bench suite and the sweep engine's workers);
* :func:`metrics_session` — a context manager that arms a process-wide
  session; every collector constructed while it is active self-attaches
  in ``Collector.__init__``.  This is how existing experiments gain
  telemetry without changing their code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.metrics.events import EventStream
from repro.metrics.registry import MetricRegistry, merge_registries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.collector import Collector

__all__ = [
    "GcInstrumentation",
    "MetricsSession",
    "active_session",
    "instrument_collector",
    "metrics_session",
]


def _pause_category(kind: str) -> str:
    """Collapse per-generation pause kinds ("minor-3") to a family."""
    return "minor" if kind.startswith("minor") else kind


class GcInstrumentation:
    """One collector's metric recorder.

    ``observe_collection`` runs once per completed collection (from
    ``Collector._finish_collection``): it diffs the cumulative
    :class:`~repro.gc.stats.GcStats` snapshot against the previous
    collection's, records the per-collection work decomposition
    (mark/copy/sweep/root), pause-cost histograms, allocation-rate and
    remset-churn series, and per-space occupancy peaks, then emits the
    ``collection-end`` event.
    """

    def __init__(
        self,
        label: str,
        *,
        registry: MetricRegistry | None = None,
        stream: EventStream | None = None,
    ) -> None:
        self.label = label
        self.registry = registry if registry is not None else MetricRegistry(label)
        self.stream = stream
        self._last: dict[str, int] | None = None
        self._last_clock = 0

    # ------------------------------------------------------------------
    # Event plumbing (collectors call this behind a None guard)
    # ------------------------------------------------------------------

    def event(self, kind: str, /, **payload: Any) -> None:
        if self.stream is not None:
            self.stream.emit(kind, collector=self.label, **payload)

    # ------------------------------------------------------------------
    # Per-collection observation
    # ------------------------------------------------------------------

    def observe_collection(self, collector: "Collector") -> None:
        stats = collector.stats
        snap = stats.snapshot()
        last = self._last
        if last is None:
            delta = dict(snap)
        else:
            delta = {key: snap[key] - last[key] for key in snap}
        self._last = snap

        registry = self.registry
        pause = stats.pauses[-1] if stats.pauses else None

        # The mark/cons decomposition, cumulative (counters).
        registry.counter("alloc_words").inc(delta["words_allocated"])
        registry.counter("alloc_objects").inc(delta["objects_allocated"])
        registry.counter("mark_words").inc(delta["words_marked"])
        registry.counter("copy_words").inc(delta["words_copied"])
        registry.counter("sweep_words").inc(delta["words_swept"])
        registry.counter("root_refs").inc(delta["roots_traced"])
        registry.counter("reclaimed_words").inc(delta["words_reclaimed"])
        registry.counter("promoted_words").inc(delta["words_promoted"])
        registry.counter("remset_created").inc(
            delta["remset_entries_created"]
        )
        registry.counter("remset_pruned").inc(delta["remset_entries_pruned"])
        registry.counter("collections").inc(delta["collections"])
        registry.counter("minor_collections").inc(delta["minor_collections"])
        registry.counter("major_collections").inc(delta["major_collections"])

        # Pause cost in words traced, overall and per pause family.
        if pause is not None:
            registry.histogram("pause_words").record(pause.work)
            registry.histogram(
                f"pause_words.{_pause_category(pause.kind)}"
            ).record(pause.work)
            registry.histogram("reclaimed_per_collection").record(
                pause.reclaimed
            )
            registry.histogram("live_at_collection").record(pause.live)

        # Allocation rate: words of mutator progress per collection.
        clock = collector.heap.clock
        registry.histogram("alloc_between_collections").record(
            max(0, clock - self._last_clock)
        )
        self._last_clock = clock

        # Occupancy peaks, per space and whole-heap.
        spaces = collector.managed_spaces()
        space_list = (
            sorted(spaces, key=lambda s: s.name)
            if spaces is not None
            else list(collector.heap.spaces())
        )
        live_words = 0
        for space in space_list:
            used = space.used
            live_words += used
            registry.gauge(f"space_peak_words.{space.name}").set_max(used)
        registry.gauge("live_words_peak").set_max(live_words)

        if pause is not None:
            self.event(
                "collection-end",
                clock=pause.clock,
                kind=pause.kind,
                work=pause.work,
                reclaimed=pause.reclaimed,
                live=pause.live,
                mark_words=delta["words_marked"],
                copy_words=delta["words_copied"],
                sweep_words=delta["words_swept"],
                root_refs=delta["roots_traced"],
            )


class MetricsSession:
    """A process-wide registry of instrumented collectors.

    While a session is active (see :func:`metrics_session`), every
    collector constructed attaches a fresh :class:`GcInstrumentation`
    sharing the session's event stream.  Collectors are labelled by
    their ``name``, with ``#2``, ``#3``... suffixes when an experiment
    builds several of the same kind.
    """

    def __init__(self, *, events: bool = True) -> None:
        self.stream: EventStream | None = EventStream() if events else None
        self.instruments: dict[str, GcInstrumentation] = {}
        self._name_counts: dict[str, int] = {}

    def attach(self, collector: "Collector") -> GcInstrumentation:
        ordinal = self._name_counts.get(collector.name, 0) + 1
        self._name_counts[collector.name] = ordinal
        label = (
            collector.name if ordinal == 1 else f"{collector.name}#{ordinal}"
        )
        instrument = GcInstrumentation(label, stream=self.stream)
        self.instruments[label] = instrument
        if self.stream is not None and collector.heap.event_sink is None:
            collector.heap.event_sink = self.stream
        return instrument

    def registries(self) -> list[MetricRegistry]:
        """Per-collector registries, in attach order."""
        return [inst.registry for inst in self.instruments.values()]

    def merged(self, label: str = "all") -> MetricRegistry:
        return merge_registries(self.registries(), label)


#: The active session, if any; consulted by ``Collector.__init__``.
_ACTIVE: MetricsSession | None = None


def active_session() -> MetricsSession | None:
    return _ACTIVE


@contextmanager
def metrics_session(*, events: bool = True) -> Iterator[MetricsSession]:
    """Arm the metrics plane for every collector built in the block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a metrics session is already active")
    session = MetricsSession(events=events)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None


def instrument_collector(
    collector: "Collector",
    *,
    stream: EventStream | None = None,
    label: str | None = None,
) -> GcInstrumentation:
    """Wire one collector explicitly (no session involved)."""
    instrument = GcInstrumentation(
        label if label is not None else collector.name, stream=stream
    )
    collector.metrics = instrument
    if stream is not None and collector.heap.event_sink is None:
        collector.heap.event_sink = stream
    return instrument
