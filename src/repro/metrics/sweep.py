"""Metric collection drivers: single cells, parallel sweeps, overhead.

A *cell* is one instrumented decay-workload run of one collector on
one derived seed — the unit of work the parallel engine fans out.
Workers serialise their registries to JSON; the parent deserialises
and folds them in registry order (cell-index order, not completion
order), so a sweep's merged metrics are byte-identical at any ``--jobs``
level — the same determinism contract the experiment engine makes.

:func:`measure_overhead` is the acceptance check for the plane's cost:
it times the same seeded bench workload with instrumentation attached
and detached and reports the wall-clock ratio.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.gc.registry import COLLECTOR_KINDS
from repro.metrics.events import EventStream
from repro.metrics.instrument import instrument_collector
from repro.metrics.registry import MetricRegistry, merge_registries

__all__ = [
    "SWEEP_COLLECTORS",
    "measure_overhead",
    "run_decay_cell",
    "run_metrics_sweep",
]

SWEEP_COLLECTORS: tuple[str, ...] = COLLECTOR_KINDS

#: Decay half-life of the sweep workload (the experiments' canonical
#: regime, same as the bench suite).
SWEEP_HALF_LIFE = 2_000.0
SWEEP_ALLOC_WORDS = 120_000
QUICK_ALLOC_WORDS = 20_000


def _build_cell(kind: str, seed: int):
    from repro.gc.registry import collector_factory
    from repro.heap.backend import make_heap
    from repro.heap.roots import RootSet
    from repro.mutator.base import LifetimeDrivenMutator
    from repro.mutator.decay_mutator import DecaySchedule

    heap = make_heap()
    roots = RootSet()
    collector = collector_factory(kind, None)(heap, roots)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(SWEEP_HALF_LIFE, seed=seed)
    )
    return collector, mutator


def run_decay_cell(
    kind: str,
    seed: int,
    *,
    alloc_words: int,
    events: bool = False,
) -> tuple[MetricRegistry, EventStream | None]:
    """One instrumented decay-workload run; the sweep's unit of work."""
    collector, mutator = _build_cell(kind, seed)
    stream = EventStream() if events else None
    instrument = instrument_collector(collector, stream=stream)
    mutator.run(alloc_words)
    mutator.release_all()
    return instrument.registry, stream


def run_metrics_sweep(
    kinds: Sequence[str] = SWEEP_COLLECTORS,
    *,
    runs: int = 1,
    jobs: int = 1,
    seed: int = 0,
    quick: bool = False,
) -> dict[str, Any]:
    """Fan instrumented cells over the parallel engine and merge.

    Returns ``{"collectors": {kind: registry}, "merged": registry}``
    with every registry merged in cell-index order — the jobs-level-
    independent registry order, so ``--jobs 4`` and ``--jobs 1``
    produce byte-identical metrics.
    """
    from repro.perf.parallel import derive_seed, run_metric_records

    alloc_words = QUICK_ALLOC_WORDS if quick else SWEEP_ALLOC_WORDS
    cells = [
        (kind, derive_seed(seed, index), alloc_words)
        for index, kind in enumerate(
            kind for kind in kinds for _ in range(runs)
        )
    ]
    records = run_metric_records(cells, jobs=jobs)
    per_kind: dict[str, list[MetricRegistry]] = {}
    for (kind, _, _), payload in zip(cells, records):
        per_kind.setdefault(kind, []).append(
            MetricRegistry.from_jsonable(payload)
        )
    collectors = {
        kind: merge_registries(regs, label=kind)
        for kind, regs in per_kind.items()
    }
    return {
        "collectors": collectors,
        "merged": merge_registries(collectors.values(), label="all"),
    }


def measure_overhead(
    *,
    alloc_words: int = QUICK_ALLOC_WORDS,
    kind: str = "non-predictive",
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, float]:
    """Wall-clock cost of the metrics plane on the bench workload.

    Runs the same seeded workload with instrumentation attached and
    detached, ``repeats`` times each, and compares best-of-N (the
    stable statistic under scheduler noise).  The acceptance bar is a
    ratio ≤ 1.05.
    """
    def timed(instrumented: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            collector, mutator = _build_cell(kind, seed)
            if instrumented:
                instrument_collector(collector, stream=EventStream())
            start = time.perf_counter()
            mutator.run(alloc_words)
            best = min(best, time.perf_counter() - start)
        return best

    off = timed(False)
    on = timed(True)
    return {
        "metrics_off_seconds": off,
        "metrics_on_seconds": on,
        "overhead_ratio": (on / off) if off > 0 else 1.0,
    }
