"""The observability plane: metrics, telemetry events, exporters.

Zero-overhead-when-disabled instrumentation shared by all five
collectors and the heap.  See :mod:`repro.metrics.registry` for the
metric types and their exact merge laws,
:mod:`repro.metrics.instrument` for how collectors attach, and
:mod:`repro.metrics.export` for the output formats behind the
``repro-gc metrics`` CLI command.
"""

from repro.metrics.events import (
    EVENT_SCHEMA_VERSION,
    EventStream,
    parse_ndjson,
)
from repro.metrics.instrument import (
    GcInstrumentation,
    MetricsSession,
    active_session,
    instrument_collector,
    metrics_session,
)
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    bucket_bounds,
    bucket_lower,
    merge_registries,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventStream",
    "parse_ndjson",
    "GcInstrumentation",
    "MetricsSession",
    "active_session",
    "instrument_collector",
    "metrics_session",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "bucket_bounds",
    "bucket_lower",
    "merge_registries",
]
