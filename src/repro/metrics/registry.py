"""Counters, gauges, and log-bucketed histograms with exact merges.

The registry is the metric surface shared by every collector and by
the parallel sweep engine.  Its design constraint is *deterministic
mergeability*: per-worker registries produced on different processes
must merge into byte-identical sweep-level metrics regardless of the
order workers finish in.  That forces every metric type to carry a
merge operation that is associative and commutative:

* **Counter** — a monotonic sum; merge adds values.
* **Gauge** — a high-water mark (peak occupancy, peak live words);
  merge takes the max.  A plain last-write gauge cannot merge
  commutatively, so the registry does not offer one.
* **Histogram** — HDR-style log-bucketed counts with *fixed* bucket
  boundaries shared by every instance (powers of two subdivided into
  four linear sub-buckets).  Because the boundaries are a pure
  function of the value — never adapted to the data — merging two
  histograms is an elementwise add of bucket counts, which is exact,
  associative, and commutative.  Quantile estimates are therefore
  within one bucket width (≤ 1/4 of the value's octave base) of the
  exact sample, and merged quantiles equal the quantiles of the
  pooled samples to the same precision.

All values are non-negative integers (words of simulated work); there
is no floating point anywhere in the accounting, so merged output is
reproducible bit-for-bit across platforms.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "bucket_bounds",
    "bucket_lower",
    "merge_registries",
]

#: Linear sub-buckets per power-of-two octave (HDR "sub-bucket" count).
SUBBUCKETS_PER_OCTAVE = 4


def bucket_lower(value: int) -> int:
    """The lower boundary of the fixed bucket containing ``value``.

    Buckets are: ``[0, 1)`` for zero; width-1 buckets for values below
    ``SUBBUCKETS_PER_OCTAVE``; and for each octave ``[2**k, 2**(k+1))``
    at or above it, four linear sub-buckets of width ``2**k // 4``.
    The boundary is a pure function of the value, so every histogram
    ever created uses the same bucket edges.
    """
    if value < 0:
        raise ValueError(f"histogram values must be >= 0, got {value}")
    if value < SUBBUCKETS_PER_OCTAVE:
        return value
    base = 1 << (value.bit_length() - 1)
    width = base // SUBBUCKETS_PER_OCTAVE
    return base + ((value - base) // width) * width


def bucket_bounds(value: int) -> tuple[int, int]:
    """The ``[lower, upper)`` bounds of the bucket containing ``value``."""
    lower = bucket_lower(value)
    if lower < SUBBUCKETS_PER_OCTAVE:
        return lower, lower + 1
    base = 1 << (lower.bit_length() - 1)
    return lower, lower + base // SUBBUCKETS_PER_OCTAVE


class Counter:
    """A monotonic integer sum.  Merge law: addition."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_jsonable(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_jsonable(cls, name: str, data: Mapping[str, Any]) -> "Counter":
        counter = cls(name)
        counter.value = int(data["value"])
        return counter


class Gauge:
    """A high-water mark.  Merge law: max (commutative by design)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set_max(self, value: int) -> None:
        """Record a level; the gauge keeps the peak."""
        if value > self.value:
            self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value > self.value:
            self.value = other.value

    def to_jsonable(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_jsonable(cls, name: str, data: Mapping[str, Any]) -> "Gauge":
        gauge = cls(name)
        gauge.value = int(data["value"])
        return gauge


class Histogram:
    """Log-bucketed counts over fixed boundaries; merge is exact.

    Buckets are stored sparsely, keyed by their lower boundary (see
    :func:`bucket_lower`).  ``count``/``total``/``min``/``max`` are
    exact; quantiles are bucket-resolution estimates clamped to the
    observed max, so ``quantile(1.0)`` is the exact maximum and every
    other quantile is within one bucket width of the exact sample.
    """

    kind = "histogram"
    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min = 0
        self.max = 0

    def record(self, value: int, count: int = 1) -> None:
        if count <= 0:
            return
        lower = bucket_lower(value)
        self.buckets[lower] = self.buckets.get(lower, 0) + count
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += count
        self.total += value * count

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.count += other.count
        self.total += other.total
        for lower, count in other.buckets.items():
            self.buckets[lower] = self.buckets.get(lower, 0) + count

    def quantile(self, q: float) -> int:
        """The ``q``-quantile, within one bucket width of exact.

        Returns the inclusive upper edge of the bucket holding the
        rank-``ceil(q * count)`` sample, clamped to the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0
        rank = min(self.count, max(1, math.ceil(self.count * q)))
        seen = 0
        for lower in sorted(self.buckets):
            seen += self.buckets[lower]
            if seen >= rank:
                _, upper = bucket_bounds(lower)
                return min(self.max, upper - 1)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [lower, self.buckets[lower]] for lower in sorted(self.buckets)
            ],
        }

    @classmethod
    def from_jsonable(cls, name: str, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(name)
        hist.count = int(data["count"])
        hist.total = int(data["total"])
        hist.min = int(data["min"])
        hist.max = int(data["max"])
        hist.buckets = {
            int(lower): int(count) for lower, count in data["buckets"]
        }
        return hist


_METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricRegistry:
    """An ordered name → metric map with a deterministic merge.

    Metrics are created on first use (``counter``/``gauge``/
    ``histogram``) and keep insertion order for display; the JSON form
    sorts names so serialisation order never depends on creation
    order.  ``merge`` requires name-type agreement and folds each
    metric with its own (associative, commutative) merge law, so any
    merge tree over the same multiset of registries yields the same
    bytes from :meth:`canonical_json`.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def _get_or_create(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return list(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other`` into this registry, metric by metric."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = _copy_metric(metric)
            elif type(mine) is not type(metric):
                raise TypeError(
                    f"cannot merge metric {name!r}: "
                    f"{mine.kind} vs {metric.kind}"
                )
            else:
                mine.merge(metric)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "metrics": {
                name: self._metrics[name].to_jsonable()
                for name in sorted(self._metrics)
            },
        }

    def canonical_json(self) -> str:
        """Deterministic bytes: the merge-property test currency."""
        return json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "MetricRegistry":
        registry = cls(str(data.get("label", "")))
        for name, payload in data["metrics"].items():
            metric_cls = _METRIC_TYPES[payload["kind"]]
            registry._metrics[name] = metric_cls.from_jsonable(name, payload)
        return registry


def _copy_metric(metric: Any) -> Any:
    return type(metric).from_jsonable(metric.name, metric.to_jsonable())


def merge_registries(
    registries: Iterable[MetricRegistry], label: str = "merged"
) -> MetricRegistry:
    """Fold registries left-to-right (registry order) into one.

    Because every per-metric merge law is associative and commutative,
    the fold order only matters for *this function's determinism
    contract with itself* — any order would produce the same bytes.
    """
    merged = MetricRegistry(label)
    for registry in registries:
        merged.merge(registry)
    return merged
