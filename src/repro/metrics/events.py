"""The structured GC event stream: seekable NDJSON telemetry.

Every record is one JSON object on one line — newline-delimited JSON
(NDJSON) — so consumers can seek, tail, and stream-parse without
loading the file.  The schema is versioned: every record carries
``"v": EVENT_SCHEMA_VERSION`` plus a monotonically increasing ``seq``
and the event kind under ``"event"``.  Event kinds emitted by the
instrumentation plane:

* ``collection-start`` / ``collection-end`` — spans around every
  collection, with the work decomposition on the end record;
* ``slice`` — one bounded mark increment of the incremental
  collector, with its budget, actual work, and gray backlog;
* ``handoff`` / ``reconcile`` — the concurrent collector's snapshot
  handoff to its off-thread marker and the SATB reconciliation that
  closes the cycle (root count, snapshot words, marker vs reconcile
  mark work);
* ``promotion`` — survivors moved to an older generation or step;
* ``renumbering`` — a non-predictive step renumbering (§4);
* ``heap-expansion`` — a space's capacity grew;
* ``space-created`` / ``space-removed`` — heap geometry changes;
* ``fault-injected`` / ``fault-detected`` — the chaos harness's
  injection and detection records (see :mod:`repro.resilience.chaos`);
* ``checkpoint`` / ``restore`` — crash-consistent snapshot capture and
  resume points (see :mod:`repro.resilience.snapshot`);
* ``watchdog-abort`` — the concurrent collector's supervisor killed a
  wedged mark cycle, rolled back to the cycle-open snapshot, and
  degraded to inline marking.

Files are written via the shared atomic helpers, so a telemetry file
is always a complete, parseable stream — never a torn write.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventStream",
    "parse_ndjson",
]

#: Bump when a breaking change lands in the record layout; additive
#: payload fields do not require a bump.  v2 added the ``slice``
#: record kind (incremental mark increments) and the kind
#: ``"incremental"`` on ``collection-start`` for safepoint-opened
#: cycles, both of which v1 consumers would misgroup.  v3 added the
#: ``handoff``/``reconcile`` span kinds and the ``"concurrent"``
#: ``collection-start`` kind for the concurrent collector's
#: off-thread mark cycles.  v4 added the ``checkpoint``/``restore``
#: span kinds for crash-consistent snapshots and the
#: ``watchdog-abort`` kind for supervised rollback of a wedged
#: concurrent mark cycle.
EVENT_SCHEMA_VERSION = 4


class EventStream:
    """An in-memory, append-only buffer of telemetry records.

    Recording is cold-path only (collections, faults, geometry
    changes), so buffering in memory and writing once at the end keeps
    the mutator's hot allocation path untouched.
    """

    __slots__ = ("_events", "_seq")

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._seq = 0

    def emit(self, event: str, /, **payload: Any) -> dict[str, Any]:
        """Append one record; returns it (mostly for tests)."""
        record: dict[str, Any] = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self._seq,
            "event": event,
        }
        record.update(payload)
        self._events.append(record)
        self._seq += 1
        return record

    def events(self, event: str | None = None) -> list[dict[str, Any]]:
        """All records, or just those of one kind, oldest first."""
        if event is None:
            return list(self._events)
        return [e for e in self._events if e["event"] == event]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._events)

    def to_ndjson(self) -> str:
        """One sorted-key JSON object per line (deterministic bytes)."""
        return "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self._events
        )

    def write(self, path: Path | str) -> None:
        """Atomically persist the stream (write-fsync-rename)."""
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(Path(path), self.to_ndjson())


def parse_ndjson(text: str) -> list[dict[str, Any]]:
    """Parse NDJSON back into records, skipping blank lines."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
