"""Trace records: the birth and death of every object in a run.

The paper's Section 7 measurements (live-storage profiles, survival
rates by age) are functions of each object's *lifetime*: the interval
of allocation-clock time during which it is reachable.  An
:class:`ObjectRecord` captures one object's interval; a
:class:`LifetimeTrace` is the collection of records for a whole run
plus the clock bounds of the measured window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["LifetimeTrace", "ObjectRecord"]


@dataclass
class ObjectRecord:
    """One object's lifetime.

    Attributes:
        obj_id: the heap id of the object.
        size: size in words.
        birth: allocation clock at allocation.
        death: allocation clock at which the object was first observed
            unreachable, or ``None`` if it survived to the end of the
            measured run.  Death times are quantized to the sampling
            epoch, exactly as the paper's byte-granularity tables are.
        kind: the runtime kind tag ("pair", "flonum", ...).
    """

    obj_id: int
    size: int
    birth: int
    death: int | None = None
    kind: str = "data"

    def alive_at(self, clock: int) -> bool:
        """Whether the object was live at the given clock time."""
        if clock < self.birth:
            return False
        return self.death is None or clock < self.death

    def lifetime(self) -> int | None:
        """Words allocated between birth and death (None if immortal)."""
        if self.death is None:
            return None
        return self.death - self.birth


@dataclass
class LifetimeTrace:
    """All object lifetimes observed during one measured run."""

    records: list[ObjectRecord] = field(default_factory=list)
    #: Clock value when recording started.
    start_clock: int = 0
    #: Clock value when recording stopped.
    end_clock: int = 0

    @property
    def words_allocated(self) -> int:
        return sum(record.size for record in self.records)

    @property
    def object_count(self) -> int:
        return len(self.records)

    def live_words_at(self, clock: int) -> int:
        """Total words live at a clock time (O(records))."""
        return sum(
            record.size for record in self.records if record.alive_at(clock)
        )

    def peak_live_words(self, sample_every: int) -> int:
        """Peak live storage sampled at the given granularity."""
        if self.end_clock <= self.start_clock:
            return 0
        peak = 0
        clock = self.start_clock
        while clock <= self.end_clock:
            peak = max(peak, self.live_words_at(clock))
            clock += sample_every
        return peak

    def immortal_words(self) -> int:
        """Words belonging to objects that never died during the run."""
        return sum(
            record.size for record in self.records if record.death is None
        )

    def iter_dead(self) -> Iterator[ObjectRecord]:
        for record in self.records:
            if record.death is not None:
                yield record
