"""Recording object lifetimes while a program runs.

A :class:`LifetimeRecorder` attaches to a
:class:`~repro.runtime.machine.Machine` built over a
:class:`~repro.trace.collector.TracingCollector` and produces a
:class:`~repro.trace.events.LifetimeTrace`:

* every dynamic allocation creates an :class:`ObjectRecord`;
* every ``epoch_words`` of allocation, the recorder traces the heap
  from the roots; objects that became unreachable since the previous
  epoch are recorded as dead at the current clock and reclaimed.

Death times are therefore quantized to the epoch size — precisely the
granularity of the paper's tables ("shown as the percentage that
survives the next 100,000 bytes of allocation") and figures ("each
color represents the survivors from a 100,000-byte epoch").
"""

from __future__ import annotations

from repro.heap.object_model import HeapObject
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector
from repro.trace.events import LifetimeTrace, ObjectRecord

__all__ = ["LifetimeRecorder", "record_run"]


class LifetimeRecorder:
    """Observes one machine and accumulates a lifetime trace.

    Args:
        machine: the machine to observe (its collector should be a
            :class:`TracingCollector`; a policy collector would reclaim
            objects without telling the recorder).
        epoch_words: sampling granularity in words.
    """

    def __init__(self, machine: Machine, epoch_words: int) -> None:
        if epoch_words <= 0:
            raise ValueError(
                f"epoch size must be positive, got {epoch_words!r}"
            )
        if not isinstance(machine.collector, TracingCollector):
            raise TypeError(
                "LifetimeRecorder requires a machine built over a "
                "TracingCollector; other collectors reclaim objects "
                "behind the recorder's back"
            )
        self.machine = machine
        self.epoch_words = epoch_words
        self.trace = LifetimeTrace(start_clock=machine.clock)
        self._records: dict[int, ObjectRecord] = {}
        self._next_epoch = machine.clock + epoch_words
        self._finished = False
        machine.add_allocation_hook(self._on_allocate)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _on_allocate(self, obj: HeapObject) -> None:
        if self._finished:
            return
        record = ObjectRecord(
            obj_id=obj.obj_id, size=obj.size, birth=obj.birth, kind=obj.kind
        )
        self._records[obj.obj_id] = record
        self.trace.records.append(record)
        if self.machine.clock >= self._next_epoch:
            self.sample()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self) -> None:
        """Trace the heap; record and reclaim newly unreachable objects."""
        machine = self.machine
        clock = machine.clock
        reached = machine.heap.reachable_from(machine.roots.ids())
        for obj_id, record in list(self._records.items()):
            if record.death is not None:
                continue
            if obj_id not in reached:
                record.death = clock
                del self._records[obj_id]
                if machine.heap.contains_id(obj_id):
                    machine.heap.free(machine.heap.get(obj_id))
        # Records of still-live objects stay in _records; dead ones are
        # dropped so the dict tracks exactly the live population.
        while self._next_epoch <= clock:
            self._next_epoch += self.epoch_words

    def finish(self) -> LifetimeTrace:
        """Take a final sample and seal the trace."""
        if not self._finished:
            self.sample()
            self.trace.end_clock = self.machine.clock
            self._finished = True
        return self.trace

    @property
    def live_object_count(self) -> int:
        return len(self._records)


def record_run(program, epoch_words: int) -> LifetimeTrace:
    """Run a program under a tracing machine and return its trace.

    Args:
        program: a callable taking a :class:`Machine`; its allocation
            behaviour is what gets measured.
        epoch_words: sampling granularity.
    """
    machine = Machine(TracingCollector)
    recorder = LifetimeRecorder(machine, epoch_words)
    program(machine)
    return recorder.finish()
