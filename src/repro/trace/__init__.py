"""Lifetime measurement: traces, survival tables, storage profiles."""

from repro.trace.collector import TracingCollector
from repro.trace.events import LifetimeTrace, ObjectRecord
from repro.trace.io import TraceFormatError, load_trace, save_trace
from repro.trace.profile import StorageProfile, storage_profile
from repro.trace.recorder import LifetimeRecorder, record_run
from repro.trace.render import TextTable, render_series
from repro.trace.survival import SurvivalRow, SurvivalTable, survival_table

__all__ = [
    "LifetimeRecorder",
    "LifetimeTrace",
    "ObjectRecord",
    "StorageProfile",
    "SurvivalRow",
    "SurvivalTable",
    "TextTable",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "TracingCollector",
    "record_run",
    "render_series",
    "storage_profile",
    "survival_table",
]
