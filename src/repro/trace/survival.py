"""Survival rates by age (the machinery behind Tables 4-7).

The paper reports, for age brackets of a fixed width, "the percentage
that survives the next N bytes of allocation".  Formally: sampling the
heap at regular clock times ``t``, every live object of age in
``[lo, hi)`` contributes its size to the bracket's *alive* total, and
contributes to the bracket's *surviving* total iff it is still live at
``t + horizon``.  The rate is surviving/alive.

Samples with ``t + horizon`` beyond the end of the measured run are
excluded (their survival outcome is unknown — right-censoring).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import LifetimeTrace

__all__ = ["SurvivalRow", "SurvivalTable", "survival_table"]

_INFINITY = float("inf")


@dataclass(frozen=True)
class SurvivalRow:
    """One age bracket of a survival table.

    Attributes:
        lo_age: inclusive lower age bound in words.
        hi_age: exclusive upper age bound, or None for the open-ended
            "More than ..." bracket.
        alive_words: word-samples observed in the bracket.
        surviving_words: word-samples that survived the horizon.
    """

    lo_age: int
    hi_age: int | None
    alive_words: int
    surviving_words: int

    @property
    def rate(self) -> float | None:
        """Survival fraction, or None if the bracket was never populated."""
        if self.alive_words == 0:
            return None
        return self.surviving_words / self.alive_words

    def label(self) -> str:
        if self.hi_age is None:
            return f"More than {self.lo_age:,} words old"
        return f"{self.lo_age:,} to {self.hi_age:,} words old"


@dataclass(frozen=True)
class SurvivalTable:
    """A full survival-by-age table (one of the paper's Tables 4-7)."""

    rows: tuple[SurvivalRow, ...]
    age_step: int
    horizon: int

    def rates(self) -> list[float | None]:
        return [row.rate for row in self.rows]

    def to_text(self) -> str:
        lines = []
        for row in self.rows:
            rate = row.rate
            shown = "  - " if rate is None else f"{round(100 * rate):3d}%"
            lines.append(f"{row.label():<38} {shown}")
        return "\n".join(lines)


def survival_table(
    trace: LifetimeTrace,
    age_step: int,
    *,
    horizon: int | None = None,
    bracket_count: int = 9,
    min_age: int | None = None,
    sample_every: int | None = None,
) -> SurvivalTable:
    """Compute a survival-by-age table from a lifetime trace.

    Args:
        trace: the recorded lifetimes.
        age_step: bracket width in words (the paper's 100,000 or
            500,000 bytes, expressed in words).
        horizon: survival horizon; defaults to ``age_step`` ("survives
            the next ``age_step`` of allocation"), as in the paper.
        bracket_count: number of closed brackets before the open-ended
            "More than ..." bracket.
        min_age: lowest age included; defaults to ``age_step`` (the
            paper's tables omit the youngest bracket).
        sample_every: sampling period; defaults to ``age_step``.
    """
    if age_step <= 0:
        raise ValueError(f"age step must be positive, got {age_step!r}")
    if bracket_count < 1:
        raise ValueError(
            f"need at least one bracket, got {bracket_count!r}"
        )
    horizon = age_step if horizon is None else horizon
    min_age = age_step if min_age is None else min_age
    period = age_step if sample_every is None else sample_every
    if horizon <= 0 or period <= 0 or min_age < 0:
        raise ValueError("horizon and period must be positive, min_age >= 0")

    skip = min_age // age_step  # brackets below min_age are dropped
    total_brackets = skip + bracket_count + 1  # + open-ended
    alive = [0] * total_brackets
    surviving = [0] * total_brackets

    start = trace.start_clock
    last_sample = trace.end_clock - horizon
    if last_sample < start:
        raise ValueError(
            "trace too short for the requested horizon: "
            f"{trace.end_clock - trace.start_clock} words recorded, "
            f"horizon {horizon}"
        )

    for record in trace.records:
        death = _INFINITY if record.death is None else record.death
        # First sample at or after birth + min_age, aligned to period.
        earliest = record.birth + min_age
        offset = earliest - start
        first = start + -(-offset // period) * period  # ceil to grid
        t = max(first, start)
        while t <= last_sample and t < death:
            bracket = (t - record.birth) // age_step
            index = min(bracket, total_brackets - 1)
            alive[index] += record.size
            if death > t + horizon:
                surviving[index] += record.size
            t += period

    rows = []
    for index in range(skip, total_brackets):
        lo = index * age_step
        hi = None if index == total_brackets - 1 else (index + 1) * age_step
        rows.append(
            SurvivalRow(
                lo_age=lo,
                hi_age=hi,
                alive_words=alive[index],
                surviving_words=surviving[index],
            )
        )
    return SurvivalTable(rows=tuple(rows), age_step=age_step, horizon=horizon)
