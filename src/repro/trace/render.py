"""Plain-text rendering shared by the experiments and the CLI.

The reproduction regenerates the paper's tables and figures as text:
:class:`TextTable` renders aligned columns (the tables) and
:func:`render_series` renders an x/y series as a rough ASCII plot
(Figure 1's curves).  Experiments return structured data; rendering is
kept separate so benchmarks and tests can assert on numbers, not
strings.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["TextTable", "render_series"]


class TextTable:
    """A fixed-column text table with right-aligned numeric cells."""

    def __init__(self, headers: Sequence[str]) -> None:
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        if isinstance(cell, int) and not isinstance(cell, bool):
            return f"{cell:,}"
        return str(cell)

    def to_text(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            "  ".join(
                header.ljust(widths[index])
                for index, header in enumerate(self.headers)
            ),
            "  ".join("-" * width for width in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.rjust(widths[index])
                    for index, cell in enumerate(row)
                )
            )
        return "\n".join(lines)


def render_series(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a rough ASCII scatter plot."""
    if not points:
        return "(empty series)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y_hi - y) / y_span * (height - 1)))
        grid[row][col] = "*"
    lines = [f"{y_label} (top {y_hi:.3g}, bottom {y_lo:.3g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    return "\n".join(lines)
