"""A non-collecting "collector" used for lifetime measurement runs.

Lifetime measurement must observe deaths without a real collection
policy interfering, so measurement runs use this collector: a single
unbounded space, no automatic collections.  The
:class:`~repro.trace.recorder.LifetimeRecorder` reclaims unreachable
objects itself at epoch boundaries (so memory stays bounded) and logs
their death times.
"""

from __future__ import annotations

from repro.gc.collector import Collector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["TracingCollector"]


class TracingCollector(Collector):
    """Unbounded allocation, no policy: the measurement substrate."""

    name = "tracing"

    def __init__(self, heap: SimulatedHeap, roots: RootSet) -> None:
        super().__init__(heap, roots)
        self.space = heap.add_space("trace-heap", None)

    def _reserve(self, size: int) -> Space:
        return self.space

    def managed_spaces(self) -> None:
        """Unknown by design: the LifetimeRecorder frees objects behind
        this collector's back at epoch boundaries, so the auditor's
        stats-conservation check cannot apply."""
        return None

    def collect(self) -> None:
        """Reclaim unreachable objects without any work accounting.

        Provided so that mutator-requested full collections (some
        benchmarks call them between phases) behave sensibly during a
        measurement run; the recorder's own epoch sweeps are the usual
        reclamation path.
        """
        reached = self.heap.reachable_from(self.roots.ids())
        for obj in list(self.space.objects()):
            if obj.obj_id not in reached:
                self.heap.free(obj)
