"""Live-storage-versus-time profiles (the machinery behind Figures 2-4).

The paper's figures plot live storage against allocation time, with
the live storage at each instant broken down by *birth epoch*: "each
color represents the survivors from a 100,000-byte epoch of storage
allocation.  White represents storage that is more than 1,000,000
bytes old."  A :class:`StorageProfile` is the numeric form of such a
figure: a matrix of live words indexed by (sample time, birth epoch),
with births older than ``old_threshold`` merged into the "old" band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import LifetimeTrace

__all__ = ["StorageProfile", "storage_profile"]


@dataclass(frozen=True)
class StorageProfile:
    """Numeric form of a live-storage figure.

    Attributes:
        sample_clocks: clock value of each sample (columns of the
            figure's x axis).
        epoch_words: birth-epoch width in words.
        old_threshold: ages beyond this are merged into the "old" band
            (the figures' white region).
        bands: ``bands[i]`` is the breakdown at ``sample_clocks[i]``:
            a list whose entry ``e`` is the live words born in epoch
            ``e`` (epoch 0 starts at the trace start); the final entry
            ``old_band[i]`` is separate.
        old_band: live words older than the threshold at each sample.
    """

    sample_clocks: tuple[int, ...]
    epoch_words: int
    old_threshold: int
    bands: tuple[tuple[int, ...], ...]
    old_band: tuple[int, ...]

    def totals(self) -> list[int]:
        """Total live words at each sample (the figure's upper contour)."""
        return [
            sum(band) + old
            for band, old in zip(self.bands, self.old_band)
        ]

    @property
    def peak_live_words(self) -> int:
        totals = self.totals()
        return max(totals) if totals else 0

    def to_text(self, *, width: int = 60) -> str:
        """Render as an ASCII area chart (one row per sample).

        Recent-epoch storage renders as ``#``, old storage as ``.`` —
        the inverse-video analogue of the paper's colored bands over a
        white "old" region.
        """
        totals = self.totals()
        peak = max(totals) if totals else 0
        if peak == 0:
            return "(no live storage)"
        lines = []
        for clock, band, old in zip(
            self.sample_clocks, self.bands, self.old_band
        ):
            young = sum(band)
            young_cols = round(width * young / peak)
            old_cols = round(width * old / peak)
            bar = "#" * young_cols + "." * old_cols
            lines.append(f"{clock:>12,} |{bar}")
        lines.append(
            f"{'':>12} (peak {peak:,} words; # young bands, . old band)"
        )
        return "\n".join(lines)


def storage_profile(
    trace: LifetimeTrace,
    epoch_words: int,
    *,
    old_threshold: int | None = None,
    sample_every: int | None = None,
) -> StorageProfile:
    """Compute a live-storage profile from a lifetime trace.

    Args:
        trace: the recorded lifetimes.
        epoch_words: birth-epoch width (the figures' 100,000 or
            500,000 bytes, in words).
        old_threshold: age beyond which storage joins the "old" band;
            defaults to ten epochs, matching the paper's figures
            (1,000,000-byte threshold over 100,000-byte epochs).
        sample_every: sampling period; defaults to ``epoch_words``.
    """
    if epoch_words <= 0:
        raise ValueError(f"epoch size must be positive, got {epoch_words!r}")
    old_threshold = (
        10 * epoch_words if old_threshold is None else old_threshold
    )
    period = epoch_words if sample_every is None else sample_every
    if period <= 0 or old_threshold <= 0:
        raise ValueError("period and old threshold must be positive")

    start = trace.start_clock
    span = trace.end_clock - start
    sample_clocks = [
        start + index * period for index in range(span // period + 1)
    ]
    epoch_count = span // epoch_words + 1
    bands = [[0] * epoch_count for _ in sample_clocks]
    old_band = [0] * len(sample_clocks)

    for record in trace.records:
        death = record.death
        epoch = (record.birth - start) // epoch_words
        first_sample = -(-(record.birth - start) // period)  # ceil
        for index in range(first_sample, len(sample_clocks)):
            clock = sample_clocks[index]
            if death is not None and clock >= death:
                break
            if clock - record.birth > old_threshold:
                old_band[index] += record.size
            else:
                bands[index][epoch] += record.size

    return StorageProfile(
        sample_clocks=tuple(sample_clocks),
        epoch_words=epoch_words,
        old_threshold=old_threshold,
        bands=tuple(tuple(band) for band in bands),
        old_band=tuple(old_band),
    )
