"""Persistence for lifetime traces.

Recording a lifetime trace is the expensive half of the Section 7
measurements (it runs the program under frequent whole-heap sampling);
analyzing one is cheap.  Saving traces lets the survival tables and
storage profiles be recomputed offline — different bracket widths,
different thresholds — without rerunning the program.

Format: JSON lines.  The first line is a header with the clock bounds
and a format version; each following line is one object record
``[obj_id, size, birth, death, kind]`` with ``null`` for survivors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.trace.events import LifetimeTrace, ObjectRecord

__all__ = ["TraceFormatError", "load_trace", "save_trace"]

_FORMAT = "repro-lifetime-trace"
_VERSION = 1


class TraceFormatError(ValueError):
    """The file is not a valid lifetime-trace dump."""


def save_trace(trace: LifetimeTrace, path: str | Path) -> None:
    """Write a trace as JSON lines (atomically: no torn trace files)."""
    import io

    from repro.resilience.atomic import atomic_write_text

    buffer = io.StringIO()
    _write(trace, buffer)
    atomic_write_text(Path(path), buffer.getvalue())


def _write(trace: LifetimeTrace, handle: IO[str]) -> None:
    header = {
        "format": _FORMAT,
        "version": _VERSION,
        "start_clock": trace.start_clock,
        "end_clock": trace.end_clock,
        "records": len(trace.records),
    }
    handle.write(json.dumps(header) + "\n")
    for record in trace.records:
        handle.write(
            json.dumps(
                [
                    record.obj_id,
                    record.size,
                    record.birth,
                    record.death,
                    record.kind,
                ]
            )
            + "\n"
        )


def load_trace(path: str | Path) -> LifetimeTrace:
    """Read a trace written by :func:`save_trace`."""
    with open(path, encoding="utf-8") as handle:
        return _read(handle)


def _read(handle: IO[str]) -> LifetimeTrace:
    header_line = handle.readline()
    if not header_line:
        raise TraceFormatError("empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"bad header: {error}") from error
    if (
        not isinstance(header, dict)
        or header.get("format") != _FORMAT
    ):
        raise TraceFormatError("not a lifetime-trace file")
    if header.get("version") != _VERSION:
        raise TraceFormatError(
            f"unsupported trace version {header.get('version')!r}"
        )
    records = []
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            obj_id, size, birth, death, kind = json.loads(line)
        except (json.JSONDecodeError, ValueError) as error:
            raise TraceFormatError(
                f"bad record on line {line_number}: {error}"
            ) from error
        records.append(
            ObjectRecord(
                obj_id=obj_id, size=size, birth=birth, death=death, kind=kind
            )
        )
    declared = header.get("records")
    if declared is not None and declared != len(records):
        raise TraceFormatError(
            f"header declares {declared} records, found {len(records)}"
        )
    return LifetimeTrace(
        records=records,
        start_clock=header["start_clock"],
        end_clock=header["end_clock"],
    )
