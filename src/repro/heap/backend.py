"""Heap backend selection: one contract, two representations.

A *heap backend* is anything that implements the heap contract the
five collectors are written against:

* the public object surface of
  :class:`repro.heap.heap.SimulatedHeap` — spaces, ``allocate`` /
  ``free`` / ``move`` / ``get``, field access, ``reachable_from``,
  ``check_integrity``, ``occupancy`` — and
* the shared collection kernels — ``allocate_id``, ``trace_region``,
  ``cheney_evacuate``, ``free_unmarked``, ``partition_space``,
  ``extract_live``, ``extract_all``, ``place_id``, ``move_ids``,
  ``count_slot_refs_into`` and the id-level accessors (``size_of``,
  ``ref_slots``, ``space_if_live``, ``slot_ref``, ...).

Two backends exist:

``object``
    :class:`~repro.heap.heap.SimulatedHeap` — one Python object per
    heap object.  Simple, and the historical reference semantics.
``flat``
    :class:`~repro.heap.flat.FlatHeap` — struct-of-arrays arenas
    indexed by id.  Several times faster on allocation; proven
    byte-identical to ``object`` by the differential backend
    equivalence suite (``repro.verify`` with a backend axis).

Every run picks its backend once, here: the ``--heap-backend`` CLI
flag wins, then the ``REPRO_HEAP_BACKEND`` environment variable, then
the default (``flat``).  Tests that poke at backend internals
construct :class:`SimulatedHeap`/:class:`FlatHeap` directly.
"""

from __future__ import annotations

import os

from repro.heap.flat import FlatHeap
from repro.heap.heap import SimulatedHeap

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "HEAP_BACKENDS",
    "default_backend_name",
    "make_heap",
    "resolve_backend_name",
]

#: Recognised backend names, in documentation order.
HEAP_BACKENDS: tuple[str, ...] = ("object", "flat")

#: The backend used when neither the CLI nor the environment says
#: otherwise.  ``flat`` — the equivalence suite holds, so the fast
#: representation is the default.
DEFAULT_BACKEND = "flat"

#: Environment variable consulted by :func:`default_backend_name`.
ENV_BACKEND = "REPRO_HEAP_BACKEND"

_BACKENDS = {"object": SimulatedHeap, "flat": FlatHeap}


def resolve_backend_name(name: str | None) -> str:
    """Normalize and validate a backend name (None → default)."""
    if name is None:
        return default_backend_name()
    name = name.strip().lower()
    if name not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown heap backend {name!r} (known: {known})")
    return name


def default_backend_name() -> str:
    """The backend to use absent an explicit choice.

    Honours ``REPRO_HEAP_BACKEND``; an unset or empty variable means
    :data:`DEFAULT_BACKEND`.
    """
    name = os.environ.get(ENV_BACKEND, "").strip().lower()
    if not name:
        return DEFAULT_BACKEND
    if name not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(
            f"{ENV_BACKEND}={name!r} names no heap backend (known: {known})"
        )
    return name


def make_heap(backend: str | None = None, *, checked: bool = False):
    """Construct a heap of the selected backend.

    Args:
        backend: "object", "flat", or None for the run default
            (``REPRO_HEAP_BACKEND`` or :data:`DEFAULT_BACKEND`).
        checked: arm the per-store dangling-id probe.
    """
    return _BACKENDS[resolve_backend_name(backend)](checked=checked)
