"""Spaces: bounded regions of the simulated heap.

A :class:`Space` is a named region with a capacity in words and a set
of resident objects.  Collectors build their heap geometry out of
spaces: a mark/sweep collector uses one space, a stop-and-copy
collector uses two semispaces, a generational collector uses one or
more spaces per generation, and the non-predictive collector uses ``k``
equally sized *steps* (a step is just a space with a logical number
that changes at renumbering time).

Occupancy accounting is word-accurate: ``used`` is the sum of resident
object sizes, and ``free`` is ``capacity - used``.  Spaces never accept
an object that would overflow them; collectors rely on the resulting
:class:`SpaceFull` to trigger collection.
"""

from __future__ import annotations

from typing import Iterator

from repro.heap.object_model import HeapObject

__all__ = ["Space", "SpaceFull"]


class SpaceFull(Exception):
    """Raised when an allocation or move would overflow a space."""

    def __init__(self, space: "Space", requested: int) -> None:
        super().__init__(
            f"space {space.name!r} cannot fit {requested} words "
            f"({space.free} of {space.capacity} free)"
        )
        self.space = space
        self.requested = requested


class Space:
    """A bounded region of the heap holding a set of objects.

    Attributes:
        name: human-readable identifier ("semispace-A", "step-3", ...).
        capacity: capacity in words, or ``None`` for an unbounded space
            (used by trace-collection harnesses that never trigger GC).
    """

    __slots__ = ("name", "capacity", "used", "_objects")

    def __init__(self, name: str, capacity: int | None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity!r}")
        self.name = name
        self.capacity = capacity
        self.used = 0
        self._objects: dict[int, HeapObject] = {}

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------

    @property
    def free(self) -> int:
        """Free words; unbounded spaces report a very large number."""
        if self.capacity is None:
            return 2**62
        return self.capacity - self.used

    @property
    def object_count(self) -> int:
        return len(self._objects)

    def is_empty(self) -> bool:
        return not self._objects

    def fits(self, words: int) -> bool:
        """Whether an object of the given size would fit."""
        return self.capacity is None or self.used + words <= self.capacity

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, obj: HeapObject) -> None:
        """Place an object in this space, updating occupancy.

        The caller (always the heap) is responsible for having removed
        the object from its previous space first.
        """
        if obj.obj_id in self._objects:
            raise ValueError(f"{obj!r} is already in space {self.name!r}")
        if not self.fits(obj.size):
            raise SpaceFull(self, obj.size)
        self._objects[obj.obj_id] = obj
        self.used += obj.size
        obj.space = self

    def remove(self, obj: HeapObject) -> None:
        """Remove a resident object, updating occupancy."""
        if self._objects.pop(obj.obj_id, None) is None:
            raise KeyError(f"{obj!r} is not in space {self.name!r}")
        self.used -= obj.size
        obj.space = None

    def contains(self, obj: HeapObject) -> bool:
        return obj.obj_id in self._objects

    def objects(self) -> Iterator[HeapObject]:
        """Iterate over resident objects (insertion order).

        The iterator must not be used across mutations of the space;
        collectors snapshot with ``list(space.objects())`` when they
        intend to move objects while scanning.
        """
        return iter(self._objects.values())

    def object_ids(self) -> Iterator[int]:
        return iter(self._objects.keys())

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else str(self.capacity)
        return (
            f"Space(name={self.name!r}, used={self.used}/{cap}, "
            f"objects={len(self._objects)})"
        )
