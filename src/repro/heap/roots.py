"""The root set: global cells plus a shadow stack.

Programs running against the simulated heap hold onto objects in two
ways, mirroring a real language runtime:

* **global roots** — named cells (the benchmark programs use these for
  interned symbols, rule databases, and so on);
* **a shadow stack** — frames of local references pushed and popped
  around program activations, so that intermediate structures stay
  alive across an allocation that may trigger collection.

The root set stores object ids, not Python references; dangling roots
are detected by the tracer.
"""

from __future__ import annotations

from typing import Iterator

from repro.heap.object_model import HeapObject

__all__ = ["Frame", "RootSet"]


class Frame:
    """One shadow-stack frame: an ordered, growable list of root slots."""

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: list[int | None] = []

    def push(self, obj: HeapObject | None) -> int:
        """Append a slot; returns its index within the frame."""
        self._slots.append(None if obj is None else obj.obj_id)
        return len(self._slots) - 1

    def push_id(self, obj_id: int | None) -> int:
        """Append a slot holding a raw object id."""
        self._slots.append(obj_id)
        return len(self._slots) - 1

    def set(self, index: int, obj: HeapObject | None) -> None:
        self._slots[index] = None if obj is None else obj.obj_id

    def set_id(self, index: int, obj_id: int | None) -> None:
        self._slots[index] = obj_id

    def get_id(self, index: int) -> int | None:
        return self._slots[index]

    def ids(self) -> Iterator[int]:
        for ref in self._slots:
            if ref is not None:
                yield ref

    def __len__(self) -> int:
        return len(self._slots)


class RootSet:
    """Global roots, the shadow stack, and external root providers.

    A *provider* is a zero-argument callable returning an iterable of
    object ids; the runtime machine registers one that enumerates the
    live Python-side handles (see
    :class:`repro.runtime.machine.Machine`), playing the role of a
    real runtime's register/stack map.
    """

    __slots__ = ("_globals", "_stack", "_providers")

    def __init__(self) -> None:
        self._globals: dict[str, int | None] = {}
        self._stack: list[Frame] = []
        self._providers: list = []

    def add_provider(self, provider) -> None:
        """Register a callable yielding extra root ids at trace time."""
        self._providers.append(provider)

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------

    def set_global(self, name: str, obj: HeapObject | None) -> None:
        self._globals[name] = None if obj is None else obj.obj_id

    def get_global_id(self, name: str) -> int | None:
        return self._globals.get(name)

    def remove_global(self, name: str) -> None:
        self._globals.pop(name, None)

    def global_names(self) -> Iterator[str]:
        return iter(self._globals.keys())

    # ------------------------------------------------------------------
    # Shadow stack
    # ------------------------------------------------------------------

    def push_frame(self) -> Frame:
        frame = Frame()
        self._stack.append(frame)
        return frame

    def pop_frame(self, frame: Frame) -> None:
        """Pop the top frame; passing the wrong frame is a bug."""
        if not self._stack or self._stack[-1] is not frame:
            raise ValueError("pop_frame called with a frame that is not on top")
        self._stack.pop()

    @property
    def frame_depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def ids(self) -> Iterator[int]:
        """All root object ids (globals, stack frames, then providers)."""
        for ref in self._globals.values():
            if ref is not None:
                yield ref
        for frame in self._stack:
            yield from frame.ids()
        for provider in self._providers:
            yield from provider()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of the globals and the shadow stack.

        Global ordering is preserved (root enumeration order is
        observable through trace order).  Providers are deliberately
        excluded: they are live callables owned by the runtime layer,
        and a restored context re-registers its own.
        """
        return {
            "globals": [[name, ref] for name, ref in self._globals.items()],
            "frames": [list(frame._slots) for frame in self._stack],
        }

    def import_state(self, state: dict) -> None:
        """Replace the globals and shadow stack with a snapshot's.

        Providers registered on this root set are kept as they are.
        """
        self._globals = {name: ref for name, ref in state["globals"]}
        self._stack = []
        for slots in state["frames"]:
            frame = Frame()
            frame._slots = list(slots)
            self._stack.append(frame)

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())
