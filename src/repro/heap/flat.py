"""Struct-of-arrays heap backend: headers and slots in flat arenas.

:class:`FlatHeap` implements the same heap contract as
:class:`repro.heap.heap.SimulatedHeap` (the *object* backend) but
stores every per-object attribute in flat ``array('q')`` arenas indexed
by object id, the representation the PyPy ``SemiSpaceGC`` lineage uses
for real heaps:

========  ============================================================
arena     contents (one entry per object id, never reused)
========  ============================================================
_hdr      ``size | field_count << 24 | kind_code << 44`` (packed bits)
_birth    allocation clock at birth
_state    ``0`` dead · ``1`` detached (mid-collection) ·
          ``(pos << 16) | token`` resident at position ``pos`` of the
          space whose token is ``token`` (tokens start at 2)
_slot_base  index of the object's first slot in the shared ``_slots``
          list arena (slots hold ids, ``None``, or immediates, so the
          slot arena is a Python list, not an ``array``)
========  ============================================================

``kind`` strings are interned to small integers; rare ``payload``
values live in a side table.  A :class:`FlatSpace` keeps an
append-only id list with *lazy deletion*: an entry at position ``i``
is valid iff the object's packed state is exactly
``(i << 16) | token``, which reproduces dict insertion-order semantics
(iteration order, re-insert-at-end) without per-removal compaction.
The survivor-enumeration order of the non-predictive and hybrid
collectors is observable (it drives packing, renumbering, and reclaim
timing), so order fidelity here is what makes the two backends
byte-identical.

Object handles (:class:`FlatObject`) are created on demand by
:meth:`FlatHeap.get` and read through to the arenas; hot collector
loops never touch them — they run over ids via the shared kernel
methods (``trace_region``, ``cheney_evacuate``, ``free_unmarked``,
``partition_space``, ``extract_live``, ...) that both backends
implement.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Callable, Iterable, Iterator

from repro.heap.heap import HeapError
from repro.heap.space import SpaceFull

__all__ = ["FlatFields", "FlatHeap", "FlatObject", "FlatSpace"]

# Header packing: size in the low 24 bits, field count in the next 20,
# kind code above.  Sizes stay far below 2**24 words in every workload
# (the validator rejects larger objects).
_SIZE_BITS = 24
_SIZE_MASK = (1 << _SIZE_BITS) - 1
_FC_SHIFT = _SIZE_BITS
_FC_BITS = 20
_FC_MASK = (1 << _FC_BITS) - 1
_KIND_SHIFT = _FC_SHIFT + _FC_BITS

# State packing: low 16 bits are the residency token, the rest is the
# position inside the owning space's id list.
_DEAD = 0
_DETACHED = 1
_TOKEN_BITS = 16
_TOKEN_MASK = (1 << _TOKEN_BITS) - 1
_POS_SHIFT = _TOKEN_BITS
_FIRST_TOKEN = 2

# Compact a space's id list when stale entries outnumber live ones
# this many times over (deterministic: depends only on the operation
# sequence, and list positions are not observable).
_COMPACT_FACTOR = 4
_COMPACT_SLACK = 64


class FlatSpace:
    """A bounded heap region backed by an append-only id list.

    Mirrors :class:`repro.heap.space.Space` (name, capacity, ``used``,
    ``free``, ``fits``, membership, iteration) but membership is the
    packed state word in the owning :class:`FlatHeap`, not a dict.
    """

    __slots__ = ("name", "capacity", "used", "_heap", "_token", "_ids", "_count")

    def __init__(self, heap: "FlatHeap", name: str, capacity: int | None,
                 token: int) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity!r}")
        self.name = name
        self.capacity = capacity
        self.used = 0
        self._heap = heap
        self._token = token
        self._ids: list[int] = []
        self._count = 0

    # -- occupancy ------------------------------------------------------

    @property
    def free(self) -> int:
        if self.capacity is None:
            return 2**62
        return self.capacity - self.used

    @property
    def object_count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def fits(self, words: int) -> bool:
        return self.capacity is None or self.used + words <= self.capacity

    # -- membership -----------------------------------------------------

    def add(self, obj: "FlatObject") -> None:
        """Place a detached object here, updating occupancy."""
        heap = self._heap
        oid = obj.obj_id
        state = heap._state
        if state[oid] & _TOKEN_MASK == self._token and self._valid(oid):
            raise ValueError(f"{obj!r} is already in space {self.name!r}")
        size = heap._hdr[oid] & _SIZE_MASK
        if not self.fits(size):
            raise SpaceFull(self, size)
        heap.place_id(oid, self, size)

    def remove(self, obj: "FlatObject") -> None:
        """Detach a resident object, updating occupancy."""
        heap = self._heap
        oid = obj.obj_id
        if not self._valid(oid):
            raise KeyError(f"{obj!r} is not in space {self.name!r}")
        heap._state[oid] = _DETACHED
        self.used -= heap._hdr[oid] & _SIZE_MASK
        self._count -= 1

    def contains(self, obj: "FlatObject") -> bool:
        return self._valid(obj.obj_id)

    def _valid(self, oid: int) -> bool:
        state = self._heap._state
        if not 0 <= oid < len(state):
            return False
        packed = state[oid]
        return (
            packed & _TOKEN_MASK == self._token
            and (packed >> _POS_SHIFT) < len(self._ids)
            and self._ids[packed >> _POS_SHIFT] == oid
        )

    def object_ids(self) -> Iterator[int]:
        """Resident ids in insertion order (skipping stale entries)."""
        state = self._heap._state
        token = self._token
        for pos, oid in enumerate(self._ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                yield oid

    def objects(self) -> Iterator["FlatObject"]:
        heap = self._heap
        for oid in self.object_ids():
            yield FlatObject(heap, oid)

    def _compact_ids(self) -> None:
        """Drop stale entries, renumbering live positions."""
        if not self._count:
            self._ids = []
            return
        state = self._heap._state
        token = self._token
        fresh: list[int] = []
        append = fresh.append
        for pos, oid in enumerate(self._ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                state[oid] = (len(fresh) << _POS_SHIFT) | token
                append(oid)
        self._ids = fresh

    def __repr__(self) -> str:
        cap = "unbounded" if self.capacity is None else str(self.capacity)
        return (
            f"FlatSpace(name={self.name!r}, used={self.used}/{cap}, "
            f"objects={self._count})"
        )


class FlatFields:
    """A mutable list-like view of one object's slot range.

    Supports exactly the operations collector and runtime code performs
    on ``HeapObject.fields``: ``len``, iteration, indexing (including
    negative indices and slices), item assignment, and equality against
    any sequence.  Assignment writes the slot arena directly — like a
    raw list store on the object backend, it bypasses checked-mode
    probes (the chaos fault injector relies on this).
    """

    __slots__ = ("_heap", "_oid")

    def __init__(self, heap: "FlatHeap", oid: int) -> None:
        self._heap = heap
        self._oid = oid

    def __len__(self) -> int:
        return (self._heap._hdr[self._oid] >> _FC_SHIFT) & _FC_MASK

    def __iter__(self) -> Iterator[object]:
        heap = self._heap
        base = heap._slot_base[self._oid]
        count = (heap._hdr[self._oid] >> _FC_SHIFT) & _FC_MASK
        return iter(heap._slots[base:base + count])

    def __getitem__(self, index):
        heap = self._heap
        base = heap._slot_base[self._oid]
        count = (heap._hdr[self._oid] >> _FC_SHIFT) & _FC_MASK
        if isinstance(index, slice):
            return heap._slots[base:base + count][index]
        return heap._slots[base + range(count)[index]]

    def __setitem__(self, index: int, value: object) -> None:
        heap = self._heap
        base = heap._slot_base[self._oid]
        count = (heap._hdr[self._oid] >> _FC_SHIFT) & _FC_MASK
        heap._slots[base + range(count)[index]] = value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlatFields):
            return list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FlatFields({list(self)!r})"


class FlatObject:
    """An on-demand handle over one arena row.

    Cheap to create (two attribute stores); all state reads go through
    to the arenas, so two handles for the same id always agree.  Unlike
    :class:`~repro.heap.object_model.HeapObject`, handles have no
    identity guarantee — code must compare ``obj_id``, which everything
    in this repository already does.
    """

    __slots__ = ("heap", "obj_id")

    def __init__(self, heap: "FlatHeap", obj_id: int) -> None:
        self.heap = heap
        self.obj_id = obj_id

    @property
    def size(self) -> int:
        return self.heap._hdr[self.obj_id] & _SIZE_MASK

    @property
    def birth(self) -> int:
        return self.heap._birth[self.obj_id]

    @property
    def kind(self) -> str:
        return self.heap._kind_names[self.heap._hdr[self.obj_id] >> _KIND_SHIFT]

    @property
    def space(self) -> FlatSpace | None:
        return self.heap.space_if_live(self.obj_id)

    @space.setter
    def space(self, value: FlatSpace | None) -> None:
        # Rewrites only which space the object *claims* — no space table
        # or occupancy is touched, mirroring a raw back-pointer store on
        # HeapObject.  Exists for the fault injectors; collectors move
        # objects through the heap kernels instead.
        heap = self.heap
        packed = heap._state[self.obj_id]
        if packed == _DEAD:
            raise HeapError(f"dangling object id {self.obj_id}")
        if value is None:
            heap._state[self.obj_id] = _DETACHED
        else:
            pos = packed >> _POS_SHIFT if packed != _DETACHED else 0
            heap._state[self.obj_id] = (pos << _POS_SHIFT) | value._token

    @property
    def payload(self) -> object:
        return self.heap._payloads.get(self.obj_id)

    @payload.setter
    def payload(self, value: object) -> None:
        self.heap._payloads[self.obj_id] = value

    @property
    def fields(self) -> FlatFields:
        return FlatFields(self.heap, self.obj_id)

    def references(self) -> Iterator[int]:
        """Ids stored in reference slots (``None``/immediates skipped)."""
        for value in self.fields:
            if type(value) is int:
                yield value

    def points_to(self, obj_id: int) -> bool:
        return any(ref == obj_id for ref in self.references())

    def __repr__(self) -> str:
        space = self.space
        where = space.name if space is not None else "nowhere"
        return (
            f"FlatObject(id={self.obj_id}, size={self.size}, "
            f"kind={self.kind!r}, space={where})"
        )


class FlatHeap:
    """The struct-of-arrays heap backend.

    Public surface matches :class:`repro.heap.heap.SimulatedHeap`
    exactly (spaces, allocate/free/move/get, field access, tracing,
    integrity) plus the shared kernel methods both backends provide.
    """

    backend_name = "flat"

    __slots__ = (
        "_hdr",
        "_birth",
        "_state",
        "_color",
        "_slot_base",
        "_slots",
        "_payloads",
        "_kind_codes",
        "_kind_names",
        "_spaces",
        "_space_by_token",
        "_live_count",
        "clock",
        "objects_allocated",
        "checked",
        "event_sink",
    )

    def __init__(self, *, checked: bool = False) -> None:
        self._hdr = array("q")
        self._birth = array("q")
        self._state = array("q")
        #: Tri-color mark-state arena (one word per id), sized lazily
        #: at each ``begin_mark_epoch`` so the allocation hot path
        #: never touches it; ids past its end are white, and objects
        #: born inside an epoch are classified by birth clock instead.
        self._color = array("q")
        self._slot_base = array("q")
        self._slots: list[object] = []
        self._payloads: dict[int, object] = {}
        self._kind_codes: dict[str, int] = {"data": 0}
        self._kind_names: list[str] = ["data"]
        self._spaces: dict[str, FlatSpace] = {}
        self._space_by_token: list[FlatSpace | None] = [None, None]
        self._live_count = 0
        self.clock = 0
        self.objects_allocated = 0
        self.checked = checked
        self.event_sink = None

    # ------------------------------------------------------------------
    # Spaces
    # ------------------------------------------------------------------

    def add_space(self, name: str, capacity: int | None) -> FlatSpace:
        if name in self._spaces:
            raise ValueError(f"space {name!r} already exists")
        token = len(self._space_by_token)
        space = FlatSpace(self, name, capacity, token)
        self._space_by_token.append(space)
        self._spaces[name] = space
        if self.event_sink is not None:
            self.event_sink.emit(
                "space-created", space=name, capacity=capacity
            )
        return space

    def remove_space(self, space: FlatSpace) -> None:
        if not space.is_empty():
            raise HeapError(f"cannot remove non-empty space {space.name!r}")
        if self._spaces.get(space.name) is not space:
            raise KeyError(f"space {space.name!r} is not registered")
        del self._spaces[space.name]
        self._space_by_token[space._token] = None
        if self.event_sink is not None:
            self.event_sink.emit("space-removed", space=space.name)

    def space(self, name: str) -> FlatSpace:
        try:
            return self._spaces[name]
        except KeyError:
            raise KeyError(f"no space named {name!r}") from None

    def spaces(self) -> Iterator[FlatSpace]:
        return iter(self._spaces.values())

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    @property
    def object_count(self) -> int:
        return self._live_count

    @property
    def live_words(self) -> int:
        return sum(space.used for space in self._spaces.values())

    def _kind_code(self, kind: str) -> int:
        code = self._kind_codes.get(kind)
        if code is None:
            code = len(self._kind_names)
            self._kind_codes[kind] = code
            self._kind_names.append(kind)
        return code

    def allocate(
        self,
        size: int,
        field_count: int,
        space: FlatSpace,
        kind: str = "data",
        *,
        advance_clock: bool = True,
    ) -> FlatObject:
        """Allocate a new object in ``space`` and advance the clock."""
        return FlatObject(
            self,
            self.allocate_id(
                size, field_count, space, kind, advance_clock=advance_clock
            ),
        )

    def allocate_id(
        self,
        size: int,
        field_count: int,
        space: FlatSpace,
        kind: str = "data",
        *,
        advance_clock: bool = True,
    ) -> int:
        """Allocate and return the raw id — the backend's hot path."""
        capacity = space.capacity
        used = space.used
        if capacity is not None and used + size > capacity:
            raise SpaceFull(space, size)
        if not 1 <= size <= _SIZE_MASK:
            raise ValueError(f"object size must be >= 1 word, got {size!r}")
        if not 0 <= field_count <= size:
            raise ValueError(
                f"field count {field_count!r} does not fit in {size} words"
            )
        oid = len(self._hdr)
        kind_code = 0 if kind == "data" else self._kind_code(kind)
        self._hdr.append(size | (field_count << _FC_SHIFT)
                         | (kind_code << _KIND_SHIFT))
        self._birth.append(self.clock)
        slots = self._slots
        self._slot_base.append(len(slots))
        if field_count:
            slots += (None,) * field_count
        ids = space._ids
        self._state.append((len(ids) << _POS_SHIFT) | space._token)
        ids.append(oid)
        space._count += 1
        space.used = used + size
        self._live_count += 1
        if advance_clock:
            self.clock += size
            self.objects_allocated += 1
        return oid

    def bulk_allocate(
        self, count: int, size: int, space: FlatSpace
    ) -> tuple[int, int]:
        """Materialize ``count`` field-less ``data`` objects at C speed.

        Returns the half-open id range ``(first, first + count)``.  The
        caller (a collector's allocation window) has already reserved
        capacity; observable state afterwards — clock, stats, space
        contents, ids — is exactly as if :meth:`allocate_id` had run
        ``count`` times, which is what keeps windowed benchmark runs
        byte-identical to plain allocation for uniform object sizes.
        """
        if count <= 0:
            raise ValueError(f"window must cover >= 1 object, got {count!r}")
        first = len(self._hdr)
        clock = self.clock
        self._hdr.extend(array("q", [size]) * count)
        self._birth.extend(array("q", range(clock, clock + count * size, size)))
        base = len(self._slots)
        self._slot_base.extend(array("q", [base]) * count)
        ids = space._ids
        token = (len(ids) << _POS_SHIFT) | space._token
        self._state.extend(
            array("q", range(token, token + (count << _POS_SHIFT),
                             1 << _POS_SHIFT))
        )
        ids.extend(range(first, first + count))
        space._count += count
        space.used += count * size
        self._live_count += count
        self.clock = clock + count * size
        self.objects_allocated += count
        return first, first + count

    def free(self, obj: FlatObject) -> None:
        """Remove a dead object from the heap entirely."""
        oid = obj.obj_id
        state = self._state
        if not 0 <= oid < len(state) or state[oid] == _DEAD:
            raise HeapError(f"object {oid} is not in the heap")
        packed = state[oid]
        if packed != _DETACHED:
            space = self._space_by_token[packed & _TOKEN_MASK]
            space.used -= self._hdr[oid] & _SIZE_MASK
            space._count -= 1
        state[oid] = _DEAD
        self._live_count -= 1
        self._payloads.pop(oid, None)

    def move(self, obj: FlatObject, to_space: FlatSpace) -> None:
        """Move an object between spaces (the simulator's "copy")."""
        oid = obj.obj_id
        state = self._state
        if not 0 <= oid < len(state) or state[oid] == _DEAD:
            raise HeapError(f"object {oid} is not in the heap")
        packed = state[oid]
        from_space = (
            None if packed == _DETACHED
            else self._space_by_token[packed & _TOKEN_MASK]
        )
        if from_space is to_space:
            return
        size = self._hdr[oid] & _SIZE_MASK
        capacity = to_space.capacity
        if capacity is not None and to_space.used + size > capacity:
            raise SpaceFull(to_space, size)
        if from_space is not None:
            from_space.used -= size
            from_space._count -= 1
            self._maybe_compact(from_space)
        self.place_id(oid, to_space, size)

    def _maybe_compact(self, space: FlatSpace) -> None:
        ids = space._ids
        if len(ids) > _COMPACT_FACTOR * space._count + _COMPACT_SLACK:
            space._compact_ids()

    def get(self, obj_id: int) -> FlatObject:
        """Resolve an object id; dangling ids are a structural error."""
        state = self._state
        if (
            type(obj_id) is not int
            or not 0 <= obj_id < len(state)
            or state[obj_id] == _DEAD
        ):
            raise HeapError(f"dangling object id {obj_id}")
        return FlatObject(self, obj_id)

    def contains_id(self, obj_id: int) -> bool:
        state = self._state
        return (
            type(obj_id) is int
            and 0 <= obj_id < len(state)
            and state[obj_id] != _DEAD
        )

    def all_objects(self) -> Iterator[FlatObject]:
        state = self._state
        for oid in range(len(state)):
            if state[oid] != _DEAD:
                yield FlatObject(self, oid)

    def resident_words(self, spaces: Iterable[FlatSpace]) -> int:
        return sum(space.used for space in spaces)

    def dangling_ids(self, ids: Iterable[int]) -> list[int]:
        state = self._state
        n = len(state)
        return [
            obj_id
            for obj_id in ids
            if not (
                type(obj_id) is int
                and 0 <= obj_id < n
                and state[obj_id] != _DEAD
            )
        ]

    def occupancy(self) -> dict:
        """A JSON-able per-space occupancy snapshot for diagnostics."""
        return {
            "clock": self.clock,
            "objects_allocated": self.objects_allocated,
            "object_count": self._live_count,
            "live_words": self.live_words,
            "spaces": [
                {
                    "name": space.name,
                    "used": space.used,
                    "capacity": space.capacity,
                    "free": None if space.capacity is None else space.free,
                    "objects": space._count,
                }
                for space in self._spaces.values()
            ],
        }

    # ------------------------------------------------------------------
    # Fields
    # ------------------------------------------------------------------

    def read_field(self, obj: FlatObject, slot: int) -> FlatObject | None:
        ref = self.read_slot(obj, slot)
        if ref is None:
            return None
        if type(ref) is not int:
            raise HeapError(
                f"slot {slot} of object {obj.obj_id} holds an immediate, "
                f"not a reference"
            )
        return self.get(ref)

    def read_slot(self, obj: FlatObject, slot: int) -> object:
        oid = obj.obj_id
        count = (self._hdr[oid] >> _FC_SHIFT) & _FC_MASK
        if not 0 <= slot < count:
            raise HeapError(
                f"object {oid} has no slot {slot} (it has {count})"
            )
        return self._slots[self._slot_base[oid] + slot]

    def write_field(
        self, obj: FlatObject, slot: int, target: FlatObject | None
    ) -> None:
        self.write_slot(obj, slot, None if target is None else target.obj_id)

    def write_slot(self, obj: FlatObject, slot: int, value: object) -> None:
        oid = obj.obj_id
        count = (self._hdr[oid] >> _FC_SHIFT) & _FC_MASK
        if slot < 0 or slot >= count:
            raise HeapError(
                f"object {oid} has no slot {slot} (it has {count})"
            )
        if self.checked and type(value) is int and not self.contains_id(value):
            raise HeapError(f"cannot store dangling object id {value}")
        self._slots[self._slot_base[oid] + slot] = value

    # ------------------------------------------------------------------
    # Id-level accessors (shared kernel surface)
    # ------------------------------------------------------------------

    def size_of(self, oid: int) -> int:
        return self._hdr[oid] & _SIZE_MASK

    def birth_of(self, oid: int) -> int:
        return self._birth[oid]

    def slot_count_of(self, oid: int) -> int:
        return (self._hdr[oid] >> _FC_SHIFT) & _FC_MASK

    def slots_of(self, oid: int) -> list[object]:
        """A snapshot copy of the object's raw slot values."""
        base = self._slot_base[oid]
        count = (self._hdr[oid] >> _FC_SHIFT) & _FC_MASK
        return self._slots[base:base + count]

    def ref_slots(self, oid: int) -> list[tuple[int, int]]:
        """``(slot, ref_id)`` pairs for reference-holding slots."""
        base = self._slot_base[oid]
        count = (self._hdr[oid] >> _FC_SHIFT) & _FC_MASK
        slots = self._slots
        return [
            (slot, slots[base + slot])
            for slot in range(count)
            if type(slots[base + slot]) is int
        ]

    def space_if_live(self, oid: int) -> FlatSpace | None:
        """The space of ``oid``, or None if freed/detached/dangling."""
        state = self._state
        if type(oid) is not int or not 0 <= oid < len(state):
            return None
        packed = state[oid]
        if packed == _DEAD or packed == _DETACHED:
            return None
        return self._space_by_token[packed & _TOKEN_MASK]

    def slot_ref(self, obj_id: int, slot: int) -> tuple[FlatSpace, int] | None:
        """``(source_space, ref_id)`` for a remset probe, else None.

        None when the source is dead/detached, the slot is out of
        range, or the slot holds a non-reference.
        """
        space = self.space_if_live(obj_id)
        if space is None:
            return None
        count = (self._hdr[obj_id] >> _FC_SHIFT) & _FC_MASK
        if slot >= count:
            return None
        ref = self._slots[self._slot_base[obj_id] + slot]
        if type(ref) is not int:
            return None
        return space, ref

    # ------------------------------------------------------------------
    # Tri-color mark state (incremental collector)
    # ------------------------------------------------------------------

    def begin_mark_epoch(self) -> None:
        """Reset every object's mark color to white (0).

        Rebuilds the color arena zeroed over every id allocated so
        far; ids allocated after the call fall off its end and read as
        white (the incremental collector treats them as allocate-black
        via the birth clock, so they are never recolored).
        """
        self._color = array("q", bytes(8 * len(self._hdr)))

    def color_of(self, oid: int) -> int:
        """The object's mark color: 0 white, 1 gray, 2 black."""
        color = self._color
        return color[oid] if oid < len(color) else 0

    def set_color(self, oid: int, color: int) -> None:
        self._color[oid] = color

    def drain_gray(
        self,
        gray: list[int],
        space: FlatSpace,
        epoch: int,
        limit: int | None = None,
    ) -> int:
        """Scan gray objects until the wavefront drains or ``limit``
        words have been examined; returns the words scanned.

        The flat kernel behind the incremental collector's mark loop:
        identical semantics to popping ``gray`` and walking
        ``ref_slots``/``space_if_live``/``birth_of``/``color_of`` one
        call at a time, with the arena lookups hoisted out of the loop.
        Colors: 0 white, 1 gray, 2 black.  Every id on ``gray`` was
        recolored through :meth:`set_color` and every grayed ref is
        pre-epoch, so direct color-arena indexing is in range.
        """
        state = self._state
        hdr = self._hdr
        birth = self._birth
        color = self._color
        sbase = self._slot_base
        slots = self._slots
        token = space._token
        n = len(state)
        pop = gray.pop
        push = gray.append
        work = 0
        while gray and (limit is None or work < limit):
            oid = pop()
            if color[oid] != 1:
                continue  # conservative duplicate entry; already scanned
            color[oid] = 2
            header = hdr[oid]
            count = (header >> _FC_SHIFT) & _FC_MASK
            if count:
                base = sbase[oid]
                for ref in slots[base:base + count]:
                    if type(ref) is int:
                        if not 0 <= ref < n:
                            raise HeapError(f"dangling object id {ref}")
                        packed = state[ref]
                        if packed == _DEAD:
                            raise HeapError(f"dangling object id {ref}")
                        if (
                            packed != _DETACHED
                            and packed & _TOKEN_MASK == token
                            and birth[ref] < epoch
                            and color[ref] == 0
                        ):
                            color[ref] = 1
                            push(ref)
            work += header & _SIZE_MASK
        return work

    def survivor_ids(self, space: FlatSpace, epoch: int) -> set[int]:
        """Resident ids that survive a tri-color sweep: colored
        non-white, or born at/after the mark epoch."""
        state = self._state
        birth = self._birth
        color = self._color
        ncolor = len(color)
        stride = 1 << _POS_SHIFT
        packed = space._token
        out: set[int] = set()
        add = out.add
        for oid in space._ids:
            if state[oid] == packed and (
                (oid < ncolor and color[oid]) or birth[oid] >= epoch
            ):
                add(oid)
            packed += stride
        return out

    def export_mark_snapshot(
        self, space: FlatSpace, root_ids: Iterable[int]
    ) -> dict:
        """Package the reachability-relevant arenas for an off-process
        marker (:mod:`repro.gc.concurrent`).

        The header/state/slot-base arenas ship as raw ``array('q')``
        bytes — one memcpy each, O(arena bytes).  The slot arena is a
        Python list (it holds ids, ``None``, and immediates), so it is
        lowered to a packed ref arena with non-references encoded as
        ``-1``; ids are non-negative, so the encoding is unambiguous.
        Birth clocks are deliberately absent: every snapshot-resident
        id is pre-epoch by construction (the epoch opens at export).
        """
        refs = array(
            "q", (x if type(x) is int else -1 for x in self._slots)
        )
        return {
            "backend": "flat",
            "hdr": self._hdr.tobytes(),
            "state": self._state.tobytes(),
            "slot_base": self._slot_base.tobytes(),
            "refs": refs.tobytes(),
            "token": space._token,
            "roots": list(root_ids),
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """A JSON-serializable snapshot of the full heap state.

        Arenas ship as plain integer lists (portable and diffable; the
        simulated workloads keep them small).  Per-space id lists are
        serialized verbatim *including stale lazy-deletion entries* —
        positions are baked into the packed state words, so dropping
        stale entries would desynchronize every survivor.  Payload
        values must themselves be JSON-serializable.
        """
        return {
            "backend": "flat",
            "clock": self.clock,
            "objects_allocated": self.objects_allocated,
            "hdr": list(self._hdr),
            "birth": list(self._birth),
            "state": list(self._state),
            "color": list(self._color),
            "slot_base": list(self._slot_base),
            "slots": list(self._slots),
            "payloads": sorted(
                [oid, payload] for oid, payload in self._payloads.items()
            ),
            "kind_names": list(self._kind_names),
            "live_count": self._live_count,
            "token_count": len(self._space_by_token),
            "spaces": [
                {
                    "name": space.name,
                    "capacity": space.capacity,
                    "used": space.used,
                    "token": space._token,
                    "count": space._count,
                    "ids": list(space._ids),
                }
                for space in self._spaces.values()
            ],
        }

    def import_state(self, state: dict) -> None:
        """Replace all heap state with an :meth:`export_state` snapshot.

        The registered spaces must match the snapshot by name (the
        collector that owns them is restored first and recreates its
        space structure); each space's token, capacity, occupancy, and
        id list are overwritten from the snapshot, and the token table
        is rebuilt at the snapshot's indices.  Ends with a full
        :meth:`check_integrity` pass so a structurally inconsistent
        snapshot fails here rather than corrupting a later collection.
        """
        if state.get("backend") != "flat":
            raise HeapError(
                f"snapshot backend {state.get('backend')!r} does not match "
                f"heap backend 'flat'"
            )
        names = {entry["name"] for entry in state["spaces"]}
        if names != set(self._spaces):
            raise HeapError(
                f"snapshot spaces {sorted(names)} do not match heap spaces "
                f"{sorted(self._spaces)}"
            )
        self.clock = int(state["clock"])
        self.objects_allocated = int(state["objects_allocated"])
        self._hdr = array("q", state["hdr"])
        self._birth = array("q", state["birth"])
        self._state = array("q", state["state"])
        self._color = array("q", state["color"])
        self._slot_base = array("q", state["slot_base"])
        self._slots = list(state["slots"])
        self._payloads = {int(oid): payload for oid, payload in state["payloads"]}
        self._kind_names = list(state["kind_names"])
        self._kind_codes = {
            name: code for code, name in enumerate(self._kind_names)
        }
        self._live_count = int(state["live_count"])
        self._space_by_token = [None] * int(state["token_count"])
        for entry in state["spaces"]:
            space = self._spaces[entry["name"]]
            space.capacity = entry["capacity"]
            space.used = int(entry["used"])
            space._token = int(entry["token"])
            space._count = int(entry["count"])
            space._ids = [int(oid) for oid in entry["ids"]]
            self._space_by_token[space._token] = space
        self.check_integrity()

    def place_id(self, oid: int, space: FlatSpace, size: int | None = None) -> None:
        """Attach a detached object to ``space`` (no capacity check)."""
        if size is None:
            size = self._hdr[oid] & _SIZE_MASK
        ids = space._ids
        self._state[oid] = (len(ids) << _POS_SHIFT) | space._token
        ids.append(oid)
        space._count += 1
        space.used += size

    def move_ids(self, oids: Iterable[int], target: FlatSpace) -> int:
        """Move resident objects to ``target`` (no capacity check).

        Returns the words moved.  Source-space occupancy is updated;
        stale source id-list entries are invalidated lazily by the
        state rewrite.
        """
        state = self._state
        hdr = self._hdr
        by_token = self._space_by_token
        tids = target._ids
        append = tids.append
        stride = 1 << _POS_SHIFT
        packed_target = (len(tids) << _POS_SHIFT) | target._token
        # Movers overwhelmingly arrive grouped by source space
        # (survivor lists are per-space), so cache the token lookup.
        last_token = -1
        source: FlatSpace | None = None
        moved = 0
        count = 0
        touched: list[FlatSpace] = []
        for oid in oids:
            packed = state[oid]
            size = hdr[oid] & _SIZE_MASK
            if packed != _DETACHED:
                token = packed & _TOKEN_MASK
                if token != last_token:
                    last_token = token
                    source = by_token[token]
                    touched.append(source)
                source.used -= size
                source._count -= 1
            state[oid] = packed_target
            packed_target += stride
            append(oid)
            moved += size
            count += 1
        target._count += count
        target.used += moved
        # Source id-lists now carry stale entries for every mover;
        # compact eagerly-enough that the sweep kernels' no-stale fast
        # paths stay available (emptied spaces compact in O(1)).
        for space in touched:
            if space is not target:
                self._maybe_compact(space)
        return moved

    def count_slot_refs_into(
        self, oids: Iterable[int], spaces: "set[FlatSpace]"
    ) -> int:
        """Count reference slots of ``oids`` that point into ``spaces``."""
        state = self._state
        hdr = self._hdr
        sbase = self._slot_base
        slots = self._slots
        by_token = self._space_by_token
        n = len(state)
        total = 0
        for oid in oids:
            count = (hdr[oid] >> _FC_SHIFT) & _FC_MASK
            if not count:
                continue
            base = sbase[oid]
            for ref in slots[base:base + count]:
                if type(ref) is not int:
                    continue
                if not 0 <= ref < n:
                    raise HeapError(f"dangling object id {ref}")
                packed = state[ref]
                if packed == _DEAD:
                    raise HeapError(f"dangling object id {ref}")
                if packed != _DETACHED and by_token[packed & _TOKEN_MASK] in spaces:
                    total += 1
        return total

    # ------------------------------------------------------------------
    # Collection kernels
    # ------------------------------------------------------------------

    def trace_region(
        self, region: Iterable[FlatSpace], seed_ids: Iterable[int]
    ) -> tuple[set[int], int]:
        """Mark the closure of ``seed_ids`` restricted to ``region``.

        Returns ``(marked_ids, words_marked)``.  References leaving the
        region are not followed; dangling seeds or slots raise
        :class:`HeapError` exactly like the object backend's trace.
        """
        state = self._state
        hdr = self._hdr
        sbase = self._slot_base
        slots = self._slots
        tokens = frozenset(space._token for space in region)
        n = len(state)
        marked: set[int] = set()
        mark = marked.add
        stack: list[int] = []
        push = stack.append
        pop = stack.pop
        words = 0
        for oid in seed_ids:
            if oid not in marked:
                if not 0 <= oid < n:
                    raise HeapError(f"dangling object id {oid}")
                packed = state[oid]
                if packed == _DEAD:
                    raise HeapError(f"dangling object id {oid}")
                if packed & _TOKEN_MASK in tokens:
                    mark(oid)
                    push(oid)
        while stack:
            oid = pop()
            header = hdr[oid]
            words += header & _SIZE_MASK
            count = (header >> _FC_SHIFT) & _FC_MASK
            if count:
                base = sbase[oid]
                for ref in slots[base:base + count]:
                    if type(ref) is int and ref not in marked:
                        if not 0 <= ref < n:
                            raise HeapError(f"dangling object id {ref}")
                        packed = state[ref]
                        if packed == _DEAD:
                            raise HeapError(f"dangling object id {ref}")
                        if packed & _TOKEN_MASK in tokens:
                            mark(ref)
                            push(ref)
        return marked, words

    def cheney_evacuate(
        self,
        from_space: FlatSpace,
        to_space: FlatSpace,
        root_ids: Iterable[int],
    ) -> tuple[int, int]:
        """Copy the live closure out of ``from_space`` into ``to_space``.

        Breadth-first (Cheney order), abandoning everything left in
        ``from_space`` afterwards.  Returns ``(words_copied,
        words_reclaimed)``; occupancies are updated and ``from_space``
        is left empty.
        """
        state = self._state
        hdr = self._hdr
        sbase = self._slot_base
        slots = self._slots
        ftoken = from_space._token
        ttoken = to_space._token
        tids = to_space._ids
        append = tids.append
        stride = 1 << _POS_SHIFT
        packed_target = (len(tids) << _POS_SHIFT) | ttoken
        n = len(state)
        copied: set[int] = set()
        mark = copied.add
        queue: deque[int] = deque()
        push = queue.append
        pop = queue.popleft
        work = 0
        for oid in root_ids:
            if oid in copied:
                continue
            if not 0 <= oid < n:
                raise HeapError(f"dangling object id {oid}")
            packed = state[oid]
            if packed == _DEAD:
                raise HeapError(f"dangling object id {oid}")
            if packed & _TOKEN_MASK != ftoken:
                continue
            state[oid] = packed_target
            packed_target += stride
            append(oid)
            mark(oid)
            push(oid)
            work += hdr[oid] & _SIZE_MASK
        while queue:
            oid = pop()
            count = (hdr[oid] >> _FC_SHIFT) & _FC_MASK
            if not count:
                continue
            base = sbase[oid]
            for ref in slots[base:base + count]:
                if type(ref) is int and ref not in copied:
                    if not 0 <= ref < n:
                        raise HeapError(f"dangling object id {ref}")
                    packed = state[ref]
                    if packed == _DEAD:
                        raise HeapError(f"dangling object id {ref}")
                    if packed & _TOKEN_MASK == ftoken:
                        state[ref] = packed_target
                        packed_target += stride
                        append(ref)
                        mark(ref)
                        push(ref)
                        work += hdr[ref] & _SIZE_MASK
        payloads = self._payloads or None
        fids = from_space._ids
        if payloads is None and from_space._count == len(fids):
            # No stale entries: whatever was not copied is dead, so the
            # reclaimed total needs no per-corpse header reads and the
            # residency test is a bare token compare.
            reclaimed = from_space.used - work
            for oid in fids:
                if state[oid] & _TOKEN_MASK == ftoken:
                    state[oid] = _DEAD
        else:
            reclaimed = 0
            for pos, oid in enumerate(fids):
                if state[oid] == (pos << _POS_SHIFT) | ftoken:
                    state[oid] = _DEAD
                    reclaimed += hdr[oid] & _SIZE_MASK
                    if payloads is not None:
                        payloads.pop(oid, None)
        self._live_count -= from_space._count - len(copied)
        from_space._ids = []
        from_space._count = 0
        from_space.used = 0
        to_space._count += len(copied)
        to_space.used += work
        return work, reclaimed

    def free_unmarked(self, space: FlatSpace, marked: "set[int]") -> int:
        """Sweep ``space`` in place, freeing unmarked objects.

        Returns words reclaimed.  Survivors keep their relative order
        (positions are renumbered, which is unobservable).
        """
        state = self._state
        hdr = self._hdr
        payloads = self._payloads or None
        token = space._token
        ids = space._ids
        if payloads is None and space._count == len(ids):
            fresh = [oid for oid in ids if oid in marked]
            survivor_words = sum(hdr[oid] & _SIZE_MASK for oid in fresh)
            reclaimed = space.used - survivor_words
            if len(fresh) != len(ids):
                # Distinct ids (no stale entries), so max-min+1 == len
                # proves the set is exactly an interval in any order;
                # kill it as one slice, re-pointing survivors below.
                lo, hi = min(ids), max(ids)
                if hi - lo + 1 == len(ids):
                    state[lo:hi + 1] = array("q", bytes(8 * len(ids)))
                else:
                    for oid in ids:
                        if oid not in marked:
                            state[oid] = _DEAD
            packed = token
            stride = 1 << _POS_SHIFT
            for oid in fresh:
                state[oid] = packed
                packed += stride
            self._live_count -= space._count - len(fresh)
            space._ids = fresh
            space._count = len(fresh)
            space.used -= reclaimed
            return reclaimed
        fresh = []
        append = fresh.append
        reclaimed = 0
        for pos, oid in enumerate(ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                if oid in marked:
                    state[oid] = (len(fresh) << _POS_SHIFT) | token
                    append(oid)
                else:
                    state[oid] = _DEAD
                    reclaimed += hdr[oid] & _SIZE_MASK
                    if payloads is not None:
                        payloads.pop(oid, None)
        self._live_count -= space._count - len(fresh)
        space._ids = fresh
        space._count = len(fresh)
        space.used -= reclaimed
        return reclaimed

    def partition_space(
        self, space: FlatSpace, marked: "set[int]"
    ) -> tuple[list[int], int]:
        """Free dead objects; return surviving ids in space order.

        Survivors remain resident in ``space`` — callers move some of
        them out afterwards (generational promotion).
        """
        state = self._state
        hdr = self._hdr
        # The payload side-table is almost always empty; skipping the
        # per-corpse dict.pop when it is keeps the sweep loop tight.
        payloads = self._payloads or None
        token = space._token
        ids = space._ids
        if payloads is None and space._count == len(ids):
            # No stale entries: every listed id is resident, so the
            # classification collapses to C-speed comprehensions.
            fresh = [oid for oid in ids if oid in marked]
            survivor_words = sum(hdr[oid] & _SIZE_MASK for oid in fresh)
            reclaimed = space.used - survivor_words
            if len(fresh) != len(ids):
                # Distinct ids (no stale entries), so max-min+1 == len
                # proves the set is exactly an interval regardless of
                # order (a freshly bump-allocated space, typically):
                # kill the whole range in one slice store, then
                # re-point the survivors below.
                lo, hi = min(ids), max(ids)
                if hi - lo + 1 == len(ids):
                    state[lo:hi + 1] = array("q", bytes(8 * len(ids)))
                else:
                    for oid in ids:
                        if oid not in marked:
                            state[oid] = _DEAD
            packed = token
            stride = 1 << _POS_SHIFT
            for oid in fresh:
                state[oid] = packed
                packed += stride
            self._live_count -= space._count - len(fresh)
            space._ids = list(fresh)
            space._count = len(fresh)
            space.used -= reclaimed
            return fresh, reclaimed
        fresh = []
        append = fresh.append
        reclaimed = 0
        for pos, oid in enumerate(ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                if oid in marked:
                    state[oid] = (len(fresh) << _POS_SHIFT) | token
                    append(oid)
                else:
                    state[oid] = _DEAD
                    reclaimed += hdr[oid] & _SIZE_MASK
                    if payloads is not None:
                        payloads.pop(oid, None)
        self._live_count -= space._count - len(fresh)
        space._ids = list(fresh)
        space._count = len(fresh)
        space.used -= reclaimed
        return fresh, reclaimed

    def extract_live(
        self, space: FlatSpace, marked: "set[int]"
    ) -> tuple[list[int], int]:
        """Empty ``space``: free the dead, detach survivors in order.

        Returns ``(survivor_ids, words_reclaimed)``.  Survivors are
        left detached for the caller to repack (evacuation/renumbering
        in the non-predictive and hybrid collectors).
        """
        state = self._state
        hdr = self._hdr
        payloads = self._payloads or None
        token = space._token
        ids = space._ids
        if payloads is None and space._count == len(ids):
            survivors = [oid for oid in ids if oid in marked]
            survivor_words = sum(
                hdr[oid] & _SIZE_MASK for oid in survivors
            )
            reclaimed = space.used - survivor_words
            if len(survivors) != len(ids):
                # No stale entries means the ids are distinct, so
                # max-min+1 == len proves they are exactly an interval
                # (in any order) and the whole range can be zeroed as
                # one slice; survivors are re-pointed just below.
                lo, hi = min(ids), max(ids)
                if hi - lo + 1 == len(ids):
                    state[lo:hi + 1] = array("q", bytes(8 * len(ids)))
                else:
                    for oid in ids:
                        if oid not in marked:
                            state[oid] = _DEAD
            for oid in survivors:
                state[oid] = _DETACHED
            self._live_count -= space._count - len(survivors)
            space._ids = []
            space._count = 0
            space.used = 0
            return survivors, reclaimed
        survivors = []
        append = survivors.append
        reclaimed = 0
        for pos, oid in enumerate(ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                if oid in marked:
                    state[oid] = _DETACHED
                    append(oid)
                else:
                    state[oid] = _DEAD
                    reclaimed += hdr[oid] & _SIZE_MASK
                    if payloads is not None:
                        payloads.pop(oid, None)
        self._live_count -= space._count - len(survivors)
        space._ids = []
        space._count = 0
        space.used = 0
        return survivors, reclaimed

    def extract_all(self, space: FlatSpace) -> list[int]:
        """Detach every resident of ``space`` in order (compaction)."""
        state = self._state
        token = space._token
        out: list[int] = []
        append = out.append
        for pos, oid in enumerate(space._ids):
            if state[oid] == (pos << _POS_SHIFT) | token:
                state[oid] = _DETACHED
                append(oid)
        space._ids = []
        space._count = 0
        space.used = 0
        return out

    # ------------------------------------------------------------------
    # Tracing / integrity
    # ------------------------------------------------------------------

    def reachable_from(
        self,
        root_ids: Iterable[int],
        *,
        visit: Callable[[FlatObject], None] | None = None,
    ) -> set[int]:
        """Transitive closure of the reference graph from the roots."""
        state = self._state
        hdr = self._hdr
        sbase = self._slot_base
        slots = self._slots
        n = len(state)
        reached: set[int] = set()
        add = reached.add
        stack: list[int] = []
        push = stack.append
        pop = stack.pop
        for obj_id in root_ids:
            if obj_id not in reached:
                add(obj_id)
                push(obj_id)
        while stack:
            oid = pop()
            if (
                type(oid) is not int
                or not 0 <= oid < n
                or state[oid] == _DEAD
            ):
                raise HeapError(f"dangling object id {oid}")
            if visit is not None:
                visit(FlatObject(self, oid))
            count = (hdr[oid] >> _FC_SHIFT) & _FC_MASK
            if count:
                base = sbase[oid]
                for ref in slots[base:base + count]:
                    if type(ref) is int and ref not in reached:
                        add(ref)
                        push(ref)
        return reached

    def check_integrity(self) -> None:
        """Validate structural invariants; raises HeapError on violation."""
        state = self._state
        hdr = self._hdr
        n = len(state)
        seen: set[int] = set()
        for space in self._spaces.values():
            used = 0
            count = 0
            token = space._token
            for pos, oid in enumerate(space._ids):
                if state[oid] != (pos << _POS_SHIFT) | token:
                    continue
                if oid in seen:
                    raise HeapError(f"object {oid} resides in two spaces")
                seen.add(oid)
                used += hdr[oid] & _SIZE_MASK
                count += 1
            if used != space.used:
                raise HeapError(
                    f"space {space.name!r} accounting off: tracked "
                    f"{space.used}, actual {used}"
                )
            if count != space._count:
                raise HeapError(
                    f"space {space.name!r} object count off: tracked "
                    f"{space._count}, actual {count}"
                )
        live = 0
        for oid in range(n):
            packed = state[oid]
            if packed == _DEAD:
                continue
            live += 1
            if oid not in seen:
                if packed == _DETACHED:
                    raise HeapError(f"object {oid} is in no space")
                space = self._space_by_token[packed & _TOKEN_MASK]
                where = "a removed space" if space is None else (
                    f"space {space.name!r} without a valid id entry"
                )
                raise HeapError(f"object {oid} claims {where}")
            for ref in FlatObject(self, oid).references():
                if not (0 <= ref < n and state[ref] != _DEAD):
                    raise HeapError(
                        f"object {oid} points at freed object {ref}"
                    )
        if live != self._live_count:
            raise HeapError(
                f"live object count off: tracked {self._live_count}, "
                f"actual {live}"
            )
