"""The write barrier (Section 8.5).

Every mutator store of a reference goes through a
:class:`WriteBarrier`.  The barrier itself is policy-free: it counts
stores (the paper's §6 caveat that the analysis omits barrier cost is
addressed by reporting this count) and forwards each pointer store to
the active collector's ``remember_store`` hook, which decides whether
the store creates a remembered-set entry.

The barrier does not distinguish *why* a store is interesting — the
paper notes that situations 3 and 6 of §8.4 are "detected by the write
barrier, which does not distinguish between them" — so the hook
receives only (source object, slot, target object).
"""

from __future__ import annotations

from typing import Callable

from repro.heap.object_model import HeapObject

__all__ = ["WriteBarrier"]

#: Signature of the collector hook invoked on every store (the target
#: is None when the new value is not a pointer).
RememberStoreHook = Callable[[HeapObject, int, "HeapObject | None"], None]


class WriteBarrier:
    """Counts mutator stores and dispatches them to the collector.

    Attributes:
        stores: total stores seen (including stores of None).
        pointer_stores: stores where the new value is a reference.
    """

    __slots__ = ("_hook", "stores", "pointer_stores")

    def __init__(self, hook: RememberStoreHook | None = None) -> None:
        self._hook = hook
        self.stores = 0
        self.pointer_stores = 0

    def set_hook(self, hook: RememberStoreHook | None) -> None:
        """Install the active collector's remember-store hook."""
        self._hook = hook

    def on_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Record one mutator store; called before the heap write.

        The hook fires for *every* store — including overwrites with
        ``None`` — because a snapshot-at-the-beginning collector must
        see the deleted old value of a slot even when the new value is
        not a pointer.  Hooks that only care about pointer creation
        (the remembered-set collectors) return immediately on a None
        target.
        """
        self.stores += 1
        if target is not None:
            self.pointer_stores += 1
        if self._hook is not None:
            self._hook(obj, slot, target)

    def reset_counters(self) -> None:
        self.stores = 0
        self.pointer_stores = 0
