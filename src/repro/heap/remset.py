"""Remembered sets (Sections 8.3 and 8.4 of the paper).

A remembered set records the slots a partial collection must treat as
roots because they may hold pointers from uncollected regions into the
region being collected.  Entries here are *slot-precise*: a pair
``(obj_id, slot)``.

Section 8.4 distinguishes entries that arrived via *promotion*
(situation 5: an object promoted into the protected steps containing a
pointer into the collectable steps) from entries that arrived via
*side effect* (situations 3 and 6: the write barrier).  The paper keeps
these separate because the promotion-entered portion can be discarded
wholesale when the protected generation is renumbered away; this class
keeps the same separation and the tests check it.

A remembered set is conservative: an entry may describe a slot that no
longer holds an interesting pointer (the store was overwritten).  The
:meth:`prune` operation re-examines entries against a predicate, which
models the paper's §8.4 cleanup during root tracing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

__all__ = ["RememberedSet", "SlotRef"]

#: A remembered-set entry: (object id, slot index).
SlotRef = tuple[int, int]


class RememberedSet:
    """Slot-precise remembered set with barrier/promotion separation."""

    __slots__ = (
        "name",
        "_barrier_entries",
        "_promotion_entries",
        "barrier_records",
        "promotion_records",
        "peak_size",
    )

    def __init__(self, name: str = "remset") -> None:
        self.name = name
        self._barrier_entries: set[SlotRef] = set()
        self._promotion_entries: set[SlotRef] = set()
        #: Lifetime counters, for reporting remset pressure (§8.3).
        self.barrier_records = 0
        self.promotion_records = 0
        self.peak_size = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_barrier(self, obj_id: int, slot: int) -> None:
        """Record a slot discovered by the write barrier (situations 3/6)."""
        entry = (obj_id, slot)
        if entry not in self._barrier_entries:
            self._barrier_entries.add(entry)
            self._promotion_entries.discard(entry)
        self.barrier_records += 1
        self._update_peak()

    def record_promotion(self, obj_id: int, slot: int) -> None:
        """Record a slot discovered while tracing a promoted object (sit. 5)."""
        entry = (obj_id, slot)
        if entry not in self._barrier_entries:
            self._promotion_entries.add(entry)
        self.promotion_records += 1
        self._update_peak()

    def _update_peak(self) -> None:
        size = len(self)
        if size > self.peak_size:
            self.peak_size = size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[SlotRef]:
        """All entries, barrier-entered first."""
        yield from self._barrier_entries
        yield from self._promotion_entries

    def object_ids(self) -> set[int]:
        """The distinct objects that have at least one remembered slot."""
        ids = {obj_id for obj_id, _ in self._barrier_entries}
        ids.update(obj_id for obj_id, _ in self._promotion_entries)
        return ids

    def __len__(self) -> int:
        return len(self._barrier_entries) + len(self._promotion_entries)

    def __contains__(self, entry: SlotRef) -> bool:
        return entry in self._barrier_entries or entry in self._promotion_entries

    @property
    def barrier_size(self) -> int:
        return len(self._barrier_entries)

    @property
    def promotion_size(self) -> int:
        return len(self._promotion_entries)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def discard_object(self, obj_id: int) -> None:
        """Drop every entry for a dead or moved-away object."""
        self._barrier_entries = {
            entry for entry in self._barrier_entries if entry[0] != obj_id
        }
        self._promotion_entries = {
            entry for entry in self._promotion_entries if entry[0] != obj_id
        }

    def discard_objects(self, obj_ids: Iterable[int]) -> None:
        dead = set(obj_ids)
        if not dead:
            return
        self._barrier_entries = {
            entry for entry in self._barrier_entries if entry[0] not in dead
        }
        self._promotion_entries = {
            entry for entry in self._promotion_entries if entry[0] not in dead
        }

    def clear(self) -> None:
        """Empty the set (e.g. after a full collection, §8.4)."""
        self._barrier_entries.clear()
        self._promotion_entries.clear()

    def clear_promotion_entries(self) -> None:
        """Drop only the promotion-entered portion."""
        self._promotion_entries.clear()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of the entries and lifetime counters.

        Entries are stored sorted: both portions are true sets and
        every consumer is order-insensitive, so a canonical order keeps
        snapshots byte-stable.
        """
        return {
            "name": self.name,
            "barrier": sorted(self._barrier_entries),
            "promotion": sorted(self._promotion_entries),
            "barrier_records": self.barrier_records,
            "promotion_records": self.promotion_records,
            "peak_size": self.peak_size,
        }

    def import_state(self, state: dict) -> None:
        """Replace entries and counters with a snapshot's."""
        self._barrier_entries = {
            (int(obj_id), int(slot)) for obj_id, slot in state["barrier"]
        }
        self._promotion_entries = {
            (int(obj_id), int(slot)) for obj_id, slot in state["promotion"]
        }
        self.barrier_records = state["barrier_records"]
        self.promotion_records = state["promotion_records"]
        self.peak_size = state["peak_size"]

    def prune(self, still_needed: Callable[[SlotRef], bool]) -> int:
        """Drop entries the predicate rejects; returns how many were dropped.

        Models the §8.4 optimization: when an entry is traced the
        collector can notice that the slot no longer holds a
        cross-generational pointer and remove it.
        """
        before = len(self)
        self._barrier_entries = {
            entry for entry in self._barrier_entries if still_needed(entry)
        }
        self._promotion_entries = {
            entry for entry in self._promotion_entries if still_needed(entry)
        }
        return before - len(self)

    def __repr__(self) -> str:
        return (
            f"RememberedSet(name={self.name!r}, barrier="
            f"{len(self._barrier_entries)}, promotion="
            f"{len(self._promotion_entries)})"
        )
